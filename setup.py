"""Legacy setup shim so editable installs work offline (no wheel pkg)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "KubeFence reproduction: workload-aware fine-grained Kubernetes "
        "API filtering (DSN 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["PyYAML>=6.0"],
    entry_points={
        "console_scripts": ["kubefence-repro = repro.cli:main"],
    },
)
