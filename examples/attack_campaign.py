#!/usr/bin/env python3
"""The Table III experiment as a script: 15 attacks x 5 operators,
RBAC baseline vs KubeFence.

For each operator the script:

- runs the attack-free workload on an audit-enabled cluster and infers
  its least-privilege RBAC policy (audit2rbac);
- replays the 15-attack catalog against an RBAC-protected cluster and
  against a KubeFence-protected one;
- reports which attacks were mitigated and which CVEs actually fired
  in the simulated cluster when a request got through.

Run:  python examples/attack_campaign.py
"""

from repro.analysis.report import render_table3
from repro.attacks import run_campaign
from repro.operators import OPERATOR_NAMES, get_chart


def main() -> None:
    results = []
    for name in OPERATOR_NAMES:
        print(f"running campaign for {name} ...")
        result = run_campaign(get_chart(name))
        results.append(result)

        fired = sorted({o.attack.reference for o in result.rbac if o.exploit_fired})
        print(f"  RBAC let through all 15 attacks; CVEs that fired: {len(fired)}")
        for cve in fired:
            print(f"    - {cve}")
        denied_fields = [
            o.detail.split("denied")[-1].strip()
            for o in result.kubefence[:2]
        ]
        print(f"  KubeFence blocked all 15; first denials: ")
        for outcome in result.kubefence[:3]:
            print(f"    - {outcome.attack.attack_id}: HTTP {outcome.response_code}")

    print("\n" + "=" * 72)
    print("TABLE III -- mitigated CVEs and misconfigurations")
    print("=" * 72)
    print(render_table3(results))

    print("\nKey observation (paper Sec. VI-D): RBAC policies, even when")
    print("tailored with audit2rbac, cannot express field-level restrictions,")
    print("so every malicious specification passed; KubeFence validated the")
    print("request bodies against workload policies and blocked all of them.")


if __name__ == "__main__":
    main()
