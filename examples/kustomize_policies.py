#!/usr/bin/env python3
"""KubeFence beyond Helm: policies from Kustomize overlays + the
anomaly-detection complement (both from the paper's Discussion,
Sec. VIII).

Scenario: a team ships a web service as a Kustomize base with two
overlays (staging, production).  KubeFence derives the policy from the
overlays actually in use; an anomaly detector learns the behavioural
baseline for the residual surface.

Run:  python examples/kustomize_policies.py
"""

from repro.core.anomaly import AnomalyMonitoringTransport, ApiAnomalyDetector
from repro.core.proxy import KubeFenceProxy
from repro.k8s.apiserver import ApiRequest, Cluster, User
from repro.kustomize import Kustomization, build, generate_policy_from_kustomize
from repro.kustomize.model import ImageOverride, ReplicaOverride
from repro.operators.client import OperatorClient
from repro.yamlutil import deep_copy, set_path


def make_layers():
    base = Kustomization(
        name="base",
        manifests=[
            {
                "apiVersion": "apps/v1",
                "kind": "Deployment",
                "metadata": {"name": "web", "labels": {"app": "web"}},
                "spec": {
                    "replicas": 2,
                    "selector": {"matchLabels": {"app": "web"}},
                    "template": {
                        "metadata": {"labels": {"app": "web"}},
                        "spec": {
                            "containers": [
                                {
                                    "name": "app",
                                    "image": "docker.io/acme/web:1.0",
                                    "ports": [{"name": "http", "containerPort": 8080}],
                                    "resources": {
                                        "limits": {"cpu": "500m", "memory": "256Mi"},
                                        "requests": {"cpu": "100m", "memory": "128Mi"},
                                    },
                                    "securityContext": {"runAsNonRoot": True},
                                }
                            ]
                        },
                    },
                },
            },
            {
                "apiVersion": "v1",
                "kind": "Service",
                "metadata": {"name": "web"},
                "spec": {"selector": {"app": "web"},
                         "ports": [{"name": "http", "port": 80, "targetPort": "http"}]},
            },
        ],
    )
    staging = Kustomization(
        name="staging", bases=[base], name_prefix="stg-",
        namespace="staging",
        replicas=[ReplicaOverride("web", 1)],
        images=[ImageOverride("docker.io/acme/web", new_tag="1.1-rc1")],
        common_labels={"env": "staging"},
    )
    production = Kustomization(
        name="production", bases=[base], name_prefix="prod-",
        namespace="production",
        replicas=[ReplicaOverride("web", 6)],
        common_labels={"env": "prod"},
    )
    return base, staging, production


def main() -> None:
    base, staging, production = make_layers()

    # Policy = union of the overlays in use (+ generalization + locks).
    validator = generate_policy_from_kustomize(
        base, [staging, production], operator="web"
    )
    print(f"kustomize policy for {validator.operator!r}")
    print(f"  layers merged : {validator.meta['overlays']}")
    print(f"  kinds         : {sorted(validator.kinds)}")

    # Protected cluster: KubeFence proxy + anomaly monitoring stacked.
    cluster = Cluster()
    detector = ApiAnomalyDetector()
    transport = AnomalyMonitoringTransport(
        KubeFenceProxy(cluster.api, validator), detector, learn_online=True
    )
    client = OperatorClient(transport, username="web-deployer")

    for layer in (staging, production):
        result = client.apply_manifests("web", build(layer))
        print(f"\ndeploy {layer.name:10s}: "
              f"{len(result.succeeded)}/{len(result.responses)} manifests applied")

    # A new overlay variant within the learned domains also passes
    # (scalar generalization: replicas widened to `int`).
    hotfix = Kustomization(
        name="hotfix", bases=[base], name_prefix="prod-",  # same prefix as prod
        namespace="production", replicas=[ReplicaOverride("web", 9)],
        common_labels={"env": "prod"},
    )
    responses = [
        client.submit_manifest("web", manifest, verb="update")
        for manifest in build(hotfix)
    ]
    print(f"deploy hotfix    : all_ok={all(r.ok for r in responses)} "
          "(update in place; replicas=9 fits the widened int domain)")

    # Attacks bounce off the proxy AND raise anomaly alerts.
    deployment = deep_copy(build(production)[0])
    set_path(deployment, "spec.template.spec.containers[0].securityContext.privileged", True)
    response = transport.submit(
        ApiRequest.from_manifest(deployment, User("web-deployer"), "update")
    )
    print(f"\nprivileged-container attack: HTTP {response.code}")
    print(f"  proxy denial : {transport.inner.denials[-1].violations[0]}")
    print(f"  anomaly alert: {transport.alerts[-1].report.summary()}")


if __name__ == "__main__":
    main()
