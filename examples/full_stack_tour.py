#!/usr/bin/env python3
"""The grand tour: every layer of the reproduction in one scenario.

Workflow (the paper's recommended stack, Sec. V + Sec. VIII):

1. **lint** the chart before policy generation (KubeLinter role);
2. **generate** the KubeFence policy from the chart;
3. stand up a **hardened cluster**: RBAC + LimitRange/ResourceQuota
   admission + the KubeFence proxy + anomaly monitoring;
4. **deploy** the operator through the whole stack; run the
   **controllers**, the **scheduler**, and a **self-healing** pass;
5. launch the **attack catalog** and watch each layer do its job;
6. **tear down** with cascading garbage collection.

Run:  python examples/full_stack_tour.py
"""

from repro.attacks import build_malicious_manifests
from repro.core.anomaly import AnomalyMonitoringTransport, ApiAnomalyDetector
from repro.core.pipeline import generate_policy
from repro.core.proxy import KubeFenceProxy
from repro.helm.chart import render_chart
from repro.k8s.admission import install_builtin_admission
from repro.k8s.apiserver import ApiRequest, Cluster, User
from repro.k8s.controllers import ControllerManager
from repro.k8s.gc import delete_with_cascade
from repro.k8s.scheduler import Node, Scheduler
from repro.k8s.vulndb import ExploitEngine
from repro.lint import lint_chart
from repro.operators import get_chart
from repro.operators.runtime import OperatorRuntime


def main() -> None:
    chart = get_chart("postgresql")

    # 1. Pre-deployment static analysis.
    report = lint_chart(chart)
    print(f"[lint]      {len(report.errors)} errors, {len(report.warnings)} warnings "
          f"({', '.join(sorted(report.by_rule())) or 'clean'})")
    assert not report.errors, "fix chart errors before generating a policy"

    # 2. Policy generation.
    validator = generate_policy(chart)
    print(f"[policy]    kinds={sorted(validator.kinds)}, "
          f"{len(validator.locks)} security locks")

    # 3. The hardened cluster.
    cluster = Cluster()
    install_builtin_admission(cluster.api)
    cluster.apply({"apiVersion": "v1", "kind": "ResourceQuota",
                   "metadata": {"name": "team-quota", "namespace": "default"},
                   "spec": {"hard": {"pods": 10, "requests.cpu": "8"}}})
    engine = ExploitEngine()
    cluster.api.register_admission_plugin(engine)
    detector = ApiAnomalyDetector()
    transport = AnomalyMonitoringTransport(
        KubeFenceProxy(cluster.api, validator), detector, learn_online=True
    )

    # 4. Deploy + converge + schedule + self-heal.
    runtime = OperatorRuntime(chart, transport, cluster.store)
    responses = runtime.install()
    print(f"[deploy]    {sum(r.ok for r in responses)}/{len(responses)} manifests "
          "applied through lint-approved policy")

    ControllerManager(cluster.store).run_until_stable()
    scheduler = Scheduler(cluster.store, [Node("worker-1"), Node("worker-2")])
    bound = scheduler.schedule_once()
    pods = cluster.store.list("Pod")
    print(f"[converge]  {len(pods)} pods running, {bound} scheduled across 2 nodes")

    cluster.store.delete("Service", "default", "postgresql-postgresql")
    actions = runtime.reconcile()
    print(f"[self-heal] operator restored {len(actions)} resource(s) "
          f"({actions[0].kind}/{actions[0].name})")

    # 5. The attack campaign against the full stack.
    malicious = build_malicious_manifests(chart.name, render_chart(chart))
    blocked = 0
    for item in malicious:
        response = transport.submit(
            ApiRequest.from_manifest(item.manifest, User(f"{chart.name}-operator"), "update")
        )
        blocked += 0 if response.ok else 1
    print(f"[attack]    {blocked}/{len(malicious)} malicious manifests blocked; "
          f"CVEs fired: {sorted(engine.triggered_cves()) or 'none'}; "
          f"anomaly alerts: {len(transport.alerts)}")

    # 6. Teardown with cascading GC.
    ControllerManager(cluster.store).run_until_stable()
    result = delete_with_cascade(cluster.store, "StatefulSet", "default",
                                 "postgresql-postgresql")
    print(f"[teardown]  cascade removed {len(result.deleted)} objects "
          f"({', '.join(sorted({k for k, _, _ in result.deleted}))})")


if __name__ == "__main__":
    main()
