#!/usr/bin/env python3
"""The attack-surface studies: Fig. 5, Fig. 9, and Table I.

- Fig. 5 (motivation): how little of the vulnerable Kubernetes code the
  6,580-test e2e corpus actually touches (<0.5% of tests), i.e. how
  much of the attack surface typical workloads never need.
- Fig. 9: per-operator, per-endpoint field usage from the generated
  validators.
- Table I: restrictable fields under RBAC (whole endpoints only) vs
  KubeFence (any unused field), and the reduction percentages.

Run:  python examples/attack_surface_analysis.py
"""

from repro.analysis.coverage import fig5_analysis
from repro.analysis.reduction import average_improvement, compute_reduction
from repro.analysis.report import render_fig5, render_fig9, render_table1
from repro.analysis.surface import ANALYSIS_KINDS, usage_matrix
from repro.core import generate_policy
from repro.operators import all_charts


def main() -> None:
    print("=" * 72)
    print("FIG. 5 -- e2e tests covering CVE-patched code (motivation)")
    print("=" * 72)
    data = fig5_analysis()
    print(render_fig5(data))

    print("\ngenerating the five workload policies ...")
    validators = {name: generate_policy(chart) for name, chart in all_charts().items()}
    matrix = usage_matrix(validators)

    print("\n" + "=" * 72)
    print("FIG. 9 -- % of configurable fields used, per workload x endpoint")
    print("=" * 72)
    print(render_fig9(matrix, ANALYSIS_KINDS))

    print("\n" + "=" * 72)
    print("TABLE I -- attack surface reduction, RBAC vs KubeFence")
    print("=" * 72)
    rows = [compute_reduction(matrix[name]) for name in sorted(matrix)]
    print(render_table1(rows))

    print("\nReading the numbers:")
    print("- RBAC can only blank out endpoints a workload never touches;")
    print("  workloads that span many endpoints (SonarQube) leave most of")
    print("  the surface exposed.")
    print("- KubeFence filters unused fields *inside* used endpoints too,")
    print(f"  reducing >90% of the surface everywhere "
          f"(avg. +{average_improvement(rows):.1f} pp over RBAC; paper: ~35 pp).")


if __name__ == "__main__":
    main()
