#!/usr/bin/env python3
"""Quickstart: protect a workload with KubeFence in ~30 lines.

1. Pick an operator chart (the Nginx evaluation chart).
2. Generate its security policy (validator) from the Helm chart.
3. Stand up a mini Kubernetes cluster and put the KubeFence proxy in
   front of the API server.
4. Deploy the operator through the proxy -- benign traffic passes.
5. Try an attack -- the proxy blocks it and logs the offending field.

Run:  python examples/quickstart.py
"""

from repro import Cluster, KubeFenceProxy, generate_policy, get_chart, render_chart
from repro.k8s.apiserver import ApiRequest, User
from repro.operators import OperatorClient
from repro.yamlutil import deep_copy, set_path


def main() -> None:
    # 1-2. Offline phase: chart -> fine-grained policy.
    chart = get_chart("nginx")
    validator = generate_policy(chart)
    print(f"policy for {validator.operator!r}: kinds={sorted(validator.kinds)}")
    print(f"  built from {validator.meta['variantsRendered']} values variants, "
          f"{validator.meta['manifestsMerged']} manifests merged")

    # 3. Online phase: cluster + enforcement proxy (complete mediation).
    cluster = Cluster()
    proxy = KubeFenceProxy(cluster.api, validator)
    client = OperatorClient(proxy)

    # 4. Benign Day-1 install goes through.
    result = client.deploy_chart(chart, release_name="demo")
    print(f"\ndeployed {len(result.succeeded)}/{len(result.responses)} manifests "
          f"through the proxy (all_ok={result.all_ok})")

    # 5. The attacker (an insider with the operator's credentials)
    #    re-submits the Deployment with hostNetwork enabled
    #    (CVE-2020-15257's entry point).
    deployment = next(
        m for m in render_chart(chart, release_name="demo") if m["kind"] == "Deployment"
    )
    malicious = deep_copy(deployment)
    set_path(malicious, "spec.template.spec.hostNetwork", True)
    response = proxy.submit(
        ApiRequest.from_manifest(malicious, User("insider"), verb="update")
    )
    print(f"\nattack response: HTTP {response.code}")
    print(f"  message: {response.body['message']}")

    # The denial log supports auditing and forensics.
    record = proxy.denials[-1]
    print(f"\ndenial record: user={record.username} kind={record.kind}")
    for violation in record.violations:
        print(f"  - {violation}")


if __name__ == "__main__":
    main()
