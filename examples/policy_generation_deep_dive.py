#!/usr/bin/env python3
"""A guided tour of KubeFence's four policy-generation phases
(Sec. V-A), using the MLflow operator -- the paper's running example
(Fig. 3 / Fig. 7 / Fig. 8).

Run:  python examples/policy_generation_deep_dive.py
"""

import yaml

from repro.core.explorer import explore_variants
from repro.core.renderer import render_all_variants
from repro.core.schema_gen import generate_values_schema
from repro.core.validator_gen import build_validator
from repro.helm.chart import render_chart
from repro.operators import get_chart
from repro.yamlutil import get_path


def show(title: str, text: str, lines: int = 25) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
    shown = text.split("\n")[:lines]
    print("\n".join(shown))
    if text.count("\n") + 1 > lines:
        print(f"... ({text.count(chr(10)) + 1 - lines} more lines)")


def main() -> None:
    chart = get_chart("mlflow")
    show("INPUT -- default values file (excerpt)", chart.values_text, 30)

    # Phase 1: values schema (Fig. 7).
    schema = generate_values_schema(chart)
    show(
        "PHASE 1 -- values schema: placeholders, enums, security locks",
        yaml.safe_dump(schema.schema, sort_keys=False, allow_unicode=True),
        30,
    )
    print(f"enumerative fields: {schema.enums}")
    print(f"locked (trusted constants): {schema.locked_paths}")

    # Phase 2: configuration-space exploration.
    variants = explore_variants(schema)
    print(f"\nPHASE 2 -- {len(variants)} values variants "
          f"(longest enum has {schema.max_enum_length()} options)")
    for i, variant in enumerate(variants):
        print(f"  variant {i}: postgreSQL.arch = "
              f"{get_path(variant, 'postgreSQL.arch')!r}, "
              f"pullPolicy = {get_path(variant, 'image.pullPolicy')!r}")

    # Phase 3: rendering.
    manifests = render_all_variants(chart, variants)
    print(f"\nPHASE 3 -- rendered {len(manifests)} manifests "
          f"({len(manifests) // len(variants)} per variant)")
    deployment = next(m for m in manifests if m["kind"] == "Deployment")
    container = get_path(deployment, "spec.template.spec.containers[0]")
    print(f"  e.g. Deployment container image: {container['image']!r}")
    print(f"       (registry/repository pinned, tag left as a type placeholder)")

    # Phase 4: consolidation (Fig. 8).
    validator = build_validator(chart.name, manifests, variants_rendered=len(variants))
    show(
        "PHASE 4 -- consolidated validator (Deployment subtree, excerpt)",
        yaml.safe_dump(
            validator.to_dict()["kinds"]["Deployment"]["spec"],
            sort_keys=False,
            allow_unicode=True,
        ),
        35,
    )

    # Enforcement sanity check.
    good = render_chart(chart, release_name="prod")[0]
    print(f"\nENFORCEMENT -- default render of {good['kind']!r}: "
          f"{validator.validate(good).summary()}")
    from repro.yamlutil import set_path, deep_copy

    bad = deep_copy(
        next(m for m in render_chart(chart, release_name="prod") if m["kind"] == "Deployment")
    )
    set_path(bad, "spec.template.spec.containers[0].securityContext.privileged", True)
    print(f"privileged-container attack: {validator.validate(bad).summary()}")


if __name__ == "__main__":
    main()
