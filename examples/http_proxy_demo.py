#!/usr/bin/env python3
"""The paper's deployment topology over real TCP sockets.

Client --HTTP--> KubeFence proxy --HTTP--> mini K8s API server

This is the mitmproxy-style placement from Sec. V-B: all client traffic
goes through the proxy, which validates write payloads before
forwarding.  The script measures the round-trip latency with and
without the proxy (the Table IV quantity), then demonstrates a denial.

Run:  python examples/http_proxy_demo.py
"""

import time

from repro.core.pipeline import generate_policy
from repro.core.proxy import HttpKubeFenceProxy
from repro.helm.chart import render_chart
from repro.k8s.apiserver import Cluster
from repro.k8s.http import HttpApiServer, HttpClient
from repro.operators import get_chart
from repro.yamlutil import deep_copy, set_path


def time_deploy(client: HttpClient, manifests: list[dict]) -> float:
    started = time.perf_counter()
    for manifest in manifests:
        status, body = client.apply(manifest)
        assert status in (200, 201), (status, body)
    return (time.perf_counter() - started) * 1000.0


def main() -> None:
    chart = get_chart("rabbitmq")
    validator = generate_policy(chart)
    manifests = render_chart(chart, release_name="net")

    # Direct topology (baseline).
    direct_cluster = Cluster()
    with HttpApiServer(direct_cluster.api) as server:
        direct_ms = time_deploy(HttpClient(server.base_url), manifests)
        print(f"direct   client -> api-server        : {direct_ms:7.1f} ms "
              f"({len(manifests)} manifests)")

    # Proxied topology (KubeFence).
    proxied_cluster = Cluster()
    with HttpApiServer(proxied_cluster.api) as server:
        with HttpKubeFenceProxy(server.base_url, validator) as proxy:
            client = HttpClient(proxy.base_url, username="rabbitmq-operator")
            proxied_ms = time_deploy(client, manifests)
            print(f"proxied  client -> kubefence -> api : {proxied_ms:7.1f} ms "
                  f"(+{100 * (proxied_ms - direct_ms) / direct_ms:.1f}%)")

            # An attack over the wire: privileged container.
            bad = deep_copy(next(m for m in manifests if m["kind"] == "StatefulSet"))
            set_path(
                bad,
                "spec.template.spec.containers[0].securityContext.privileged",
                True,
            )
            status, body = client.apply(bad)
            print(f"\nattack over HTTP: status={status}")
            print(f"  {body['message'][:120]}...")
            print(f"proxy stats: {proxy.stats.requests_total} requests, "
                  f"{proxy.stats.requests_denied} denied, "
                  f"{proxy.stats.validation_seconds * 1000:.2f} ms total validation")


if __name__ == "__main__":
    main()
