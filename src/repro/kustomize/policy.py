"""KubeFence policy generation from Kustomize layers (Sec. VIII).

With Helm, the configuration space is implicit in templates + value
domains; with Kustomize it is explicit: a base plus the overlays an
organisation actually deploys.  Each overlay build is therefore one
configuration variant, and the validator is their consolidated union
(the same phase-4 machinery as the Helm pipeline), with two additions:

- **scalar generalization**: fields whose values differ across overlays
  in a type-uniform way (all ints, all quantities, ...) can optionally
  be widened to the corresponding placeholder instead of a closed enum,
  matching Helm-mode permissiveness for free-form fields;
- names are *not* release-templated in Kustomize, so prefix/suffix
  variation across overlays is generalized through the same union.

The security-lock overlay applies unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.core import placeholders as ph
from repro.core.enforcement import Validator
from repro.core.security import DEFAULT_LOCKS, SecurityLock
from repro.core.validator_gen import apply_locks, merge_trees
from repro.kustomize.build import build
from repro.kustomize.model import Kustomization

#: Scalar types eligible for widening, tried in order.  ``port`` is
#: deliberately absent: any port is an int, and without key context the
#: more general type is the safe generalization.
_WIDENING_ORDER = ("bool", "int", "IP", "quantity", "string")


def _widen_unions(node: Any) -> Any:
    """Collapse homogeneous scalar unions into type placeholders."""
    if isinstance(node, dict):
        return {key: _widen_unions(value) for key, value in node.items()}
    if isinstance(node, list):
        widened = [_widen_unions(value) for value in node]
        scalars = [v for v in widened if not isinstance(v, (dict, list))]
        if len(scalars) == len(widened) and len(scalars) > 1:
            for ptype in _WIDENING_ORDER:
                if all(ph.matches_type(v, ptype) for v in scalars):
                    return ph.make(ptype)
        return widened
    return node


def generate_policy_from_kustomize(
    base: Kustomization,
    overlays: list[Kustomization] | None = None,
    operator: str | None = None,
    locks: tuple[SecurityLock, ...] = DEFAULT_LOCKS,
    generalize_scalars: bool = True,
) -> Validator:
    """Build a validator from a base and the overlays in use.

    When *overlays* is empty, the base itself is the single variant
    (the "raw YAML manifests" case from the paper's Discussion).
    """
    layers = overlays if overlays else [base]
    kinds: dict[str, dict[str, Any]] = {}
    manifests_merged = 0
    for layer in layers:
        for manifest in build(layer):
            kind = manifest.get("kind")
            if not kind:
                continue
            manifests_merged += 1
            if kind in kinds:
                kinds[kind] = merge_trees(kinds[kind], manifest)
            else:
                kinds[kind] = manifest
    if generalize_scalars:
        kinds = {kind: _widen_unions(tree) for kind, tree in kinds.items()}
    for kind, tree in kinds.items():
        apply_locks(tree, kind, locks)
    return Validator(
        operator=operator or base.name,
        kinds=kinds,
        locks=list(locks),
        meta={
            "source": "kustomize",
            "overlays": [layer.name for layer in layers],
            "manifestsMerged": manifests_merged,
            "generalizeScalars": generalize_scalars,
        },
    )
