"""``kustomize build``: resolve bases and apply the transformer chain.

Transformer order follows kustomize: bases first (recursively), then
this layer's generators, then patches, then name prefix/suffix,
namespace, common labels/annotations, image overrides, and replica
overrides.

Strategic-merge patch semantics: maps merge recursively; lists whose
elements carry a ``name`` field merge element-wise by name (containers,
ports, env, volumes); other lists are replaced.  The ``$patch: delete``
directive removes a named list element or a map key.
"""

from __future__ import annotations

import base64
from typing import Any

from repro.kustomize.model import Kustomization
from repro.yamlutil import deep_copy, get_path, set_path

#: Kinds whose selector/template labels must track commonLabels so the
#: workload still selects its own pods (kustomize does the same).
_WORKLOAD_LABEL_PATHS = {
    "Deployment": ("spec.selector.matchLabels", "spec.template.metadata.labels"),
    "ReplicaSet": ("spec.selector.matchLabels", "spec.template.metadata.labels"),
    "StatefulSet": ("spec.selector.matchLabels", "spec.template.metadata.labels"),
    "DaemonSet": ("spec.selector.matchLabels", "spec.template.metadata.labels"),
    "Job": ("spec.template.metadata.labels",),
    "Service": ("spec.selector",),
}


def build(kustomization: Kustomization) -> list[dict[str, Any]]:
    """Produce the final manifest list for a kustomization layer."""
    manifests: list[dict[str, Any]] = []
    for base in kustomization.bases:
        manifests.extend(build(base))
    manifests.extend(deep_copy(m) for m in kustomization.manifests)
    manifests.extend(_run_generators(kustomization))
    manifests = [_apply_patches(m, kustomization.patches) for m in manifests]
    manifests = [_apply_json_patches(m, kustomization.json_patches) for m in manifests]
    for manifest in manifests:
        # Name-based transformers (replicas) target the *original*
        # names, so they run before prefix/suffix renaming.
        _apply_replicas(manifest, kustomization)
        _apply_images(manifest, kustomization)
        _apply_names(manifest, kustomization)
        _apply_namespace(manifest, kustomization)
        _apply_common_metadata(manifest, kustomization)
    return manifests


# -- generators ---------------------------------------------------------------


def _literals_to_map(entry: dict[str, Any]) -> dict[str, str]:
    out: dict[str, str] = {}
    for literal in entry.get("literals", []):
        key, _, value = str(literal).partition("=")
        out[key] = value
    return out


def _run_generators(kustomization: Kustomization) -> list[dict[str, Any]]:
    generated: list[dict[str, Any]] = []
    for entry in kustomization.config_map_generator:
        generated.append(
            {
                "apiVersion": "v1",
                "kind": "ConfigMap",
                "metadata": {"name": entry["name"]},
                "data": _literals_to_map(entry),
            }
        )
    for entry in kustomization.secret_generator:
        data = {
            key: base64.b64encode(value.encode()).decode()
            for key, value in _literals_to_map(entry).items()
        }
        generated.append(
            {
                "apiVersion": "v1",
                "kind": "Secret",
                "metadata": {"name": entry["name"]},
                "type": entry.get("type", "Opaque"),
                "data": data,
            }
        )
    return generated


# -- strategic merge patches --------------------------------------------------


def strategic_merge(target: Any, patch: Any) -> Any:
    """Strategic-merge *patch* into *target*, returning a new tree."""
    if isinstance(target, dict) and isinstance(patch, dict):
        merged = {k: deep_copy(v) for k, v in target.items()}
        for key, value in patch.items():
            if key == "$patch":
                continue
            if isinstance(value, dict) and value.get("$patch") == "delete":
                merged.pop(key, None)
            elif key in merged:
                merged[key] = strategic_merge(merged[key], value)
            else:
                merged[key] = deep_copy(value)
        return merged
    if isinstance(target, list) and isinstance(patch, list):
        return _merge_named_list(target, patch)
    return deep_copy(patch)


def _merge_named_list(target: list, patch: list) -> list:
    def name_of(element: Any) -> str | None:
        if isinstance(element, dict) and isinstance(element.get("name"), str):
            return element["name"]
        return None

    if not patch or not all(
        isinstance(e, dict) and name_of(e) is not None for e in patch
    ):
        return deep_copy(patch)  # unnamed lists replace
    merged = [deep_copy(e) for e in target]
    index = {name_of(e): i for i, e in enumerate(merged) if name_of(e) is not None}
    for element in patch:
        name = name_of(element)
        if isinstance(element, dict) and element.get("$patch") == "delete":
            if name in index:
                merged[index[name]] = None
            continue
        if name in index:
            merged[index[name]] = strategic_merge(merged[index[name]], element)
        else:
            merged.append(deep_copy(element))
    return [e for e in merged if e is not None]


def _apply_patches(manifest: dict[str, Any], patches: list[dict[str, Any]]) -> dict[str, Any]:
    for patch in patches:
        if patch.get("kind") != manifest.get("kind"):
            continue
        patch_name = patch.get("metadata", {}).get("name")
        if patch_name and patch_name != manifest.get("metadata", {}).get("name"):
            continue
        manifest = strategic_merge(manifest, patch)
    return manifest


def _apply_json_patches(
    manifest: dict[str, Any], json_patches: list[dict[str, Any]]
) -> dict[str, Any]:
    from repro.yamlutil.jsonpatch import apply_patch

    for entry in json_patches:
        target = entry.get("target", {})
        if target.get("kind") and target["kind"] != manifest.get("kind"):
            continue
        if target.get("name") and target["name"] != manifest.get("metadata", {}).get("name"):
            continue
        manifest = apply_patch(manifest, entry.get("ops", []))
    return manifest


# -- simple transformers -------------------------------------------------------


def _apply_names(manifest: dict[str, Any], k: Kustomization) -> None:
    if not (k.name_prefix or k.name_suffix):
        return
    meta = manifest.setdefault("metadata", {})
    if "name" in meta:
        meta["name"] = f"{k.name_prefix}{meta['name']}{k.name_suffix}"


def _apply_namespace(manifest: dict[str, Any], k: Kustomization) -> None:
    if k.namespace:
        manifest.setdefault("metadata", {})["namespace"] = k.namespace


def _apply_common_metadata(manifest: dict[str, Any], k: Kustomization) -> None:
    meta = manifest.setdefault("metadata", {})
    if k.common_labels:
        meta.setdefault("labels", {}).update(k.common_labels)
        for path in _WORKLOAD_LABEL_PATHS.get(manifest.get("kind", ""), ()):
            current = get_path(manifest, path, None)
            if isinstance(current, dict):
                current.update(k.common_labels)
            elif current is None and path.endswith(("matchLabels", "labels")):
                set_path(manifest, path, dict(k.common_labels))
    if k.common_annotations:
        meta.setdefault("annotations", {}).update(k.common_annotations)


def _pod_spec_paths(kind: str) -> tuple[str, ...]:
    from repro.k8s.gvk import registry

    if kind in registry and registry.by_kind(kind).pod_spec_path:
        return (registry.by_kind(kind).pod_spec_path,)
    return ()


def _apply_images(manifest: dict[str, Any], k: Kustomization) -> None:
    if not k.images:
        return
    for pod_path in _pod_spec_paths(manifest.get("kind", "")):
        pod_spec = get_path(manifest, pod_path, None)
        if not isinstance(pod_spec, dict):
            continue
        for group in ("containers", "initContainers"):
            for container in pod_spec.get(group) or []:
                image = container.get("image")
                if not isinstance(image, str):
                    continue
                for override in k.images:
                    container["image"] = override.apply(container["image"])


def _apply_replicas(manifest: dict[str, Any], k: Kustomization) -> None:
    for override in k.replicas:
        if manifest.get("metadata", {}).get("name") == override.name and "spec" in manifest:
            if manifest.get("kind") in ("Deployment", "StatefulSet", "ReplicaSet"):
                manifest["spec"]["replicas"] = override.count
