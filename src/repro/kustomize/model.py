"""The Kustomization document model.

Mirrors the fields of ``kustomization.yaml`` that real overlays use:
``resources`` (manifests and bases), ``namePrefix``/``nameSuffix``,
``namespace``, ``commonLabels``/``commonAnnotations``, ``images`` and
``replicas`` overrides, strategic-merge ``patches``, and the configMap/
secret generators.

A Kustomization can be built fully in memory (manifests passed as
dicts) or loaded from a directory containing ``kustomization.yaml``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import yaml


@dataclass(frozen=True)
class ImageOverride:
    """``images:`` entry: retag/rename an image by its name prefix."""

    name: str
    new_name: str | None = None
    new_tag: str | None = None

    def apply(self, image: str) -> str:
        base, tag = (image.rsplit(":", 1) + [""])[:2] if ":" in image else (image, "")
        if base != self.name:
            return image
        base = self.new_name or base
        tag = self.new_tag or tag
        return f"{base}:{tag}" if tag else base


@dataclass(frozen=True)
class ReplicaOverride:
    """``replicas:`` entry: set the replica count of a named workload."""

    name: str
    count: int


@dataclass
class Kustomization:
    """One kustomization layer (a base or an overlay)."""

    name: str = "kustomization"
    #: Inline manifests (the in-memory equivalent of resource files).
    manifests: list[dict[str, Any]] = field(default_factory=list)
    #: Parent layers, resolved before this layer's transformers run.
    bases: list["Kustomization"] = field(default_factory=list)
    name_prefix: str = ""
    name_suffix: str = ""
    namespace: str | None = None
    common_labels: dict[str, str] = field(default_factory=dict)
    common_annotations: dict[str, str] = field(default_factory=dict)
    images: list[ImageOverride] = field(default_factory=list)
    replicas: list[ReplicaOverride] = field(default_factory=list)
    #: Strategic-merge patches (partial manifests keyed by kind+name).
    patches: list[dict[str, Any]] = field(default_factory=list)
    #: RFC 6902 patches: {"target": {"kind":..., "name":...}, "ops": [...]}.
    json_patches: list[dict[str, Any]] = field(default_factory=list)
    #: configMapGenerator entries: {"name": ..., "literals": ["k=v", ...]}
    config_map_generator: list[dict[str, Any]] = field(default_factory=list)
    #: secretGenerator entries: same shape, type Opaque.
    secret_generator: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_directory(cls, path: str | Path) -> "Kustomization":
        """Load ``kustomization.yaml`` plus referenced resource files;
        directory references among ``resources`` are loaded recursively
        as bases."""
        root = Path(path)
        doc = yaml.safe_load((root / "kustomization.yaml").read_text()) or {}
        manifests: list[dict[str, Any]] = []
        bases: list[Kustomization] = []
        for ref in doc.get("resources", []) + doc.get("bases", []):
            target = root / ref
            if target.is_dir():
                bases.append(cls.from_directory(target))
            else:
                for document in yaml.safe_load_all(target.read_text()):
                    if isinstance(document, dict) and document.get("kind"):
                        manifests.append(document)
        patches = []
        for patch in doc.get("patchesStrategicMerge", []) + doc.get("patches", []):
            if isinstance(patch, dict) and "patch" in patch:  # new-style wrapper
                patches.append(yaml.safe_load(patch["patch"]))
            elif isinstance(patch, dict):
                patches.append(patch)
            else:  # file reference
                patches.append(yaml.safe_load((root / patch).read_text()))
        json_patches = []
        for entry in doc.get("patchesJson6902", []):
            if "path" in entry:
                ops = yaml.safe_load((root / entry["path"]).read_text())
            else:
                ops = yaml.safe_load(entry.get("patch", "")) or []
            json_patches.append({"target": entry.get("target", {}), "ops": ops})
        return cls(
            name=root.name,
            manifests=manifests,
            bases=bases,
            name_prefix=doc.get("namePrefix", ""),
            name_suffix=doc.get("nameSuffix", ""),
            namespace=doc.get("namespace"),
            common_labels=doc.get("commonLabels", {}) or {},
            common_annotations=doc.get("commonAnnotations", {}) or {},
            images=[
                ImageOverride(i["name"], i.get("newName"), i.get("newTag"))
                for i in doc.get("images", [])
            ],
            replicas=[
                ReplicaOverride(r["name"], int(r["count"]))
                for r in doc.get("replicas", [])
            ],
            patches=patches,
            json_patches=json_patches,
            config_map_generator=doc.get("configMapGenerator", []) or [],
            secret_generator=doc.get("secretGenerator", []) or [],
        )
