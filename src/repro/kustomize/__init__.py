"""Kustomize support: policy generation beyond Helm (paper Sec. VIII).

The paper's Discussion notes that KubeFence's methodology "can be
easily extended to other deployment mechanisms, such as Kustomize or
raw YAML manifests".  This package implements that extension:

- :mod:`repro.kustomize.model` -- the Kustomization document model
  (resources, bases, name prefix/suffix, namespace, common labels,
  image/replica overrides, strategic-merge patches, generators).
- :mod:`repro.kustomize.build` -- the ``kustomize build`` equivalent:
  resolve bases recursively and apply the transformer chain.
- :mod:`repro.kustomize.policy` -- KubeFence policy generation from a
  base plus its overlays: each overlay is one configuration variant;
  the union (with optional scalar generalization and the standard
  security-lock overlay) becomes the validator.
"""

from repro.kustomize.build import build
from repro.kustomize.model import Kustomization
from repro.kustomize.policy import generate_policy_from_kustomize

__all__ = ["Kustomization", "build", "generate_policy_from_kustomize"]
