"""The operator runtime: a live reconciliation control loop.

Section II-C: "Operators continuously monitor and adjust the
application state in a control loop.  If it detects that one replica
has failed, it automatically triggers a new deployment to restore the
desired count."  This module implements that loop for the evaluation
operators, *mediated by whatever transport it is given* -- so when the
transport is the KubeFence proxy, every corrective write the operator
issues is validated like any other request.

The runtime watches the store's event stream (the in-process stand-in
for an API watch) and marks owned resources dirty on foreign
modification or deletion; :meth:`reconcile` then re-applies the desired
manifests through the transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.helm.chart import Chart, render_chart
from repro.k8s.apiserver import ApiRequest, ApiResponse, User
from repro.k8s.store import ObjectStore, StoreEvent
from repro.operators.client import Transport


@dataclass
class ReconcileAction:
    """One corrective write the operator issued."""

    reason: str  # "drift" | "deleted"
    kind: str
    name: str
    response: ApiResponse


class OperatorRuntime:
    """A Day-2 operator: installs, watches, and repairs its resources."""

    def __init__(
        self,
        chart: Chart,
        transport: Transport,
        store: ObjectStore,
        release_name: str | None = None,
        namespace: str = "default",
        overrides: dict[str, Any] | None = None,
    ):
        self.chart = chart
        self.transport = transport
        self.store = store
        self.user = User(f"{chart.name}-operator")
        self.desired = {
            (m["kind"], m["metadata"]["name"]): m
            for m in render_chart(
                chart, overrides=overrides, release_name=release_name, namespace=namespace
            )
        }
        self._dirty: set[tuple[str, str]] = set()
        self._unsubscribe: Callable[[], None] | None = None
        self.actions: list[ReconcileAction] = []

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> list[ApiResponse]:
        """Day-1: create every desired resource, then start watching."""
        responses = [
            self.transport.submit(ApiRequest.from_manifest(m, self.user, "create"))
            for m in self.desired.values()
        ]
        self.start_watching()
        return responses

    def start_watching(self) -> None:
        if self._unsubscribe is None:
            self._unsubscribe = self.store.watch(self._on_event)

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- watch + reconcile -----------------------------------------------------

    def _on_event(self, event: StoreEvent) -> None:
        key = (event.obj.kind, event.obj.name)
        if key not in self.desired:
            return
        if event.type == "DELETED":
            self._dirty.add(key)
        elif event.type == "MODIFIED" and self._drifted(event.obj.data, self.desired[key]):
            self._dirty.add(key)

    @staticmethod
    def _drifted(current: dict[str, Any], desired: dict[str, Any]) -> bool:
        # Drift = any difference outside server-managed parts.  Exact
        # comparison (not containment) so *additive* tampering -- e.g.
        # an injected privileged flag -- also counts as drift.
        skip = ("apiVersion", "kind", "metadata", "status")
        current_body = {k: v for k, v in current.items() if k not in skip}
        desired_body = {k: v for k, v in desired.items() if k not in skip}
        return current_body != desired_body

    @property
    def pending(self) -> set[tuple[str, str]]:
        return set(self._dirty)

    def reconcile(self) -> list[ReconcileAction]:
        """Repair every dirty resource through the transport."""
        actions: list[ReconcileAction] = []
        snapshot = sorted(self._dirty)
        for key in snapshot:
            kind, name = key
            manifest = self.desired[key]
            exists = self.store.exists(kind, manifest["metadata"].get("namespace", "default"), name)
            verb = "update" if exists else "create"
            response = self.transport.submit(
                ApiRequest.from_manifest(manifest, self.user, verb)
            )
            actions.append(
                ReconcileAction(
                    reason="drift" if exists else "deleted",
                    kind=kind,
                    name=name,
                    response=response,
                )
            )
        self._dirty -= set(snapshot)
        self.actions.extend(actions)
        return actions
