"""Synthetic Helm charts for the five evaluation operators.

Each chart mirrors the structure of its Artifact Hub counterpart:
values files with typed defaults and ``# @enum:`` annotations,
``_helpers.tpl`` defines, and templates exercising conditionals,
loops, overridable values, and security contexts.  All rendered
manifests are valid against the schema catalog, so they can be applied
to the mini cluster.
"""

from __future__ import annotations

from textwrap import dedent

from repro.helm.chart import Chart

OPERATOR_NAMES = ("nginx", "mlflow", "postgresql", "rabbitmq", "sonarqube")


def _helpers(name: str) -> str:
    return dedent(
        """\
        {{- define "%(name)s.fullname" -}}
        {{ .Release.Name }}-%(name)s
        {{- end -}}

        {{- define "%(name)s.labels" -}}
        app.kubernetes.io/name: %(name)s
        app.kubernetes.io/instance: {{ .Release.Name }}
        app.kubernetes.io/managed-by: {{ .Release.Service }}
        helm.sh/chart: %(name)s-{{ .Chart.Version }}
        {{- end -}}

        {{- define "%(name)s.selectorLabels" -}}
        app.kubernetes.io/name: %(name)s
        app.kubernetes.io/instance: {{ .Release.Name }}
        {{- end -}}
        """
        % {"name": name}
    )


# ---------------------------------------------------------------------------
# Nginx (networking)
# ---------------------------------------------------------------------------


def nginx_chart() -> Chart:
    values = dedent(
        """\
        replicaCount: 2
        image:
          registry: docker.io
          repository: bitnami/nginx
          tag: "1.25.4"
          pullPolicy: IfNotPresent  # @enum: IfNotPresent, Always
        imagePullSecrets: []
        serviceAccount:
          create: true
          automountServiceAccountToken: false
        containerPorts:
          http: 8080
          https: 8443
        service:
          type: ClusterIP  # @enum: ClusterIP, NodePort, LoadBalancer
          port: 80
          httpsPort: 443
          sessionAffinity: None  # @enum: None, ClientIP
        resources:
          limits:
            cpu: 500m
            memory: 256Mi
          requests:
            cpu: 100m
            memory: 128Mi
        containerSecurityContext:
          runAsNonRoot: true
          runAsUser: 1001
          allowPrivilegeEscalation: false
          readOnlyRootFilesystem: true
        podSecurityContext:
          fsGroup: 1001
        livenessProbe:
          enabled: true
          initialDelaySeconds: 10
          periodSeconds: 10
        readinessProbe:
          enabled: true
          initialDelaySeconds: 5
          periodSeconds: 5
        serverBlock: ""
        ingress:
          enabled: false
          hostname: nginx.local
          path: /
          pathType: Prefix  # @enum: Prefix, Exact, ImplementationSpecific
        autoscaling:
          enabled: false
          minReplicas: 2
          maxReplicas: 6
          targetCPU: 75
        nodeSelector: {}
        tolerations: []
        """
    )
    deployment = dedent(
        """\
        apiVersion: apps/v1
        kind: Deployment
        metadata:
          name: {{ include "nginx.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "nginx.labels" . | nindent 4 }}
        spec:
          replicas: {{ .Values.replicaCount }}
          selector:
            matchLabels: {{- include "nginx.selectorLabels" . | nindent 6 }}
          strategy:
            type: RollingUpdate
          template:
            metadata:
              labels: {{- include "nginx.selectorLabels" . | nindent 8 }}
            spec:
              {{- if .Values.serviceAccount.create }}
              serviceAccountName: {{ include "nginx.fullname" . }}
              {{- end }}
              automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
              {{- if .Values.imagePullSecrets }}
              imagePullSecrets:
              {{- range .Values.imagePullSecrets }}
                - name: {{ . }}
              {{- end }}
              {{- end }}
              securityContext:
                fsGroup: {{ .Values.podSecurityContext.fsGroup }}
                runAsNonRoot: true
              containers:
                - name: nginx
                  image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  ports:
                    - name: http
                      containerPort: {{ .Values.containerPorts.http }}
                      protocol: TCP
                    - name: https
                      containerPort: {{ .Values.containerPorts.https }}
                      protocol: TCP
                  env:
                    - name: NGINX_HTTP_PORT_NUMBER
                      value: {{ .Values.containerPorts.http | quote }}
                  {{- if .Values.serverBlock }}
                  volumeMounts:
                    - name: server-block
                      mountPath: /opt/bitnami/nginx/conf/server_blocks
                  {{- end }}
                  {{- if .Values.livenessProbe.enabled }}
                  livenessProbe:
                    tcpSocket:
                      port: http
                    initialDelaySeconds: {{ .Values.livenessProbe.initialDelaySeconds }}
                    periodSeconds: {{ .Values.livenessProbe.periodSeconds }}
                  {{- end }}
                  {{- if .Values.readinessProbe.enabled }}
                  readinessProbe:
                    httpGet:
                      path: /
                      port: http
                    initialDelaySeconds: {{ .Values.readinessProbe.initialDelaySeconds }}
                    periodSeconds: {{ .Values.readinessProbe.periodSeconds }}
                  {{- end }}
                  resources: {{- toYaml .Values.resources | nindent 20 }}
                  securityContext: {{- toYaml .Values.containerSecurityContext | nindent 20 }}
              {{- if .Values.serverBlock }}
              volumes:
                - name: server-block
                  configMap:
                    name: {{ include "nginx.fullname" . }}-server-block
              {{- end }}
              {{- if .Values.nodeSelector }}
              nodeSelector: {{- toYaml .Values.nodeSelector | nindent 16 }}
              {{- end }}
        """
    )
    service = dedent(
        """\
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "nginx.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "nginx.labels" . | nindent 4 }}
        spec:
          type: {{ .Values.service.type }}
          sessionAffinity: {{ .Values.service.sessionAffinity }}
          ports:
            - name: http
              port: {{ .Values.service.port }}
              targetPort: http
              protocol: TCP
            - name: https
              port: {{ .Values.service.httpsPort }}
              targetPort: https
              protocol: TCP
          selector: {{- include "nginx.selectorLabels" . | nindent 4 }}
        """
    )
    serviceaccount = dedent(
        """\
        {{- if .Values.serviceAccount.create }}
        apiVersion: v1
        kind: ServiceAccount
        metadata:
          name: {{ include "nginx.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "nginx.labels" . | nindent 4 }}
        automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
        {{- end }}
        """
    )
    configmap = dedent(
        """\
        {{- if .Values.serverBlock }}
        apiVersion: v1
        kind: ConfigMap
        metadata:
          name: {{ include "nginx.fullname" . }}-server-block
          namespace: {{ .Release.Namespace }}
          labels: {{- include "nginx.labels" . | nindent 4 }}
        data:
          server-block.conf: {{ .Values.serverBlock | quote }}
        {{- end }}
        """
    )
    hpa = dedent(
        """\
        {{- if .Values.autoscaling.enabled }}
        apiVersion: autoscaling/v2
        kind: HorizontalPodAutoscaler
        metadata:
          name: {{ include "nginx.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "nginx.labels" . | nindent 4 }}
        spec:
          scaleTargetRef:
            apiVersion: apps/v1
            kind: Deployment
            name: {{ include "nginx.fullname" . }}
          minReplicas: {{ .Values.autoscaling.minReplicas }}
          maxReplicas: {{ .Values.autoscaling.maxReplicas }}
          metrics:
            - type: Resource
              resource:
                name: cpu
                target:
                  type: Utilization
                  averageUtilization: {{ .Values.autoscaling.targetCPU }}
        {{- end }}
        """
    )
    ingress = dedent(
        """\
        {{- if .Values.ingress.enabled }}
        apiVersion: networking.k8s.io/v1
        kind: Ingress
        metadata:
          name: {{ include "nginx.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "nginx.labels" . | nindent 4 }}
        spec:
          rules:
            - host: {{ .Values.ingress.hostname }}
              http:
                paths:
                  - path: {{ .Values.ingress.path }}
                    pathType: {{ .Values.ingress.pathType }}
                    backend:
                      service:
                        name: {{ include "nginx.fullname" . }}
                        port:
                          name: http
        {{- end }}
        """
    )
    return Chart(
        name="nginx",
        version="15.4.4",
        app_version="1.25.4",
        description="NGINX Open Source web server (synthetic evaluation chart)",
        values_text=values,
        helpers=_helpers("nginx"),
        templates={
            "deployment.yaml": deployment,
            "svc.yaml": service,
            "serviceaccount.yaml": serviceaccount,
            "server-block-configmap.yaml": configmap,
            "hpa.yaml": hpa,
            "ingress.yaml": ingress,
        },
    )


# ---------------------------------------------------------------------------
# MLflow (AI/ML) -- the paper's running example (Fig. 3 / Fig. 7)
# ---------------------------------------------------------------------------


def mlflow_chart() -> Chart:
    values = dedent(
        """\
        image:
          registry: docker.io
          repository: bitnami/mlflow
          tag: "2.10.2"
          pullPolicy: IfNotPresent  # @enum: IfNotPresent, Always
          pullSecrets:
            - name: secret-1
            - name: secret-2
        tracking:
          enabled: true
          replicaCount: 1
          host: "0.0.0.0"
          port: 5000
          containerSecurityContext:
            runAsNonRoot: true
            runAsUser: 1001
            allowPrivilegeEscalation: false
            readOnlyRootFilesystem: true
          resources:
            limits:
              cpu: 750m
              memory: 512Mi
            requests:
              cpu: 250m
              memory: 256Mi
          service:
            type: ClusterIP  # @enum: ClusterIP, NodePort, LoadBalancer
            port: 80
        backendStore:
          postgres:
            enabled: true
            host: mlflow-postgresql
            port: 5432
            database: bitnami_mlflow
            user: bn_mlflow
            password: mlflow-secret-pw
        artifactRoot:
          pvc:
            enabled: true
            size: 8Gi
            accessMode: ReadWriteOnce  # @enum: ReadWriteOnce, ReadWriteMany, ReadOnlyMany
        postgreSQL:
          arch: standalone  # @enum: standalone, replication
        serviceAccount:
          create: true
          automountServiceAccountToken: false
        """
    )
    deployment = dedent(
        """\
        {{- if .Values.tracking.enabled }}
        apiVersion: apps/v1
        kind: Deployment
        metadata:
          name: {{ include "mlflow.fullname" . }}-tracking
          namespace: {{ .Release.Namespace }}
          labels: {{- include "mlflow.labels" . | nindent 4 }}
        spec:
          replicas: {{ .Values.tracking.replicaCount }}
          selector:
            matchLabels: {{- include "mlflow.selectorLabels" . | nindent 6 }}
          template:
            metadata:
              labels: {{- include "mlflow.selectorLabels" . | nindent 8 }}
            spec:
              {{- if .Values.serviceAccount.create }}
              serviceAccountName: {{ include "mlflow.fullname" . }}
              {{- end }}
              automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
              imagePullSecrets:
              {{- range .Values.image.pullSecrets }}
                - name: {{ .name }}
              {{- end }}
              securityContext:
                runAsNonRoot: true
              containers:
                - name: mlflow
                  image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  args:
                    - server
                    - --host={{ .Values.tracking.host }}
                    - --port={{ .Values.tracking.port }}
                  ports:
                    - name: http
                      containerPort: {{ .Values.tracking.port }}
                      protocol: TCP
                  envFrom:
                    - secretRef:
                        name: {{ include "mlflow.fullname" . }}-env-secret
                  {{- if .Values.artifactRoot.pvc.enabled }}
                  volumeMounts:
                    - name: artifacts
                      mountPath: /app/mlartifacts
                  {{- end }}
                  readinessProbe:
                    httpGet:
                      path: /health
                      port: http
                    initialDelaySeconds: 15
                    periodSeconds: 10
                  resources: {{- toYaml .Values.tracking.resources | nindent 20 }}
                  securityContext: {{- toYaml .Values.tracking.containerSecurityContext | nindent 20 }}
              {{- if .Values.artifactRoot.pvc.enabled }}
              volumes:
                - name: artifacts
                  persistentVolumeClaim:
                    claimName: {{ include "mlflow.fullname" . }}-artifacts
              {{- end }}
        {{- end }}
        """
    )
    secret = dedent(
        """\
        apiVersion: v1
        kind: Secret
        metadata:
          name: {{ include "mlflow.fullname" . }}-env-secret
          namespace: {{ .Release.Namespace }}
          labels: {{- include "mlflow.labels" . | nindent 4 }}
        type: Opaque
        stringData:
          MLFLOW_HOST: {{ .Values.tracking.host | quote }}
        {{- if .Values.backendStore.postgres.enabled }}
          PGUSER: {{ .Values.backendStore.postgres.user | quote }}
          PGPASSWORD: {{ .Values.backendStore.postgres.password | quote }}
          PGHOST: {{ .Values.backendStore.postgres.host | quote }}
          PGPORT: {{ .Values.backendStore.postgres.port | quote }}
          PGDATABASE: {{ .Values.backendStore.postgres.database | quote }}
        {{- end }}
        """
    )
    service = dedent(
        """\
        {{- if .Values.tracking.enabled }}
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "mlflow.fullname" . }}-tracking
          namespace: {{ .Release.Namespace }}
          labels: {{- include "mlflow.labels" . | nindent 4 }}
        spec:
          type: {{ .Values.tracking.service.type }}
          ports:
            - name: http
              port: {{ .Values.tracking.service.port }}
              targetPort: http
              protocol: TCP
          selector: {{- include "mlflow.selectorLabels" . | nindent 4 }}
        {{- end }}
        """
    )
    pvc = dedent(
        """\
        {{- if .Values.artifactRoot.pvc.enabled }}
        apiVersion: v1
        kind: PersistentVolumeClaim
        metadata:
          name: {{ include "mlflow.fullname" . }}-artifacts
          namespace: {{ .Release.Namespace }}
          labels: {{- include "mlflow.labels" . | nindent 4 }}
        spec:
          accessModes:
            - {{ .Values.artifactRoot.pvc.accessMode }}
          resources:
            requests:
              storage: {{ .Values.artifactRoot.pvc.size }}
        {{- end }}
        """
    )
    serviceaccount = dedent(
        """\
        {{- if .Values.serviceAccount.create }}
        apiVersion: v1
        kind: ServiceAccount
        metadata:
          name: {{ include "mlflow.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "mlflow.labels" . | nindent 4 }}
        automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
        {{- end }}
        """
    )
    return Chart(
        name="mlflow",
        version="1.4.14",
        app_version="2.10.2",
        description="MLflow tracking server (synthetic evaluation chart)",
        values_text=values,
        helpers=_helpers("mlflow"),
        templates={
            "deployment.yaml": deployment,
            "secret.yaml": secret,
            "svc.yaml": service,
            "pvc.yaml": pvc,
            "serviceaccount.yaml": serviceaccount,
        },
    )


# ---------------------------------------------------------------------------
# PostgreSQL (database)
# ---------------------------------------------------------------------------


def postgresql_chart() -> Chart:
    values = dedent(
        """\
        architecture: standalone  # @enum: standalone, replication
        image:
          registry: docker.io
          repository: bitnami/postgresql
          tag: "16.2.0"
          pullPolicy: IfNotPresent  # @enum: IfNotPresent, Always
        auth:
          username: bn_app
          password: app-secret-pw
          postgresPassword: postgres-secret-pw
          database: bitnami_app
        primary:
          persistence:
            enabled: true
            size: 8Gi
            storageClass: ""
            accessMode: ReadWriteOnce  # @enum: ReadWriteOnce, ReadWriteMany
          resources:
            limits:
              cpu: 1000m
              memory: 1Gi
            requests:
              cpu: 250m
              memory: 256Mi
          podSecurityContext:
            fsGroup: 1001
          containerSecurityContext:
            runAsNonRoot: true
            runAsUser: 1001
            allowPrivilegeEscalation: false
            readOnlyRootFilesystem: true
        readReplicas:
          replicaCount: 1
        service:
          type: ClusterIP  # @enum: ClusterIP, NodePort
          port: 5432
        metrics:
          enabled: false
          image:
            repository: bitnami/postgres-exporter
            tag: "0.15.0"
          port: 9187
        serviceAccount:
          create: true
          automountServiceAccountToken: false
        """
    )
    statefulset = dedent(
        """\
        apiVersion: apps/v1
        kind: StatefulSet
        metadata:
          name: {{ include "postgresql.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "postgresql.labels" . | nindent 4 }}
        spec:
          {{- if eq .Values.architecture "replication" }}
          replicas: {{ add 1 .Values.readReplicas.replicaCount }}
          {{- else }}
          replicas: 1
          {{- end }}
          serviceName: {{ include "postgresql.fullname" . }}-hl
          podManagementPolicy: OrderedReady
          selector:
            matchLabels: {{- include "postgresql.selectorLabels" . | nindent 6 }}
          updateStrategy:
            type: RollingUpdate
          template:
            metadata:
              labels: {{- include "postgresql.selectorLabels" . | nindent 8 }}
            spec:
              {{- if .Values.serviceAccount.create }}
              serviceAccountName: {{ include "postgresql.fullname" . }}
              {{- end }}
              automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
              securityContext:
                fsGroup: {{ .Values.primary.podSecurityContext.fsGroup }}
                runAsNonRoot: true
              containers:
                - name: postgresql
                  image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  ports:
                    - name: tcp-postgresql
                      containerPort: 5432
                      protocol: TCP
                  env:
                    - name: POSTGRES_USER
                      value: {{ .Values.auth.username | quote }}
                    - name: POSTGRES_DATABASE
                      value: {{ .Values.auth.database | quote }}
                    - name: POSTGRES_PASSWORD
                      valueFrom:
                        secretKeyRef:
                          name: {{ include "postgresql.fullname" . }}
                          key: password
                    - name: POSTGRES_POSTGRES_PASSWORD
                      valueFrom:
                        secretKeyRef:
                          name: {{ include "postgresql.fullname" . }}
                          key: postgres-password
                    {{- if eq .Values.architecture "replication" }}
                    - name: POSTGRES_REPLICATION_MODE
                      value: "master"
                    {{- end }}
                  livenessProbe:
                    exec:
                      command:
                        - /bin/sh
                        - -c
                        - exec pg_isready -U {{ .Values.auth.username | quote }}
                    initialDelaySeconds: 30
                    periodSeconds: 10
                  readinessProbe:
                    exec:
                      command:
                        - /bin/sh
                        - -c
                        - exec pg_isready -U {{ .Values.auth.username | quote }}
                    initialDelaySeconds: 5
                    periodSeconds: 10
                  {{- if .Values.primary.persistence.enabled }}
                  volumeMounts:
                    - name: data
                      mountPath: /bitnami/postgresql
                  {{- end }}
                  resources: {{- toYaml .Values.primary.resources | nindent 20 }}
                  securityContext: {{- toYaml .Values.primary.containerSecurityContext | nindent 20 }}
                {{- if .Values.metrics.enabled }}
                - name: metrics
                  image: "{{ .Values.image.registry }}/{{ .Values.metrics.image.repository }}:{{ .Values.metrics.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  ports:
                    - name: http-metrics
                      containerPort: {{ .Values.metrics.port }}
                      protocol: TCP
                  resources:
                    limits:
                      cpu: 250m
                      memory: 256Mi
                    requests:
                      cpu: 100m
                      memory: 128Mi
                  securityContext:
                    runAsNonRoot: true
                    allowPrivilegeEscalation: false
                {{- end }}
          {{- if .Values.primary.persistence.enabled }}
          volumeClaimTemplates:
            - metadata:
                name: data
              spec:
                accessModes:
                  - {{ .Values.primary.persistence.accessMode }}
                resources:
                  requests:
                    storage: {{ .Values.primary.persistence.size }}
                {{- if .Values.primary.persistence.storageClass }}
                storageClassName: {{ .Values.primary.persistence.storageClass }}
                {{- end }}
          {{- end }}
        """
    )
    secret = dedent(
        """\
        apiVersion: v1
        kind: Secret
        metadata:
          name: {{ include "postgresql.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "postgresql.labels" . | nindent 4 }}
        type: Opaque
        stringData:
          password: {{ .Values.auth.password | quote }}
          postgres-password: {{ .Values.auth.postgresPassword | quote }}
        """
    )
    service = dedent(
        """\
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "postgresql.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "postgresql.labels" . | nindent 4 }}
        spec:
          type: {{ .Values.service.type }}
          ports:
            - name: tcp-postgresql
              port: {{ .Values.service.port }}
              targetPort: tcp-postgresql
              protocol: TCP
          selector: {{- include "postgresql.selectorLabels" . | nindent 4 }}
        ---
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "postgresql.fullname" . }}-hl
          namespace: {{ .Release.Namespace }}
          labels: {{- include "postgresql.labels" . | nindent 4 }}
        spec:
          type: ClusterIP
          clusterIP: None
          publishNotReadyAddresses: true
          ports:
            - name: tcp-postgresql
              port: {{ .Values.service.port }}
              targetPort: tcp-postgresql
              protocol: TCP
          selector: {{- include "postgresql.selectorLabels" . | nindent 4 }}
        """
    )
    serviceaccount = dedent(
        """\
        {{- if .Values.serviceAccount.create }}
        apiVersion: v1
        kind: ServiceAccount
        metadata:
          name: {{ include "postgresql.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "postgresql.labels" . | nindent 4 }}
        automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
        {{- end }}
        """
    )
    return Chart(
        name="postgresql",
        version="14.2.3",
        app_version="16.2.0",
        description="PostgreSQL database (synthetic evaluation chart)",
        values_text=values,
        helpers=_helpers("postgresql"),
        templates={
            "statefulset.yaml": statefulset,
            "secret.yaml": secret,
            "svc.yaml": service,
            "serviceaccount.yaml": serviceaccount,
        },
    )


# ---------------------------------------------------------------------------
# RabbitMQ (data streaming)
# ---------------------------------------------------------------------------


def rabbitmq_chart() -> Chart:
    values = dedent(
        """\
        replicaCount: 3
        image:
          registry: docker.io
          repository: bitnami/rabbitmq
          tag: "3.12.13"
          pullPolicy: IfNotPresent  # @enum: IfNotPresent, Always
        auth:
          username: user
          password: rabbitmq-secret-pw
          erlangCookie: secretcookie
        clustering:
          enabled: true
          addressType: hostname  # @enum: hostname, ip
        plugins:
          - rabbitmq_management
          - rabbitmq_peer_discovery_k8s
        persistence:
          enabled: true
          size: 8Gi
          accessMode: ReadWriteOnce  # @enum: ReadWriteOnce, ReadWriteMany
        service:
          type: ClusterIP  # @enum: ClusterIP, NodePort, LoadBalancer
          ports:
            amqp: 5672
            manager: 15672
            epmd: 4369
        resources:
          limits:
            cpu: 1000m
            memory: 2Gi
          requests:
            cpu: 250m
            memory: 512Mi
        containerSecurityContext:
          runAsNonRoot: true
          runAsUser: 1001
          allowPrivilegeEscalation: false
          readOnlyRootFilesystem: true
        podSecurityContext:
          fsGroup: 1001
        serviceAccount:
          create: true
          automountServiceAccountToken: true
        terminationGracePeriodSeconds: 120
        """
    )
    statefulset = dedent(
        """\
        apiVersion: apps/v1
        kind: StatefulSet
        metadata:
          name: {{ include "rabbitmq.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "rabbitmq.labels" . | nindent 4 }}
        spec:
          {{- if .Values.clustering.enabled }}
          replicas: {{ .Values.replicaCount }}
          {{- else }}
          replicas: 1
          {{- end }}
          serviceName: {{ include "rabbitmq.fullname" . }}-headless
          podManagementPolicy: OrderedReady
          selector:
            matchLabels: {{- include "rabbitmq.selectorLabels" . | nindent 6 }}
          template:
            metadata:
              labels: {{- include "rabbitmq.selectorLabels" . | nindent 8 }}
            spec:
              {{- if .Values.serviceAccount.create }}
              serviceAccountName: {{ include "rabbitmq.fullname" . }}
              {{- end }}
              automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
              terminationGracePeriodSeconds: {{ .Values.terminationGracePeriodSeconds }}
              securityContext:
                fsGroup: {{ .Values.podSecurityContext.fsGroup }}
                runAsNonRoot: true
              containers:
                - name: rabbitmq
                  image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  ports:
                    - name: amqp
                      containerPort: {{ .Values.service.ports.amqp }}
                      protocol: TCP
                    - name: manager
                      containerPort: {{ .Values.service.ports.manager }}
                      protocol: TCP
                    - name: epmd
                      containerPort: {{ .Values.service.ports.epmd }}
                      protocol: TCP
                  env:
                    - name: RABBITMQ_USERNAME
                      value: {{ .Values.auth.username | quote }}
                    - name: RABBITMQ_PASSWORD
                      valueFrom:
                        secretKeyRef:
                          name: {{ include "rabbitmq.fullname" . }}
                          key: rabbitmq-password
                    - name: RABBITMQ_ERL_COOKIE
                      valueFrom:
                        secretKeyRef:
                          name: {{ include "rabbitmq.fullname" . }}
                          key: rabbitmq-erlang-cookie
                    {{- if .Values.clustering.enabled }}
                    - name: RABBITMQ_CLUSTER_ADDRESS_TYPE
                      value: {{ .Values.clustering.addressType | quote }}
                    {{- end }}
                    - name: RABBITMQ_PLUGINS
                      value: {{ join "," .Values.plugins | quote }}
                  livenessProbe:
                    exec:
                      command:
                        - /bin/bash
                        - -ec
                        - rabbitmq-diagnostics -q ping
                    initialDelaySeconds: 120
                    periodSeconds: 30
                    timeoutSeconds: 20
                  readinessProbe:
                    exec:
                      command:
                        - /bin/bash
                        - -ec
                        - rabbitmq-diagnostics -q check_running
                    initialDelaySeconds: 10
                    periodSeconds: 30
                    timeoutSeconds: 20
                  {{- if .Values.persistence.enabled }}
                  volumeMounts:
                    - name: data
                      mountPath: /bitnami/rabbitmq/mnesia
                  {{- end }}
                  resources: {{- toYaml .Values.resources | nindent 20 }}
                  securityContext: {{- toYaml .Values.containerSecurityContext | nindent 20 }}
          {{- if .Values.persistence.enabled }}
          volumeClaimTemplates:
            - metadata:
                name: data
              spec:
                accessModes:
                  - {{ .Values.persistence.accessMode }}
                resources:
                  requests:
                    storage: {{ .Values.persistence.size }}
          {{- end }}
        """
    )
    secret = dedent(
        """\
        apiVersion: v1
        kind: Secret
        metadata:
          name: {{ include "rabbitmq.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "rabbitmq.labels" . | nindent 4 }}
        type: Opaque
        stringData:
          rabbitmq-password: {{ .Values.auth.password | quote }}
          rabbitmq-erlang-cookie: {{ .Values.auth.erlangCookie | quote }}
        """
    )
    service = dedent(
        """\
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "rabbitmq.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "rabbitmq.labels" . | nindent 4 }}
        spec:
          type: {{ .Values.service.type }}
          ports:
            - name: amqp
              port: {{ .Values.service.ports.amqp }}
              targetPort: amqp
              protocol: TCP
            - name: manager
              port: {{ .Values.service.ports.manager }}
              targetPort: manager
              protocol: TCP
          selector: {{- include "rabbitmq.selectorLabels" . | nindent 4 }}
        ---
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "rabbitmq.fullname" . }}-headless
          namespace: {{ .Release.Namespace }}
          labels: {{- include "rabbitmq.labels" . | nindent 4 }}
        spec:
          type: ClusterIP
          clusterIP: None
          publishNotReadyAddresses: true
          ports:
            - name: epmd
              port: {{ .Values.service.ports.epmd }}
              targetPort: epmd
              protocol: TCP
            - name: amqp
              port: {{ .Values.service.ports.amqp }}
              targetPort: amqp
              protocol: TCP
          selector: {{- include "rabbitmq.selectorLabels" . | nindent 4 }}
        """
    )
    serviceaccount = dedent(
        """\
        {{- if .Values.serviceAccount.create }}
        apiVersion: v1
        kind: ServiceAccount
        metadata:
          name: {{ include "rabbitmq.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "rabbitmq.labels" . | nindent 4 }}
        automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
        {{- end }}
        """
    )
    configmap = dedent(
        """\
        apiVersion: v1
        kind: ConfigMap
        metadata:
          name: {{ include "rabbitmq.fullname" . }}-config
          namespace: {{ .Release.Namespace }}
          labels: {{- include "rabbitmq.labels" . | nindent 4 }}
        data:
          rabbitmq.conf: |-
            cluster_formation.peer_discovery_backend = rabbit_peer_discovery_k8s
            cluster_formation.k8s.address_type = {{ .Values.clustering.addressType }}
            queue_master_locator = min-masters
          enabled_plugins: |-
            [{{ join ", " .Values.plugins }}].
        """
    )
    return Chart(
        name="rabbitmq",
        version="12.15.0",
        app_version="3.12.13",
        description="RabbitMQ message broker (synthetic evaluation chart)",
        values_text=values,
        helpers=_helpers("rabbitmq"),
        templates={
            "statefulset.yaml": statefulset,
            "secret.yaml": secret,
            "svc.yaml": service,
            "serviceaccount.yaml": serviceaccount,
            "configuration.yaml": configmap,
        },
    )


# ---------------------------------------------------------------------------
# SonarQube (security tooling)
# ---------------------------------------------------------------------------


def sonarqube_chart() -> Chart:
    values = dedent(
        """\
        replicaCount: 1
        image:
          registry: docker.io
          repository: sonarqube
          tag: "10.4.1-community"
          pullPolicy: IfNotPresent  # @enum: IfNotPresent, Always
        deploymentStrategy:
          type: Recreate  # @enum: Recreate, RollingUpdate
        service:
          type: ClusterIP  # @enum: ClusterIP, NodePort, LoadBalancer
          port: 9000
        ingress:
          enabled: true
          hostname: sonarqube.local
          path: /
          pathType: Prefix  # @enum: Prefix, Exact
        persistence:
          enabled: true
          size: 10Gi
          accessMode: ReadWriteOnce  # @enum: ReadWriteOnce, ReadWriteMany
        postgresql:
          host: sonarqube-postgresql
          port: 5432
          database: sonarDB
          username: sonarUser
          password: sonar-secret-pw
        monitoring:
          passcode: monitoring-pass
        initSysctl:
          enabled: true
          vmMaxMapCount: 524288
        resources:
          limits:
            cpu: 2000m
            memory: 4Gi
          requests:
            cpu: 400m
            memory: 2Gi
        containerSecurityContext:
          runAsNonRoot: true
          runAsUser: 1000
          allowPrivilegeEscalation: false
          readOnlyRootFilesystem: true
        podSecurityContext:
          fsGroup: 0
        serviceAccount:
          create: true
          automountServiceAccountToken: false
        networkPolicy:
          enabled: true
        jobs:
          migrationCheck: true
        logCollector:
          enabled: true
          image:
            repository: fluent-bit
            tag: "2.2.2"
          bufferLimit: 32Mi
        """
    )
    deployment = dedent(
        """\
        apiVersion: apps/v1
        kind: Deployment
        metadata:
          name: {{ include "sonarqube.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          replicas: {{ .Values.replicaCount }}
          strategy:
            type: {{ .Values.deploymentStrategy.type }}
          selector:
            matchLabels: {{- include "sonarqube.selectorLabels" . | nindent 6 }}
          template:
            metadata:
              labels: {{- include "sonarqube.selectorLabels" . | nindent 8 }}
            spec:
              {{- if .Values.serviceAccount.create }}
              serviceAccountName: {{ include "sonarqube.fullname" . }}
              {{- end }}
              automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
              securityContext:
                fsGroup: {{ .Values.podSecurityContext.fsGroup }}
              {{- if .Values.initSysctl.enabled }}
              initContainers:
                - name: init-sysctl
                  image: "{{ .Values.image.registry }}/busybox:1.36"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  command:
                    - sysctl
                    - -w
                    - vm.max_map_count={{ .Values.initSysctl.vmMaxMapCount }}
                  resources:
                    limits:
                      cpu: 100m
                      memory: 64Mi
                    requests:
                      cpu: 50m
                      memory: 32Mi
                  securityContext:
                    runAsNonRoot: true
                    allowPrivilegeEscalation: false
              {{- end }}
              containers:
                - name: sonarqube
                  image: "{{ .Values.image.registry }}/{{ .Values.image.repository }}:{{ .Values.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  ports:
                    - name: http
                      containerPort: {{ .Values.service.port }}
                      protocol: TCP
                  env:
                    - name: SONAR_JDBC_URL
                      value: "jdbc:postgresql://{{ .Values.postgresql.host }}:{{ .Values.postgresql.port }}/{{ .Values.postgresql.database }}"
                    - name: SONAR_JDBC_USERNAME
                      value: {{ .Values.postgresql.username | quote }}
                    - name: SONAR_JDBC_PASSWORD
                      valueFrom:
                        secretKeyRef:
                          name: {{ include "sonarqube.fullname" . }}
                          key: jdbc-password
                    - name: SONAR_WEB_SYSTEMPASSCODE
                      valueFrom:
                        secretKeyRef:
                          name: {{ include "sonarqube.fullname" . }}
                          key: monitoring-passcode
                  livenessProbe:
                    httpGet:
                      path: /api/system/liveness
                      port: http
                    initialDelaySeconds: 60
                    periodSeconds: 30
                  readinessProbe:
                    httpGet:
                      path: /api/system/status
                      port: http
                    initialDelaySeconds: 60
                    periodSeconds: 30
                  {{- if .Values.persistence.enabled }}
                  volumeMounts:
                    - name: data
                      mountPath: /opt/sonarqube/data
                  {{- end }}
                  resources: {{- toYaml .Values.resources | nindent 20 }}
                  securityContext: {{- toYaml .Values.containerSecurityContext | nindent 20 }}
              {{- if .Values.persistence.enabled }}
              volumes:
                - name: data
                  persistentVolumeClaim:
                    claimName: {{ include "sonarqube.fullname" . }}-data
              {{- end }}
        """
    )
    secret = dedent(
        """\
        apiVersion: v1
        kind: Secret
        metadata:
          name: {{ include "sonarqube.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        type: Opaque
        stringData:
          jdbc-password: {{ .Values.postgresql.password | quote }}
          monitoring-passcode: {{ .Values.monitoring.passcode | quote }}
        """
    )
    service = dedent(
        """\
        apiVersion: v1
        kind: Service
        metadata:
          name: {{ include "sonarqube.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          type: {{ .Values.service.type }}
          ports:
            - name: http
              port: {{ .Values.service.port }}
              targetPort: http
              protocol: TCP
          selector: {{- include "sonarqube.selectorLabels" . | nindent 4 }}
        """
    )
    pvc = dedent(
        """\
        {{- if .Values.persistence.enabled }}
        apiVersion: v1
        kind: PersistentVolumeClaim
        metadata:
          name: {{ include "sonarqube.fullname" . }}-data
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          accessModes:
            - {{ .Values.persistence.accessMode }}
          resources:
            requests:
              storage: {{ .Values.persistence.size }}
        {{- end }}
        """
    )
    ingress = dedent(
        """\
        {{- if .Values.ingress.enabled }}
        apiVersion: networking.k8s.io/v1
        kind: Ingress
        metadata:
          name: {{ include "sonarqube.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          rules:
            - host: {{ .Values.ingress.hostname }}
              http:
                paths:
                  - path: {{ .Values.ingress.path }}
                    pathType: {{ .Values.ingress.pathType }}
                    backend:
                      service:
                        name: {{ include "sonarqube.fullname" . }}
                        port:
                          name: http
        {{- end }}
        """
    )
    networkpolicy = dedent(
        """\
        {{- if .Values.networkPolicy.enabled }}
        apiVersion: networking.k8s.io/v1
        kind: NetworkPolicy
        metadata:
          name: {{ include "sonarqube.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          podSelector:
            matchLabels: {{- include "sonarqube.selectorLabels" . | nindent 6 }}
          policyTypes:
            - Ingress
          ingress:
            - ports:
                - protocol: TCP
                  port: {{ .Values.service.port }}
        {{- end }}
        """
    )
    migration_job = dedent(
        """\
        {{- if .Values.jobs.migrationCheck }}
        apiVersion: batch/v1
        kind: Job
        metadata:
          name: {{ include "sonarqube.fullname" . }}-migration-check
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          backoffLimit: 3
          template:
            metadata:
              labels: {{- include "sonarqube.selectorLabels" . | nindent 8 }}
            spec:
              restartPolicy: Never
              containers:
                - name: migration-check
                  image: "{{ .Values.image.registry }}/curlimages/curl:8.6.0"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  command:
                    - sh
                    - -c
                    - curl -sf http://{{ include "sonarqube.fullname" . }}:{{ .Values.service.port }}/api/system/status
                  resources:
                    limits:
                      cpu: 100m
                      memory: 64Mi
                    requests:
                      cpu: 50m
                      memory: 32Mi
                  securityContext:
                    runAsNonRoot: true
                    allowPrivilegeEscalation: false
                    readOnlyRootFilesystem: true
        {{- end }}
        """
    )
    log_daemonset = dedent(
        """\
        {{- if .Values.logCollector.enabled }}
        apiVersion: apps/v1
        kind: DaemonSet
        metadata:
          name: {{ include "sonarqube.fullname" . }}-log-collector
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        spec:
          selector:
            matchLabels: {{- include "sonarqube.selectorLabels" . | nindent 6 }}
          updateStrategy:
            type: RollingUpdate
          template:
            metadata:
              labels: {{- include "sonarqube.selectorLabels" . | nindent 8 }}
            spec:
              automountServiceAccountToken: false
              securityContext:
                runAsNonRoot: true
              containers:
                - name: log-collector
                  image: "{{ .Values.image.registry }}/{{ .Values.logCollector.image.repository }}:{{ .Values.logCollector.image.tag }}"
                  imagePullPolicy: {{ .Values.image.pullPolicy }}
                  env:
                    - name: BUFFER_LIMIT
                      value: {{ .Values.logCollector.bufferLimit | quote }}
                  resources:
                    limits:
                      cpu: 200m
                      memory: 128Mi
                    requests:
                      cpu: 50m
                      memory: 64Mi
                  securityContext:
                    runAsNonRoot: true
                    allowPrivilegeEscalation: false
                    readOnlyRootFilesystem: true
        {{- end }}
        """
    )
    serviceaccount = dedent(
        """\
        {{- if .Values.serviceAccount.create }}
        apiVersion: v1
        kind: ServiceAccount
        metadata:
          name: {{ include "sonarqube.fullname" . }}
          namespace: {{ .Release.Namespace }}
          labels: {{- include "sonarqube.labels" . | nindent 4 }}
        automountServiceAccountToken: {{ .Values.serviceAccount.automountServiceAccountToken }}
        {{- end }}
        """
    )
    return Chart(
        name="sonarqube",
        version="10.4.0",
        app_version="10.4.1",
        description="SonarQube code-quality platform (synthetic evaluation chart)",
        values_text=values,
        helpers=_helpers("sonarqube"),
        templates={
            "deployment.yaml": deployment,
            "secret.yaml": secret,
            "svc.yaml": service,
            "pvc.yaml": pvc,
            "ingress.yaml": ingress,
            "networkpolicy.yaml": networkpolicy,
            "migration-job.yaml": migration_job,
            "log-daemonset.yaml": log_daemonset,
            "serviceaccount.yaml": serviceaccount,
        },
    )


_FACTORIES = {
    "nginx": nginx_chart,
    "mlflow": mlflow_chart,
    "postgresql": postgresql_chart,
    "rabbitmq": rabbitmq_chart,
    "sonarqube": sonarqube_chart,
}


def get_chart(name: str) -> Chart:
    """Build the named operator chart."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(f"unknown operator {name!r}; choose from {OPERATOR_NAMES}") from None


def all_charts() -> dict[str, Chart]:
    """All five operator charts, keyed by name."""
    return {name: factory() for name, factory in _FACTORIES.items()}
