"""The operator deployment client.

Models the client side of the paper's testbed: a Helm-based operator
(or `kubectl apply` of its rendered manifests) issuing API requests to
the cluster.  The transport is pluggable so the same client runs
against the API server directly (the RBAC baseline) or through the
KubeFence proxy -- the two configurations compared in Tables III/IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.helm.chart import Chart, render_chart
from repro.k8s.apiserver import ApiRequest, ApiResponse, User


class Transport(Protocol):
    """Anything that can carry an API request to the cluster."""

    def submit(self, request: ApiRequest) -> ApiResponse: ...


class DirectTransport:
    """Requests go straight to the API server (no proxy)."""

    def __init__(self, api: Any):
        self.api = api

    def submit(self, request: ApiRequest) -> ApiResponse:
        return self.api.handle(request)


@dataclass
class DeploymentResult:
    """Outcome of one operator deployment."""

    operator: str
    responses: list[tuple[dict, ApiResponse]] = field(default_factory=list)

    @property
    def succeeded(self) -> list[dict]:
        return [m for m, r in self.responses if r.ok]

    @property
    def denied(self) -> list[tuple[dict, ApiResponse]]:
        return [(m, r) for m, r in self.responses if not r.ok]

    @property
    def all_ok(self) -> bool:
        return all(r.ok for _, r in self.responses)


class OperatorClient:
    """Deploys an operator's rendered manifests through a transport."""

    def __init__(self, transport: Transport, username: str | None = None,
                 groups: tuple[str, ...] = ("system:authenticated",)):
        self.transport = transport
        self.username = username
        self.groups = groups

    def _user_for(self, operator: str) -> User:
        return User(self.username or f"{operator}-operator", self.groups)

    def deploy_chart(
        self,
        chart: Chart,
        overrides: dict[str, Any] | None = None,
        release_name: str | None = None,
        namespace: str = "default",
    ) -> DeploymentResult:
        """Render the chart and apply every manifest (Day-1 install)."""
        manifests = render_chart(
            chart, overrides=overrides, release_name=release_name, namespace=namespace
        )
        return self.apply_manifests(chart.name, manifests)

    def apply_manifests(self, operator: str, manifests: list[dict]) -> DeploymentResult:
        result = DeploymentResult(operator=operator)
        user = self._user_for(operator)
        for manifest in manifests:
            request = ApiRequest.from_manifest(manifest, user, verb="create")
            result.responses.append((manifest, self.transport.submit(request)))
        return result

    def submit_manifest(
        self, operator: str, manifest: dict, verb: str = "create"
    ) -> ApiResponse:
        """Submit a single manifest (used by the attack campaigns)."""
        request = ApiRequest.from_manifest(manifest, self._user_for(operator), verb=verb)
        return self.transport.submit(request)

    def reconcile(self, result: DeploymentResult) -> list[ApiResponse]:
        """Day-2 control loop: read back and re-apply every resource,
        as operators do continuously (Sec. II-C).  This also puts the
        get/update verbs into the audit log, so audit2rbac learns the
        operator's full verb set."""
        user = self._user_for(result.operator)
        responses: list[ApiResponse] = []
        for manifest in result.succeeded:
            kind = manifest.get("kind", "")
            meta = manifest.get("metadata", {})
            responses.append(
                self.transport.submit(
                    ApiRequest(
                        verb="get",
                        kind=kind,
                        user=user,
                        namespace=meta.get("namespace", "default"),
                        name=meta.get("name"),
                    )
                )
            )
            responses.append(
                self.transport.submit(
                    ApiRequest.from_manifest(manifest, user, verb="update")
                )
            )
        return responses
