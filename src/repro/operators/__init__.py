"""The five Kubernetes Operators used in the paper's evaluation.

The paper selects five Helm-based Operators from Artifact Hub --
PostgreSQL, Nginx, MLflow, RabbitMQ, and SonarQube -- spanning
databases, networking, AI/ML, data streaming, and security tooling.
This package provides synthetic charts modelled on those operators:
same resource kinds, same templating idioms (conditionals, loops, enum
annotations, security contexts, user-overridable values), sized so the
configuration-space exploration and attack-surface numbers behave like
the paper's.

- :mod:`repro.operators.charts` -- the five chart definitions.
- :mod:`repro.operators.client` -- an operator deployment client that
  drives the K8s API (directly or through the KubeFence proxy).
"""

from repro.operators.charts import (
    OPERATOR_NAMES,
    all_charts,
    get_chart,
    mlflow_chart,
    nginx_chart,
    postgresql_chart,
    rabbitmq_chart,
    sonarqube_chart,
)
from repro.operators.client import OperatorClient

__all__ = [
    "OPERATOR_NAMES",
    "OperatorClient",
    "all_charts",
    "get_chart",
    "mlflow_chart",
    "nginx_chart",
    "postgresql_chart",
    "rabbitmq_chart",
    "sonarqube_chart",
]
