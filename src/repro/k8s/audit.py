"""Kubernetes-style audit logging.

Every request handled by the API server is recorded as an
:class:`AuditEvent` mirroring the ``audit.k8s.io/v1`` Event shape the
paper shows in Fig. 11.  The audit log is the input to the
``audit2rbac`` baseline (inferring least-privilege RBAC policies).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class AuditEvent:
    """One audited API interaction."""

    request_uri: str
    verb: str
    username: str
    groups: tuple[str, ...]
    resource: str  # plural, e.g. "deployments"
    api_group: str
    namespace: str | None
    name: str | None
    response_code: int
    request_object: dict[str, Any] | None = None
    source_ip: str = "127.0.0.1"
    stage: str = "ResponseComplete"
    #: observability correlation (annotations in the wire shape): the
    #: request trace id assigned by the proxy/API server and the
    #: server-side pipeline latency.
    trace_id: str | None = None
    latency_ns: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Render in the audit.k8s.io/v1 wire shape."""
        event: dict[str, Any] = {
            "kind": "Event",
            "apiVersion": "audit.k8s.io/v1",
            "stage": self.stage,
            "requestURI": self.request_uri,
            "verb": self.verb,
            "user": {"username": self.username, "groups": list(self.groups)},
            "sourceIPs": [self.source_ip],
            "objectRef": {
                "resource": self.resource,
                "namespace": self.namespace,
                "name": self.name,
                "apiGroup": self.api_group,
            },
            "responseStatus": {"metadata": {}, "code": self.response_code},
        }
        if self.request_object is not None:
            event["requestObject"] = self.request_object
        annotations: dict[str, str] = {}
        if self.trace_id:
            annotations["kubefence.io/trace-id"] = self.trace_id
        if self.latency_ns is not None:
            annotations["kubefence.io/latency-ns"] = str(self.latency_ns)
        if annotations:
            event["annotations"] = annotations
        return event

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class AuditLog:
    """An append-only audit sink with query helpers.

    Thread-safe: the API server records from every
    ``ThreadingHTTPServer`` worker while audit2rbac / anomaly
    bootstrap / forensics iterate concurrently, so every reader works
    on a snapshot taken under the same lock the writer holds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[AuditEvent] = []

    def record(self, event: AuditEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self) -> list[AuditEvent]:
        with self._lock:
            return list(self._events)

    def successful(self) -> Iterator[AuditEvent]:
        """Events whose request was accepted (2xx)."""
        return (e for e in self.events() if 200 <= e.response_code < 300)

    def for_user(self, username: str) -> list[AuditEvent]:
        return [e for e in self.events() if e.username == username]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def dump_jsonl(self) -> str:
        """The on-disk audit log format (one JSON event per line)."""
        return "\n".join(e.to_json() for e in self.events())

    @classmethod
    def from_jsonl(cls, text: str) -> "AuditLog":
        """Parse an on-disk audit log back into an AuditLog -- the
        entry point for offline audit2rbac / anomaly-profile runs."""
        log = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            object_ref = data.get("objectRef") or {}
            request_object = data.get("requestObject")
            annotations = data.get("annotations") or {}
            raw_latency = annotations.get("kubefence.io/latency-ns")
            log.record(
                AuditEvent(
                    request_uri=data.get("requestURI", ""),
                    verb=data.get("verb", ""),
                    username=(data.get("user") or {}).get("username", ""),
                    groups=tuple((data.get("user") or {}).get("groups", [])),
                    resource=object_ref.get("resource", ""),
                    api_group=object_ref.get("apiGroup", "") or "",
                    namespace=object_ref.get("namespace"),
                    name=object_ref.get("name"),
                    response_code=(data.get("responseStatus") or {}).get("code", 0),
                    request_object=request_object,
                    source_ip=(data.get("sourceIPs") or ["127.0.0.1"])[0],
                    stage=data.get("stage", "ResponseComplete"),
                    trace_id=annotations.get("kubefence.io/trace-id"),
                    latency_ns=int(raw_latency) if raw_latency is not None else None,
                )
            )
        return log
