"""Kubernetes resource-quantity arithmetic.

Parses the quantity grammar used by ``resources.requests/limits``,
LimitRange and ResourceQuota: plain numbers, decimal SI suffixes
(``m``, ``k``, ``M``, ``G``, ...) and binary suffixes (``Ki``, ``Mi``,
``Gi``, ...).  CPU is normalised to millicores, memory/storage to
bytes, so quota accounting can sum and compare heterogeneous spellings
(``0.5`` == ``500m``, ``1Gi`` == ``1073741824``).
"""

from __future__ import annotations

import re

_SUFFIXES: dict[str, float] = {
    "": 1.0,
    "m": 1e-3,
    "k": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
    "P": 1e15,
    "E": 1e18,
    "Ki": 2**10,
    "Mi": 2**20,
    "Gi": 2**30,
    "Ti": 2**40,
    "Pi": 2**50,
    "Ei": 2**60,
}

_QUANTITY_RE = re.compile(
    r"^(?P<number>[+-]?\d+(?:\.\d+)?)(?P<suffix>m|k|M|G|T|P|E|Ki|Mi|Gi|Ti|Pi|Ei)?$"
)


class QuantityError(ValueError):
    """Malformed quantity string."""


def parse_quantity(value: "str | int | float") -> float:
    """Parse a quantity into its base value (cores, bytes, counts)."""
    if isinstance(value, bool):
        raise QuantityError(f"not a quantity: {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    match = _QUANTITY_RE.match(value.strip())
    if match is None:
        raise QuantityError(f"not a quantity: {value!r}")
    return float(match.group("number")) * _SUFFIXES[match.group("suffix") or ""]


def parse_cpu_millis(value: "str | int | float") -> float:
    """CPU quantity in millicores (``1`` -> 1000, ``250m`` -> 250)."""
    return parse_quantity(value) * 1000.0


def parse_memory_bytes(value: "str | int | float") -> float:
    """Memory/storage quantity in bytes."""
    return parse_quantity(value)


def format_cpu(millis: float) -> str:
    if millis % 1000 == 0:
        return str(int(millis // 1000))
    return f"{int(millis)}m"


def format_memory(num_bytes: float) -> str:
    for suffix, factor in (("Gi", 2**30), ("Mi", 2**20), ("Ki", 2**10)):
        if num_bytes >= factor and num_bytes % factor == 0:
            return f"{int(num_bytes // factor)}{suffix}"
    return str(int(num_bytes))


def add_quantities(left: "str | int | float", right: "str | int | float") -> float:
    return parse_quantity(left) + parse_quantity(right)


def quantity_leq(left: "str | int | float", right: "str | int | float") -> bool:
    """left <= right in base units."""
    return parse_quantity(left) <= parse_quantity(right)
