"""Kubernetes API error model.

The real API server answers failed requests with a ``Status`` object
and an HTTP status code.  :class:`ApiError` carries both, and
:meth:`ApiError.to_status` renders the same wire shape.
"""

from __future__ import annotations

from typing import Any


class ApiError(Exception):
    """An API request failure with Kubernetes status semantics."""

    def __init__(self, code: int, reason: str, message: str, details: dict | None = None):
        super().__init__(message)
        self.code = code
        self.reason = reason
        self.message = message
        self.details = details or {}

    def to_status(self) -> dict[str, Any]:
        """Render as a Kubernetes ``Status`` object."""
        return {
            "kind": "Status",
            "apiVersion": "v1",
            "status": "Failure",
            "message": self.message,
            "reason": self.reason,
            "details": self.details,
            "code": self.code,
        }

    # -- constructors mirroring k8s.io/apimachinery errors ----------------

    @classmethod
    def bad_request(cls, message: str, **details: Any) -> "ApiError":
        return cls(400, "BadRequest", message, details)

    @classmethod
    def forbidden(cls, message: str, **details: Any) -> "ApiError":
        return cls(403, "Forbidden", message, details)

    @classmethod
    def not_found(cls, kind: str, name: str) -> "ApiError":
        return cls(404, "NotFound", f'{kind.lower()}s "{name}" not found',
                   {"kind": kind, "name": name})

    @classmethod
    def method_not_allowed(cls, message: str) -> "ApiError":
        return cls(405, "MethodNotAllowed", message)

    @classmethod
    def conflict(cls, kind: str, name: str, message: str | None = None) -> "ApiError":
        return cls(
            409,
            "AlreadyExists" if message is None else "Conflict",
            message or f'{kind.lower()}s "{name}" already exists',
            {"kind": kind, "name": name},
        )

    @classmethod
    def invalid(cls, message: str, **details: Any) -> "ApiError":
        return cls(422, "Invalid", message, details)

    def __repr__(self) -> str:
        return f"ApiError(code={self.code}, reason={self.reason!r}, message={self.message!r})"
