"""An etcd-like versioned object store.

The store keeps Kubernetes objects keyed by ``(kind, namespace, name)``
with a monotonically increasing cluster-wide ``resourceVersion``,
optimistic-concurrency checks on update, and an event stream that
controllers consume (a simplified watch).

All operations are guarded by a reentrant lock so HTTP worker threads,
controllers and the CVE scanner loop can share one store:
:meth:`ObjectStore.snapshot` gives readers a torn-read-free view —
every write that returned before the snapshot call is included.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.k8s.errors import ApiError
from repro.k8s.objects import K8sObject


@dataclass(frozen=True)
class StoreEvent:
    """One watch event: ADDED, MODIFIED or DELETED."""

    type: str
    obj: K8sObject
    resource_version: int


class ObjectStore:
    """In-memory versioned store with watch semantics."""

    def __init__(self) -> None:
        self._objects: dict[tuple[str, str, str], K8sObject] = {}
        self._revision = 0
        self._watchers: list[Callable[[StoreEvent], None]] = []
        # Reentrant: watch callbacks fire under the lock and controllers
        # may re-enter the store from them.
        self._lock = threading.RLock()

    # -- versioning --------------------------------------------------------

    @property
    def revision(self) -> int:
        """Current cluster-wide resource version."""
        with self._lock:
            return self._revision

    def _bump(self, obj: K8sObject) -> None:
        self._revision += 1
        obj.metadata["resourceVersion"] = str(self._revision)

    # -- CRUD --------------------------------------------------------------

    def create(self, obj: K8sObject) -> K8sObject:
        with self._lock:
            key = obj.key()
            if key in self._objects:
                raise ApiError.conflict(obj.kind, obj.name)
            stored = obj.copy()
            self._bump(stored)
            stored.metadata.setdefault("uid", f"uid-{self._revision:08d}")
            self._objects[key] = stored
            self._emit(StoreEvent("ADDED", stored.copy(), self._revision))
            return stored.copy()

    def get(self, kind: str, namespace: str, name: str) -> K8sObject:
        with self._lock:
            try:
                return self._objects[(kind, namespace, name)].copy()
            except KeyError:
                raise ApiError.not_found(kind, name) from None

    def exists(self, kind: str, namespace: str, name: str) -> bool:
        with self._lock:
            return (kind, namespace, name) in self._objects

    def update(self, obj: K8sObject, check_version: bool = False) -> K8sObject:
        with self._lock:
            key = obj.key()
            if key not in self._objects:
                raise ApiError.not_found(obj.kind, obj.name)
            if check_version:
                current = self._objects[key]
                if obj.resource_version is not None and obj.resource_version != current.resource_version:
                    raise ApiError.conflict(
                        obj.kind,
                        obj.name,
                        message=(
                            f"Operation cannot be fulfilled on {obj.kind} {obj.name!r}: "
                            "the object has been modified"
                        ),
                    )
            stored = obj.copy()
            # Preserve the uid assigned at creation time.
            stored.metadata["uid"] = self._objects[key].metadata.get("uid")
            self._bump(stored)
            self._objects[key] = stored
            self._emit(StoreEvent("MODIFIED", stored.copy(), self._revision))
            return stored.copy()

    def delete(self, kind: str, namespace: str, name: str) -> K8sObject:
        with self._lock:
            key = (kind, namespace, name)
            if key not in self._objects:
                raise ApiError.not_found(kind, name)
            obj = self._objects.pop(key)
            self._revision += 1
            self._emit(StoreEvent("DELETED", obj.copy(), self._revision))
            return obj.copy()

    def list(self, kind: str, namespace: str | None = None) -> list[K8sObject]:
        with self._lock:
            out = [
                o.copy()
                for (k, ns, _), o in self._objects.items()
                if k == kind and (namespace is None or ns == namespace)
            ]
        out.sort(key=lambda o: (o.namespace, o.name))
        return out

    def all_objects(self) -> Iterator[K8sObject]:
        with self._lock:
            items = [obj.copy() for obj in self._objects.values()]
        yield from items

    def snapshot(self) -> tuple[int, list[K8sObject]]:
        """Atomic ``(revision, objects)`` view of the store.

        Any write whose call returned before ``snapshot()`` was entered
        is guaranteed to be reflected — the contract the scanner relies
        on to never miss an object committed before a scan tick.
        """
        with self._lock:
            return self._revision, [o.copy() for o in self._objects.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    # -- watch -------------------------------------------------------------

    def watch(self, callback: Callable[[StoreEvent], None]) -> Callable[[], None]:
        """Register a watcher; returns an unsubscribe function."""
        with self._lock:
            self._watchers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._watchers:
                    self._watchers.remove(callback)

        return unsubscribe

    def _emit(self, event: StoreEvent) -> None:
        for watcher in list(self._watchers):
            watcher(event)
