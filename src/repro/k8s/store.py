"""An etcd-like versioned object store.

The store keeps Kubernetes objects keyed by ``(kind, namespace, name)``
with a monotonically increasing cluster-wide ``resourceVersion``,
optimistic-concurrency checks on update, and an event stream that
controllers consume (a simplified watch).

All operations are guarded by a reentrant lock so HTTP worker threads,
controllers and the CVE scanner loop can share one store:
:meth:`ObjectStore.snapshot` gives readers a torn-read-free view —
every write that returned before the snapshot call is included.

Durability (crash-only operation) is layered in via
:mod:`repro.k8s.wal`: a store opened through :meth:`ObjectStore.recover`
appends every create/update/delete to a write-ahead log *before*
mutating memory or acknowledging the caller, periodically compacts
into an atomic snapshot, and on restart replays snapshot + WAL back to
the exact last-acknowledged revision.  ``REPRO_NO_WAL=1`` keeps
everything in memory (see docs/RESILIENCE.md, "Durability & crash
recovery").
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.k8s.errors import ApiError
from repro.k8s.objects import K8sObject
from repro.k8s.wal import (
    SNAPSHOT_NAME,
    WAL_NAME,
    WalError,
    WriteAheadLog,
    crashpoint,
    load_snapshot,
    wal_enabled,
    write_snapshot,
)

#: Appends between automatic compacting snapshots (override with the
#: env var; 0 disables auto-compaction).
COMPACT_EVERY_ENV = "REPRO_WAL_COMPACT_EVERY"
DEFAULT_COMPACT_EVERY = 1024


def _env_compact_every() -> int:
    raw = os.environ.get(COMPACT_EVERY_ENV, "")
    try:
        return int(raw) if raw else DEFAULT_COMPACT_EVERY
    except ValueError:
        return DEFAULT_COMPACT_EVERY


@dataclass(frozen=True)
class StoreEvent:
    """One watch event: ADDED, MODIFIED or DELETED."""

    type: str
    obj: K8sObject
    resource_version: int


@dataclass
class RecoveryInfo:
    """What :meth:`ObjectStore.recover` rebuilt, for observability."""

    path: str
    revision: int
    snapshot_objects: int
    replayed: int
    truncated_bytes: int
    torn_reason: str | None
    duration_s: float
    #: Set once an APIServer has published the ``kind="recovery"``
    #: SecurityEvent for this recovery (so restarts announce exactly
    #: once, no matter how many servers front the store).
    announced: bool = False


class ObjectStore:
    """In-memory versioned store with watch semantics and an optional
    write-ahead log for crash-only durability."""

    #: Consecutive watch-callback failures before the watcher is
    #: detached (mirrors ``EventBus.MAX_SUBSCRIBER_ERRORS``).
    MAX_WATCHER_ERRORS = 8

    def __init__(
        self,
        wal: WriteAheadLog | None = None,
        compact_every: int | None = None,
    ) -> None:
        self._objects: dict[tuple[str, str, str], K8sObject] = {}
        self._revision = 0
        self._watchers: list[Callable[[StoreEvent], None]] = []
        # Reentrant: watch callbacks fire under the lock and controllers
        # may re-enter the store from them.
        self._lock = threading.RLock()
        self._wal = wal
        self._compact_every = (
            compact_every if compact_every is not None else _env_compact_every()
        )
        self._appends_since_compact = 0
        #: Compacting snapshots taken over this store's lifetime.
        self.compactions = 0
        #: Populated by :meth:`recover`; ``None`` for a fresh store.
        self.recovery: RecoveryInfo | None = None
        #: Watch callbacks that raised out of a committed write (total),
        #: and watchers detached for failing repeatedly.
        self.watcher_errors = 0
        self.dropped_watchers = 0
        self._watcher_failures: dict[int, int] = {}
        # Bound by bind_metrics(); plain counters above always work.
        self._m_watcher_errors: Any | None = None
        self._m_wal_appends: Any | None = None

    # -- durability --------------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log (``None`` = in-memory store)."""
        return self._wal

    @property
    def durable(self) -> bool:
        return self._wal is not None

    @classmethod
    def recover(
        cls,
        path: str | Path,
        fsync: str | None = None,
        compact_every: int | None = None,
    ) -> "ObjectStore":
        """Rebuild a store from ``path`` (a data directory) and attach
        its WAL for further appends.

        Replays the compacted snapshot, then every complete WAL record
        — restoring the exact last-acknowledged revision.  A torn tail
        (an append interrupted mid-write, i.e. never acknowledged) is
        truncated, never half-applied.  Under ``REPRO_NO_WAL=1`` this
        returns a plain in-memory store.
        """
        if not wal_enabled():
            return cls(compact_every=compact_every)
        data_dir = Path(path)
        started = time.perf_counter()
        snap_revision, snap_objects = load_snapshot(data_dir / SNAPSHOT_NAME)
        wal = WriteAheadLog(data_dir / WAL_NAME, fsync=fsync)
        store = cls(wal=wal, compact_every=compact_every)
        with store._lock:
            store._revision = snap_revision
            for data in snap_objects:
                obj = K8sObject(data)
                store._objects[obj.key()] = obj
            for record in wal.recovered:
                store._apply_record(record)
        store.recovery = RecoveryInfo(
            path=str(data_dir),
            revision=store._revision,
            snapshot_objects=len(snap_objects),
            replayed=len(wal.recovered),
            truncated_bytes=wal.truncated_bytes,
            torn_reason=wal.torn_reason,
            duration_s=time.perf_counter() - started,
        )
        return store

    def _apply_record(self, record: dict[str, Any]) -> None:
        """Replay one WAL record (idempotent: replaying a prefix twice
        — e.g. snapshot taken, crash before WAL reset — converges)."""
        op = record.get("op")
        revision = int(record.get("rev", self._revision + 1))
        if op in ("create", "update"):
            obj = K8sObject(record["obj"])
            self._objects[obj.key()] = obj
        elif op == "delete":
            key = record["key"]
            self._objects.pop((key[0], key[1], key[2]), None)
        else:
            raise WalError(f"unknown WAL op {op!r}")
        self._revision = max(self._revision, revision)

    def _log(
        self,
        op: str,
        revision: int,
        obj: K8sObject | None = None,
        key: tuple[str, str, str] | None = None,
    ) -> None:
        """Append-before-ack: runs under the store lock, before the
        in-memory mutation, the watch emit, and the caller's return.
        The crash points bracketing the append are no-ops outside the
        chaos child (see :mod:`repro.k8s.wal`)."""
        wal = self._wal
        if wal is None:
            return
        crashpoint("pre-append")
        record: dict[str, Any] = {"op": op, "rev": revision}
        if obj is not None:
            record["obj"] = obj.data
        if key is not None:
            record["key"] = list(key)
        wal.append(record)
        if self._m_wal_appends is not None:
            self._m_wal_appends.inc()
        crashpoint("post-append")
        self._appends_since_compact += 1

    def _maybe_compact_locked(self) -> None:
        """Auto-compaction trigger.  Must run *after* the in-memory
        mutation: compacting from inside :meth:`_log` would snapshot a
        state that misses the write that tripped the threshold and then
        reset the WAL holding its record -- losing an acknowledged
        write."""
        if (
            self._wal is not None
            and self._compact_every
            and self._appends_since_compact >= self._compact_every
        ):
            self._compact_locked()

    def compact(self) -> None:
        """Persist an atomic snapshot of the current state and truncate
        the WAL (no-op for in-memory stores)."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        wal = self._wal
        if wal is None:
            return
        write_snapshot(
            wal.path.with_name(SNAPSHOT_NAME),
            self._revision,
            [obj.data for obj in self._objects.values()],
        )
        wal.reset()
        self._appends_since_compact = 0
        self.compactions += 1

    def close(self) -> None:
        """Flush and close the WAL (safe to call on in-memory stores)."""
        if self._wal is not None:
            self._wal.close()

    def bind_metrics(self, registry: Any) -> None:
        """Register this store's counters on a metrics registry (the
        fronting APIServer's, so they land on its /metrics surface)."""
        self._m_watcher_errors = registry.counter(
            "kubefence_watcher_errors_total",
            "Watch callbacks that raised out of an already-committed write "
            "(caught and counted; repeat offenders are detached).",
        )
        self._m_wal_appends = registry.counter(
            "kubefence_wal_appends_total",
            "Records appended to the store's write-ahead log.",
        )
        if self._wal is not None and self._wal.appends:
            self._m_wal_appends.inc(self._wal.appends)
        if self.recovery is not None:
            registry.counter(
                "kubefence_recovery_replayed_total",
                "WAL records replayed during crash recovery.",
            ).inc(self.recovery.replayed)
            registry.gauge(
                "kubefence_recovery_duration_seconds",
                "Wall-clock seconds the last snapshot+WAL replay took.",
            ).set(self.recovery.duration_s)

    # -- versioning --------------------------------------------------------

    @property
    def revision(self) -> int:
        """Current cluster-wide resource version."""
        with self._lock:
            return self._revision

    # -- CRUD --------------------------------------------------------------

    def create(self, obj: K8sObject) -> K8sObject:
        with self._lock:
            key = obj.key()
            if key in self._objects:
                raise ApiError.conflict(obj.kind, obj.name)
            stored = obj.copy()
            revision = self._revision + 1
            stored.metadata["resourceVersion"] = str(revision)
            stored.metadata.setdefault("uid", f"uid-{revision:08d}")
            # WAL first: memory mutates (and the caller is acknowledged)
            # only once the record is durable.
            self._log("create", revision, obj=stored)
            self._revision = revision
            self._objects[key] = stored
            self._maybe_compact_locked()
            self._emit(StoreEvent("ADDED", stored.copy(), revision))
            return stored.copy()

    def get(self, kind: str, namespace: str, name: str) -> K8sObject:
        with self._lock:
            try:
                return self._objects[(kind, namespace, name)].copy()
            except KeyError:
                raise ApiError.not_found(kind, name) from None

    def exists(self, kind: str, namespace: str, name: str) -> bool:
        with self._lock:
            return (kind, namespace, name) in self._objects

    def update(self, obj: K8sObject, check_version: bool = False) -> K8sObject:
        with self._lock:
            key = obj.key()
            if key not in self._objects:
                raise ApiError.not_found(obj.kind, obj.name)
            if check_version:
                current = self._objects[key]
                if obj.resource_version is not None and obj.resource_version != current.resource_version:
                    raise ApiError.conflict(
                        obj.kind,
                        obj.name,
                        message=(
                            f"Operation cannot be fulfilled on {obj.kind} {obj.name!r}: "
                            "the object has been modified"
                        ),
                    )
            stored = obj.copy()
            # Preserve the uid assigned at creation time.
            stored.metadata["uid"] = self._objects[key].metadata.get("uid")
            revision = self._revision + 1
            stored.metadata["resourceVersion"] = str(revision)
            self._log("update", revision, obj=stored)
            self._revision = revision
            self._objects[key] = stored
            self._maybe_compact_locked()
            self._emit(StoreEvent("MODIFIED", stored.copy(), revision))
            return stored.copy()

    def delete(self, kind: str, namespace: str, name: str) -> K8sObject:
        with self._lock:
            key = (kind, namespace, name)
            if key not in self._objects:
                raise ApiError.not_found(kind, name)
            obj = self._objects[key].copy()
            revision = self._revision + 1
            # The deletion bumps the cluster revision; stamp it into
            # the returned object so the DELETED event and the response
            # body agree on the resourceVersion of the deletion.
            obj.metadata["resourceVersion"] = str(revision)
            self._log("delete", revision, key=key)
            self._objects.pop(key)
            self._revision = revision
            self._maybe_compact_locked()
            self._emit(StoreEvent("DELETED", obj.copy(), revision))
            return obj

    def list(self, kind: str, namespace: str | None = None) -> list[K8sObject]:
        with self._lock:
            out = [
                o.copy()
                for (k, ns, _), o in self._objects.items()
                if k == kind and (namespace is None or ns == namespace)
            ]
        out.sort(key=lambda o: (o.namespace, o.name))
        return out

    def all_objects(self) -> Iterator[K8sObject]:
        with self._lock:
            items = [obj.copy() for obj in self._objects.values()]
        yield from items

    def snapshot(self) -> tuple[int, list[K8sObject]]:
        """Atomic ``(revision, objects)`` view of the store.

        Any write whose call returned before ``snapshot()`` was entered
        is guaranteed to be reflected — the contract the scanner relies
        on to never miss an object committed before a scan tick.
        """
        with self._lock:
            return self._revision, [o.copy() for o in self._objects.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    # -- watch -------------------------------------------------------------

    def watch(self, callback: Callable[[StoreEvent], None]) -> Callable[[], None]:
        """Register a watcher; returns an unsubscribe function."""
        with self._lock:
            self._watchers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                if callback in self._watchers:
                    self._watchers.remove(callback)
                self._watcher_failures.pop(id(callback), None)

        return unsubscribe

    def _emit(self, event: StoreEvent) -> None:
        # The write is already committed (and, when durable, already in
        # the WAL) by the time watchers run: a raising callback must not
        # propagate — the caller would believe the write failed — nor
        # starve the remaining watchers.  Mirror the EventBus contract:
        # catch, count, detach after MAX_WATCHER_ERRORS consecutive
        # failures.
        for watcher in list(self._watchers):
            try:
                watcher(event)
            except Exception:
                self._note_watcher_failure(watcher)
            else:
                self._watcher_failures.pop(id(watcher), None)

    def _note_watcher_failure(self, watcher: Callable[[StoreEvent], None]) -> None:
        self.watcher_errors += 1
        if self._m_watcher_errors is not None:
            self._m_watcher_errors.inc()
        count = self._watcher_failures.get(id(watcher), 0) + 1
        self._watcher_failures[id(watcher)] = count
        if count >= self.MAX_WATCHER_ERRORS:
            try:
                self._watchers.remove(watcher)
            except ValueError:
                pass
            else:
                self.dropped_watchers += 1
            self._watcher_failures.pop(id(watcher), None)
