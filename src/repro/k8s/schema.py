"""The Kubernetes configurable-field catalog.

The paper quantifies the K8s attack surface by counting the
configurable fields exposed by each API endpoint (4,882 fields across
the considered endpoints).  This module reconstructs that catalog: an
OpenAPI-like schema tree per resource kind, built from the real
Kubernetes v1 API structure (PodSpec, container, volume-source, probe,
affinity trees, and the non-workload kinds).

The catalog drives three consumers:

- the API server's structural admission validation,
- the attack-surface analysis (field counting for Fig. 9 / Table I),
- KubeFence's type inference for validator placeholders.

Field counting convention: every *named* schema node (leaf or interior)
counts as one configurable field; array item subtrees count once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

# ---------------------------------------------------------------------------
# Field specification tree
# ---------------------------------------------------------------------------

#: Scalar field types understood by the catalog and by KubeFence
#: placeholders.  ``map`` is a free-form string->string object.
SCALAR_TYPES = ("string", "int", "bool", "ip", "port", "quantity", "map", "any")


@dataclass
class FieldSpec:
    """One named field in a resource schema.

    ``ftype`` is one of :data:`SCALAR_TYPES`, ``enum``, ``object`` or
    ``array``.  ``object`` fields have named ``children``; ``array``
    fields have an ``items`` schema (either a scalar FieldSpec or an
    object with children).
    """

    name: str
    ftype: str
    children: dict[str, "FieldSpec"] = field(default_factory=dict)
    items: Optional["FieldSpec"] = None
    enum: tuple[Any, ...] = ()
    # Security-critical fields are locked to safe values by KubeFence's
    # policy generation regardless of the Helm chart contents (SV-A.1).
    security_critical: bool = False
    safe_value: Any = None

    def count_fields(self) -> int:
        """Number of named fields in this subtree, including self."""
        total = 1
        for child in self.children.values():
            total += child.count_fields()
        if self.items is not None and self.items.ftype in ("object", "array"):
            # The items node itself is anonymous; count its fields only.
            for child in self.items.children.values():
                total += child.count_fields()
            if self.items.items is not None:
                total += self.items.count_fields() - 1
        return total

    def walk(self, prefix: str = "") -> Iterator[tuple[str, "FieldSpec"]]:
        """Yield ``(dotted_path, spec)`` for every named field."""
        path = f"{prefix}.{self.name}" if prefix else self.name
        yield path, self
        for child in self.children.values():
            yield from child.walk(path)
        if self.items is not None and self.items.ftype in ("object", "array"):
            for child in self.items.children.values():
                yield from child.walk(path)

    def child(self, name: str) -> Optional["FieldSpec"]:
        """Schema lookup for a child field, traversing array items."""
        if self.ftype == "array" and self.items is not None:
            return self.items.children.get(name)
        return self.children.get(name)


# -- builder helpers --------------------------------------------------------


def obj(name: str, *children: FieldSpec, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "object", children={c.name: c for c in children}, **kw)


def arr(name: str, *children: FieldSpec, item_type: str = "object", **kw: Any) -> FieldSpec:
    """An array field.  With children, items are objects; otherwise
    items are scalars of *item_type*."""
    if children:
        items = FieldSpec("", "object", children={c.name: c for c in children})
    else:
        items = FieldSpec("", item_type)
    return FieldSpec(name, "array", items=items, **kw)


def s(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "string", **kw)


def i(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "int", **kw)


def b(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "bool", **kw)


def ip(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "ip", **kw)


def port(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "port", **kw)


def qty(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "quantity", **kw)


def m(name: str, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "map", **kw)


def enum(name: str, *values: Any, **kw: Any) -> FieldSpec:
    return FieldSpec(name, "enum", enum=tuple(values), **kw)


# ---------------------------------------------------------------------------
# Shared sub-schemas
# ---------------------------------------------------------------------------


def _label_selector(name: str = "labelSelector") -> FieldSpec:
    return obj(
        name,
        m("matchLabels"),
        arr(
            "matchExpressions",
            s("key"),
            enum("operator", "In", "NotIn", "Exists", "DoesNotExist"),
            arr("values", item_type="string"),
        ),
    )


def _probe(name: str) -> FieldSpec:
    return obj(
        name,
        obj("exec", arr("command", item_type="string")),
        obj(
            "httpGet",
            s("path"),
            port("port"),
            s("host"),
            enum("scheme", "HTTP", "HTTPS"),
            arr("httpHeaders", s("name"), s("value")),
        ),
        obj("tcpSocket", port("port"), s("host")),
        obj("grpc", port("port"), s("service")),
        i("initialDelaySeconds"),
        i("timeoutSeconds"),
        i("periodSeconds"),
        i("successThreshold"),
        i("failureThreshold"),
        i("terminationGracePeriodSeconds"),
    )


def _lifecycle_handler(name: str) -> FieldSpec:
    return obj(
        name,
        obj("exec", arr("command", item_type="string")),
        obj(
            "httpGet",
            s("path"),
            port("port"),
            s("host"),
            enum("scheme", "HTTP", "HTTPS"),
            arr("httpHeaders", s("name"), s("value")),
        ),
        obj("tcpSocket", port("port"), s("host")),
        obj("sleep", i("seconds")),
    )


def _container_security_context() -> FieldSpec:
    return obj(
        "securityContext",
        obj(
            "capabilities",
            arr("add", item_type="string", security_critical=True, safe_value=[]),
            arr("drop", item_type="string"),
        ),
        b("privileged", security_critical=True, safe_value=False),
        obj(
            "seLinuxOptions",
            s("user", security_critical=True, safe_value=None),
            s("role", security_critical=True, safe_value=None),
            s("type"),
            s("level"),
        ),
        i("runAsUser"),
        i("runAsGroup"),
        b("runAsNonRoot", security_critical=True, safe_value=True),
        b("readOnlyRootFilesystem", security_critical=True, safe_value=True),
        b("allowPrivilegeEscalation", security_critical=True, safe_value=False),
        enum("procMount", "Default", "Unmasked"),
        obj(
            "seccompProfile",
            enum(
                "type",
                "RuntimeDefault",
                "Localhost",
                "Unconfined",
                security_critical=True,
                safe_value="RuntimeDefault",
            ),
            s("localhostProfile", security_critical=True, safe_value=None),
        ),
        obj(
            "appArmorProfile",
            enum("type", "RuntimeDefault", "Localhost", "Unconfined"),
            s("localhostProfile"),
        ),
    )


def _env_var() -> list[FieldSpec]:
    return [
        s("name"),
        s("value"),
        obj(
            "valueFrom",
            obj("fieldRef", s("apiVersion"), s("fieldPath")),
            obj("resourceFieldRef", s("containerName"), s("resource"), qty("divisor")),
            obj("configMapKeyRef", s("name"), s("key"), b("optional")),
            obj("secretKeyRef", s("name"), s("key"), b("optional")),
        ),
    ]


def _container(name: str) -> FieldSpec:
    return arr(
        name,
        s("name"),
        s("image"),
        enum("imagePullPolicy", "Always", "IfNotPresent", "Never"),
        arr("command", item_type="string"),
        arr("args", item_type="string"),
        s("workingDir"),
        arr(
            "ports",
            s("name"),
            port("containerPort"),
            port("hostPort"),
            ip("hostIP"),
            enum("protocol", "TCP", "UDP", "SCTP"),
        ),
        arr(
            "envFrom",
            s("prefix"),
            obj("configMapRef", s("name"), b("optional")),
            obj("secretRef", s("name"), b("optional")),
        ),
        arr("env", *_env_var()),
        obj(
            "resources",
            obj("limits", qty("cpu"), qty("memory"), qty("ephemeral-storage")),
            obj("requests", qty("cpu"), qty("memory"), qty("ephemeral-storage")),
            arr("claims", s("name")),
        ),
        arr(
            "volumeMounts",
            s("name"),
            s("mountPath"),
            s("subPath"),
            s("subPathExpr"),
            b("readOnly"),
            enum("mountPropagation", "None", "HostToContainer", "Bidirectional"),
            enum("recursiveReadOnly", "Disabled", "IfPossible", "Enabled"),
        ),
        arr("volumeDevices", s("name"), s("devicePath")),
        _probe("livenessProbe"),
        _probe("readinessProbe"),
        _probe("startupProbe"),
        obj("lifecycle", _lifecycle_handler("postStart"), _lifecycle_handler("preStop")),
        s("terminationMessagePath"),
        enum("terminationMessagePolicy", "File", "FallbackToLogsOnError"),
        b("stdin"),
        b("stdinOnce"),
        b("tty"),
        arr("resizePolicy", s("resourceName"), s("restartPolicy")),
        s("restartPolicy"),
        _container_security_context(),
    )


def _volumes() -> FieldSpec:
    return arr(
        "volumes",
        s("name"),
        obj("hostPath", s("path"), s("type")),
        obj("emptyDir", enum("medium", "", "Memory"), qty("sizeLimit")),
        obj(
            "secret",
            s("secretName"),
            arr("items", s("key"), s("path"), i("mode")),
            i("defaultMode"),
            b("optional"),
        ),
        obj(
            "configMap",
            s("name"),
            arr("items", s("key"), s("path"), i("mode")),
            i("defaultMode"),
            b("optional"),
        ),
        obj("persistentVolumeClaim", s("claimName"), b("readOnly")),
        obj("nfs", s("server"), s("path"), b("readOnly")),
        obj(
            "iscsi",
            s("targetPortal"),
            s("iqn"),
            i("lun"),
            s("iscsiInterface"),
            s("fsType"),
            b("readOnly"),
            arr("portals", item_type="string"),
            b("chapAuthDiscovery"),
            b("chapAuthSession"),
            obj("secretRef", s("name")),
            s("initiatorName"),
        ),
        obj(
            "csi",
            s("driver"),
            b("readOnly"),
            s("fsType"),
            m("volumeAttributes"),
            obj("nodePublishSecretRef", s("name")),
        ),
        obj(
            "downwardAPI",
            arr(
                "items",
                s("path"),
                obj("fieldRef", s("apiVersion"), s("fieldPath")),
                obj("resourceFieldRef", s("containerName"), s("resource"), qty("divisor")),
                i("mode"),
            ),
            i("defaultMode"),
        ),
        obj(
            "projected",
            arr(
                "sources",
                obj(
                    "secret",
                    s("name"),
                    arr("items", s("key"), s("path"), i("mode")),
                    b("optional"),
                ),
                obj(
                    "configMap",
                    s("name"),
                    arr("items", s("key"), s("path"), i("mode")),
                    b("optional"),
                ),
                obj(
                    "serviceAccountToken",
                    s("audience"),
                    i("expirationSeconds"),
                    s("path"),
                ),
                obj(
                    "downwardAPI",
                    arr(
                        "items",
                        s("path"),
                        obj("fieldRef", s("apiVersion"), s("fieldPath")),
                        i("mode"),
                    ),
                ),
            ),
            i("defaultMode"),
        ),
        obj(
            "ephemeral",
            obj(
                "volumeClaimTemplate",
                obj("metadata", m("labels"), m("annotations")),
                obj(
                    "spec",
                    arr("accessModes", item_type="string"),
                    s("storageClassName"),
                    enum("volumeMode", "Filesystem", "Block"),
                    obj("resources", obj("requests", qty("storage")), obj("limits", qty("storage"))),
                    _label_selector("selector"),
                ),
            ),
        ),
        obj("fc", arr("targetWWNs", item_type="string"), i("lun"), s("fsType"), b("readOnly"), arr("wwids", item_type="string")),
        obj("glusterfs", s("endpoints"), s("path"), b("readOnly")),
        obj(
            "rbd",
            arr("monitors", item_type="string"),
            s("image"),
            s("fsType"),
            s("pool"),
            s("user"),
            s("keyring"),
            obj("secretRef", s("name")),
            b("readOnly"),
        ),
        obj("cephfs", arr("monitors", item_type="string"), s("path"), s("user"), s("secretFile"), obj("secretRef", s("name")), b("readOnly")),
        obj("cinder", s("volumeID"), s("fsType"), b("readOnly"), obj("secretRef", s("name"))),
        obj("awsElasticBlockStore", s("volumeID"), s("fsType"), i("partition"), b("readOnly")),
        obj("gcePersistentDisk", s("pdName"), s("fsType"), i("partition"), b("readOnly")),
        obj(
            "azureDisk",
            s("diskName"),
            s("diskURI"),
            enum("cachingMode", "None", "ReadOnly", "ReadWrite"),
            s("fsType"),
            b("readOnly"),
            enum("kind", "Shared", "Dedicated", "Managed"),
        ),
        obj("azureFile", s("secretName"), s("shareName"), b("readOnly")),
        obj("vsphereVolume", s("volumePath"), s("fsType"), s("storagePolicyName"), s("storagePolicyID")),
        obj("portworxVolume", s("volumeID"), s("fsType"), b("readOnly")),
        obj("quobyte", s("registry"), s("volume"), b("readOnly"), s("user"), s("group"), s("tenant")),
        obj("storageos", s("volumeName"), s("volumeNamespace"), s("fsType"), b("readOnly"), obj("secretRef", s("name"))),
        obj("photonPersistentDisk", s("pdID"), s("fsType")),
        obj("flocker", s("datasetName"), s("datasetUUID")),
        obj("gitRepo", s("repository"), s("revision"), s("directory")),
        obj("flexVolume", s("driver"), s("fsType"), obj("secretRef", s("name")), b("readOnly"), m("options")),
        obj("image", s("reference"), enum("pullPolicy", "Always", "IfNotPresent", "Never")),
    )


def _affinity() -> FieldSpec:
    node_selector_term = [
        arr(
            "matchExpressions",
            s("key"),
            enum("operator", "In", "NotIn", "Exists", "DoesNotExist", "Gt", "Lt"),
            arr("values", item_type="string"),
        ),
        arr(
            "matchFields",
            s("key"),
            enum("operator", "In", "NotIn", "Exists", "DoesNotExist", "Gt", "Lt"),
            arr("values", item_type="string"),
        ),
    ]
    pod_affinity_term = [
        _label_selector(),
        arr("namespaces", item_type="string"),
        s("topologyKey"),
        _label_selector("namespaceSelector"),
        arr("matchLabelKeys", item_type="string"),
        arr("mismatchLabelKeys", item_type="string"),
    ]
    return obj(
        "affinity",
        obj(
            "nodeAffinity",
            obj(
                "requiredDuringSchedulingIgnoredDuringExecution",
                arr("nodeSelectorTerms", *node_selector_term),
            ),
            arr(
                "preferredDuringSchedulingIgnoredDuringExecution",
                i("weight"),
                obj("preference", *node_selector_term),
            ),
        ),
        obj(
            "podAffinity",
            arr("requiredDuringSchedulingIgnoredDuringExecution", *pod_affinity_term),
            arr(
                "preferredDuringSchedulingIgnoredDuringExecution",
                i("weight"),
                obj("podAffinityTerm", *pod_affinity_term),
            ),
        ),
        obj(
            "podAntiAffinity",
            arr("requiredDuringSchedulingIgnoredDuringExecution", *pod_affinity_term),
            arr(
                "preferredDuringSchedulingIgnoredDuringExecution",
                i("weight"),
                obj("podAffinityTerm", *pod_affinity_term),
            ),
        ),
    )


def _pod_security_context() -> FieldSpec:
    return obj(
        "securityContext",
        obj("seLinuxOptions", s("user"), s("role"), s("type"), s("level")),
        i("runAsUser"),
        i("runAsGroup"),
        b("runAsNonRoot", security_critical=True, safe_value=True),
        arr("supplementalGroups", item_type="int"),
        enum("supplementalGroupsPolicy", "Merge", "Strict"),
        i("fsGroup"),
        arr("sysctls", s("name"), s("value")),
        enum("fsGroupChangePolicy", "OnRootMismatch", "Always"),
        obj(
            "seccompProfile",
            enum("type", "RuntimeDefault", "Localhost", "Unconfined"),
            s("localhostProfile"),
        ),
        obj(
            "appArmorProfile",
            enum("type", "RuntimeDefault", "Localhost", "Unconfined"),
            s("localhostProfile"),
        ),
    )


def pod_spec() -> FieldSpec:
    """The full PodSpec schema, shared by all workload kinds."""
    return obj(
        "spec",
        _container("containers"),
        _container("initContainers"),
        _volumes(),
        enum("restartPolicy", "Always", "OnFailure", "Never"),
        i("terminationGracePeriodSeconds"),
        i("activeDeadlineSeconds"),
        enum("dnsPolicy", "ClusterFirst", "ClusterFirstWithHostNet", "Default", "None"),
        m("nodeSelector"),
        s("serviceAccountName"),
        s("serviceAccount"),
        b("automountServiceAccountToken"),
        s("nodeName"),
        b("hostNetwork", security_critical=True, safe_value=False),
        b("hostPID", security_critical=True, safe_value=False),
        b("hostIPC", security_critical=True, safe_value=False),
        b("shareProcessNamespace"),
        _pod_security_context(),
        arr("imagePullSecrets", s("name")),
        s("hostname"),
        s("subdomain"),
        _affinity(),
        s("schedulerName"),
        arr(
            "tolerations",
            s("key"),
            enum("operator", "Exists", "Equal"),
            s("value"),
            enum("effect", "NoSchedule", "PreferNoSchedule", "NoExecute"),
            i("tolerationSeconds"),
        ),
        arr("hostAliases", ip("ip"), arr("hostnames", item_type="string")),
        s("priorityClassName"),
        i("priority"),
        obj(
            "dnsConfig",
            arr("nameservers", item_type="ip"),
            arr("searches", item_type="string"),
            arr("options", s("name"), s("value")),
        ),
        arr("readinessGates", s("conditionType")),
        s("runtimeClassName"),
        b("enableServiceLinks"),
        enum("preemptionPolicy", "PreemptLowerPriority", "Never"),
        m("overhead"),
        arr(
            "topologySpreadConstraints",
            i("maxSkew"),
            s("topologyKey"),
            enum("whenUnsatisfiable", "DoNotSchedule", "ScheduleAnyway"),
            _label_selector(),
            i("minDomains"),
            enum("nodeAffinityPolicy", "Honor", "Ignore"),
            enum("nodeTaintsPolicy", "Honor", "Ignore"),
            arr("matchLabelKeys", item_type="string"),
        ),
        b("setHostnameAsFQDN"),
        obj("os", enum("name", "linux", "windows")),
        b("hostUsers"),
        arr("schedulingGates", s("name")),
        arr(
            "resourceClaims",
            s("name"),
            s("resourceClaimName"),
            s("resourceClaimTemplateName"),
        ),
    )


def _object_meta() -> FieldSpec:
    return obj(
        "metadata",
        s("name"),
        s("namespace"),
        m("labels"),
        m("annotations"),
        s("generateName"),
        arr("finalizers", item_type="string"),
        arr(
            "ownerReferences",
            s("apiVersion"),
            s("kind"),
            s("name"),
            s("uid"),
            b("controller"),
            b("blockOwnerDeletion"),
        ),
    )


def _pod_template() -> FieldSpec:
    return obj("template", obj("metadata", m("labels"), m("annotations")), pod_spec())


# ---------------------------------------------------------------------------
# Per-kind schemas
# ---------------------------------------------------------------------------


def _pod_schema() -> FieldSpec:
    return obj("Pod", _object_meta(), pod_spec())


def _deployment_schema() -> FieldSpec:
    return obj(
        "Deployment",
        _object_meta(),
        obj(
            "spec",
            i("replicas"),
            _label_selector("selector"),
            _pod_template(),
            obj(
                "strategy",
                enum("type", "RollingUpdate", "Recreate"),
                obj("rollingUpdate", qty("maxUnavailable"), qty("maxSurge")),
            ),
            i("minReadySeconds"),
            i("revisionHistoryLimit"),
            b("paused"),
            i("progressDeadlineSeconds"),
        ),
    )


def _replicaset_schema() -> FieldSpec:
    return obj(
        "ReplicaSet",
        _object_meta(),
        obj(
            "spec",
            i("replicas"),
            i("minReadySeconds"),
            _label_selector("selector"),
            _pod_template(),
        ),
    )


def _statefulset_schema() -> FieldSpec:
    return obj(
        "StatefulSet",
        _object_meta(),
        obj(
            "spec",
            i("replicas"),
            _label_selector("selector"),
            _pod_template(),
            arr(
                "volumeClaimTemplates",
                obj("metadata", s("name"), m("labels"), m("annotations")),
                obj(
                    "spec",
                    arr("accessModes", item_type="string"),
                    s("storageClassName"),
                    enum("volumeMode", "Filesystem", "Block"),
                    obj("resources", obj("requests", qty("storage")), obj("limits", qty("storage"))),
                    _label_selector("selector"),
                ),
            ),
            s("serviceName"),
            enum("podManagementPolicy", "OrderedReady", "Parallel"),
            obj(
                "updateStrategy",
                enum("type", "RollingUpdate", "OnDelete"),
                obj("rollingUpdate", i("partition"), qty("maxUnavailable")),
            ),
            i("revisionHistoryLimit"),
            i("minReadySeconds"),
            obj(
                "persistentVolumeClaimRetentionPolicy",
                enum("whenDeleted", "Retain", "Delete"),
                enum("whenScaled", "Retain", "Delete"),
            ),
            obj("ordinals", i("start")),
        ),
    )


def _daemonset_schema() -> FieldSpec:
    return obj(
        "DaemonSet",
        _object_meta(),
        obj(
            "spec",
            _label_selector("selector"),
            _pod_template(),
            obj(
                "updateStrategy",
                enum("type", "RollingUpdate", "OnDelete"),
                obj("rollingUpdate", qty("maxUnavailable"), qty("maxSurge")),
            ),
            i("minReadySeconds"),
            i("revisionHistoryLimit"),
        ),
    )


def _job_spec_fields() -> list[FieldSpec]:
    return [
        i("parallelism"),
        i("completions"),
        i("activeDeadlineSeconds"),
        obj(
            "podFailurePolicy",
            arr(
                "rules",
                enum("action", "FailJob", "Ignore", "Count", "FailIndex"),
                obj(
                    "onExitCodes",
                    s("containerName"),
                    enum("operator", "In", "NotIn"),
                    arr("values", item_type="int"),
                ),
                arr("onPodConditions", s("type"), s("status")),
            ),
        ),
        obj(
            "successPolicy",
            arr("rules", i("succeededIndexes"), i("succeededCount")),
        ),
        i("backoffLimit"),
        i("backoffLimitPerIndex"),
        i("maxFailedIndexes"),
        _label_selector("selector"),
        b("manualSelector"),
        i("ttlSecondsAfterFinished"),
        enum("completionMode", "NonIndexed", "Indexed"),
        b("suspend"),
        enum("podReplacementPolicy", "TerminatingOrFailed", "Failed"),
        s("managedBy"),
    ]


def _job_schema() -> FieldSpec:
    return obj(
        "Job",
        _object_meta(),
        obj("spec", *_job_spec_fields(), _pod_template()),
    )


def _cronjob_schema() -> FieldSpec:
    return obj(
        "CronJob",
        _object_meta(),
        obj(
            "spec",
            s("schedule"),
            s("timeZone"),
            i("startingDeadlineSeconds"),
            enum("concurrencyPolicy", "Allow", "Forbid", "Replace"),
            b("suspend"),
            obj(
                "jobTemplate",
                obj("metadata", m("labels"), m("annotations")),
                obj("spec", *_job_spec_fields(), _pod_template()),
            ),
            i("successfulJobsHistoryLimit"),
            i("failedJobsHistoryLimit"),
        ),
    )


def _service_schema() -> FieldSpec:
    return obj(
        "Service",
        _object_meta(),
        obj(
            "spec",
            arr(
                "ports",
                s("name"),
                enum("protocol", "TCP", "UDP", "SCTP"),
                s("appProtocol"),
                port("port"),
                port("targetPort"),
                port("nodePort"),
            ),
            m("selector"),
            ip("clusterIP"),
            arr("clusterIPs", item_type="ip"),
            enum("type", "ClusterIP", "NodePort", "LoadBalancer", "ExternalName"),
            arr("externalIPs", item_type="ip", security_critical=True, safe_value=[]),
            enum("sessionAffinity", "None", "ClientIP"),
            ip("loadBalancerIP"),
            arr("loadBalancerSourceRanges", item_type="string"),
            s("externalName"),
            enum("externalTrafficPolicy", "Cluster", "Local"),
            port("healthCheckNodePort"),
            b("publishNotReadyAddresses"),
            obj("sessionAffinityConfig", obj("clientIP", i("timeoutSeconds"))),
            arr("ipFamilies", item_type="string"),
            enum("ipFamilyPolicy", "SingleStack", "PreferDualStack", "RequireDualStack"),
            b("allocateLoadBalancerNodePorts"),
            s("loadBalancerClass"),
            enum("internalTrafficPolicy", "Cluster", "Local"),
            enum("trafficDistribution", "PreferClose"),
        ),
    )


def _configmap_schema() -> FieldSpec:
    return obj("ConfigMap", _object_meta(), m("data"), m("binaryData"), b("immutable"))


def _secret_schema() -> FieldSpec:
    return obj(
        "Secret",
        _object_meta(),
        m("data"),
        m("stringData"),
        s("type"),
        b("immutable"),
    )


def _serviceaccount_schema() -> FieldSpec:
    return obj(
        "ServiceAccount",
        _object_meta(),
        arr("secrets", s("name"), s("namespace"), s("kind"), s("apiVersion")),
        arr("imagePullSecrets", s("name")),
        b("automountServiceAccountToken"),
    )


def _pvc_schema() -> FieldSpec:
    return obj(
        "PersistentVolumeClaim",
        _object_meta(),
        obj(
            "spec",
            arr("accessModes", item_type="string"),
            _label_selector("selector"),
            obj("resources", obj("requests", qty("storage")), obj("limits", qty("storage"))),
            s("volumeName"),
            s("storageClassName"),
            enum("volumeMode", "Filesystem", "Block"),
            obj("dataSource", s("apiGroup"), s("kind"), s("name")),
            obj("dataSourceRef", s("apiGroup"), s("kind"), s("name"), s("namespace")),
            s("volumeAttributesClassName"),
        ),
    )


def _pv_schema() -> FieldSpec:
    return obj(
        "PersistentVolume",
        _object_meta(),
        obj(
            "spec",
            obj("capacity", qty("storage")),
            arr("accessModes", item_type="string"),
            s("storageClassName"),
            enum("persistentVolumeReclaimPolicy", "Retain", "Recycle", "Delete"),
            enum("volumeMode", "Filesystem", "Block"),
            obj("claimRef", s("kind"), s("namespace"), s("name"), s("uid")),
            arr("mountOptions", item_type="string"),
            obj("hostPath", s("path"), s("type")),
            obj("nfs", s("server"), s("path"), b("readOnly")),
            obj(
                "csi",
                s("driver"),
                s("volumeHandle"),
                b("readOnly"),
                s("fsType"),
                m("volumeAttributes"),
            ),
            obj("local", s("path"), s("fsType")),
            obj(
                "nodeAffinity",
                obj(
                    "required",
                    arr(
                        "nodeSelectorTerms",
                        arr(
                            "matchExpressions",
                            s("key"),
                            enum("operator", "In", "NotIn", "Exists", "DoesNotExist"),
                            arr("values", item_type="string"),
                        ),
                    ),
                ),
            ),
        ),
    )


def _namespace_schema() -> FieldSpec:
    return obj(
        "Namespace",
        _object_meta(),
        obj("spec", arr("finalizers", item_type="string")),
    )


def _endpoints_schema() -> FieldSpec:
    return obj(
        "Endpoints",
        _object_meta(),
        arr(
            "subsets",
            arr(
                "addresses",
                ip("ip"),
                s("hostname"),
                s("nodeName"),
                obj("targetRef", s("kind"), s("namespace"), s("name"), s("uid")),
            ),
            arr(
                "notReadyAddresses",
                ip("ip"),
                s("hostname"),
                s("nodeName"),
            ),
            arr("ports", s("name"), port("port"), enum("protocol", "TCP", "UDP", "SCTP"), s("appProtocol")),
        ),
    )


def _limitrange_schema() -> FieldSpec:
    return obj(
        "LimitRange",
        _object_meta(),
        obj(
            "spec",
            arr(
                "limits",
                enum("type", "Pod", "Container", "PersistentVolumeClaim"),
                m("max"),
                m("min"),
                m("default"),
                m("defaultRequest"),
                m("maxLimitRequestRatio"),
            ),
        ),
    )


def _resourcequota_schema() -> FieldSpec:
    return obj(
        "ResourceQuota",
        _object_meta(),
        obj(
            "spec",
            m("hard"),
            arr("scopes", item_type="string"),
            obj(
                "scopeSelector",
                arr(
                    "matchExpressions",
                    s("scopeName"),
                    enum("operator", "In", "NotIn", "Exists", "DoesNotExist"),
                    arr("values", item_type="string"),
                ),
            ),
        ),
    )


def _ingress_schema() -> FieldSpec:
    backend = obj(
        "backend",
        obj("service", s("name"), obj("port", s("name"), port("number"))),
        obj("resource", s("apiGroup"), s("kind"), s("name")),
    )
    return obj(
        "Ingress",
        _object_meta(),
        obj(
            "spec",
            s("ingressClassName"),
            obj(
                "defaultBackend",
                obj("service", s("name"), obj("port", s("name"), port("number"))),
                obj("resource", s("apiGroup"), s("kind"), s("name")),
            ),
            arr("tls", arr("hosts", item_type="string"), s("secretName")),
            arr(
                "rules",
                s("host"),
                obj(
                    "http",
                    arr(
                        "paths",
                        s("path"),
                        enum("pathType", "Exact", "Prefix", "ImplementationSpecific"),
                        backend,
                    ),
                ),
            ),
        ),
    )


def _networkpolicy_schema() -> FieldSpec:
    peer = [
        _label_selector("podSelector"),
        _label_selector("namespaceSelector"),
        obj("ipBlock", s("cidr"), arr("except", item_type="string")),
    ]
    np_port = [enum("protocol", "TCP", "UDP", "SCTP"), port("port"), port("endPort")]
    return obj(
        "NetworkPolicy",
        _object_meta(),
        obj(
            "spec",
            _label_selector("podSelector"),
            arr("ingress", arr("ports", *np_port), arr("from", *peer)),
            arr("egress", arr("ports", *np_port), arr("to", *peer)),
            arr("policyTypes", item_type="string"),
        ),
    )


def _hpa_schema() -> FieldSpec:
    metric_target = obj(
        "target",
        enum("type", "Utilization", "Value", "AverageValue"),
        qty("value"),
        qty("averageValue"),
        i("averageUtilization"),
    )
    metric_identifier = [
        s("name"),
        obj("selector", m("matchLabels")),
    ]
    scaling_rules = lambda n: obj(  # noqa: E731
        n,
        i("stabilizationWindowSeconds"),
        enum("selectPolicy", "Max", "Min", "Disabled"),
        arr("policies", enum("type", "Pods", "Percent"), i("value"), i("periodSeconds")),
    )
    return obj(
        "HorizontalPodAutoscaler",
        _object_meta(),
        obj(
            "spec",
            obj("scaleTargetRef", s("apiVersion"), s("kind"), s("name")),
            i("minReplicas"),
            i("maxReplicas"),
            arr(
                "metrics",
                enum("type", "Resource", "Pods", "Object", "External", "ContainerResource"),
                obj("resource", s("name"), metric_target),
                obj("containerResource", s("name"), s("container"), metric_target),
                obj("pods", obj("metric", *metric_identifier), metric_target),
                obj(
                    "object",
                    obj("describedObject", s("apiVersion"), s("kind"), s("name")),
                    obj("metric", *metric_identifier),
                    metric_target,
                ),
                obj("external", obj("metric", *metric_identifier), metric_target),
            ),
            obj("behavior", scaling_rules("scaleUp"), scaling_rules("scaleDown")),
        ),
    )


def _pdb_schema() -> FieldSpec:
    return obj(
        "PodDisruptionBudget",
        _object_meta(),
        obj(
            "spec",
            qty("minAvailable"),
            qty("maxUnavailable"),
            _label_selector("selector"),
            enum("unhealthyPodEvictionPolicy", "IfHealthyBudget", "AlwaysAllow"),
        ),
    )


def _role_schema(kind: str) -> FieldSpec:
    return obj(
        kind,
        _object_meta(),
        arr(
            "rules",
            arr("apiGroups", item_type="string"),
            arr("resources", item_type="string"),
            arr("verbs", item_type="string"),
            arr("resourceNames", item_type="string"),
            arr("nonResourceURLs", item_type="string"),
        ),
    )


def _binding_schema(kind: str) -> FieldSpec:
    return obj(
        kind,
        _object_meta(),
        arr("subjects", s("kind"), s("apiGroup"), s("name"), s("namespace")),
        obj("roleRef", s("apiGroup"), s("kind"), s("name")),
    )


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------


class SchemaCatalog:
    """Per-kind field schemas with counting and lookup helpers."""

    def __init__(self) -> None:
        self._schemas: dict[str, FieldSpec] = {}
        for spec in (
            _pod_schema(),
            _deployment_schema(),
            _replicaset_schema(),
            _statefulset_schema(),
            _daemonset_schema(),
            _job_schema(),
            _cronjob_schema(),
            _service_schema(),
            _configmap_schema(),
            _secret_schema(),
            _serviceaccount_schema(),
            _pvc_schema(),
            _pv_schema(),
            _namespace_schema(),
            _endpoints_schema(),
            _limitrange_schema(),
            _resourcequota_schema(),
            _ingress_schema(),
            _networkpolicy_schema(),
            _hpa_schema(),
            _pdb_schema(),
            _role_schema("Role"),
            _role_schema("ClusterRole"),
            _binding_schema("RoleBinding"),
            _binding_schema("ClusterRoleBinding"),
        ):
            self._schemas[spec.name] = spec

    def schema(self, kind: str) -> FieldSpec:
        try:
            return self._schemas[kind]
        except KeyError:
            raise KeyError(f"no schema for kind {kind!r}") from None

    def __contains__(self, kind: str) -> bool:
        return kind in self._schemas

    def kinds(self) -> list[str]:
        return sorted(self._schemas)

    def field_count(self, kind: str) -> int:
        """Configurable fields exposed by *kind* (excluding the kind
        node itself)."""
        return self.schema(kind).count_fields() - 1

    def total_fields(self, kinds: list[str] | None = None) -> int:
        """Total configurable fields across *kinds* (default: all)."""
        use = kinds if kinds is not None else self.kinds()
        return sum(self.field_count(k) for k in use)

    def field_paths(self, kind: str) -> list[str]:
        """All dotted schema paths of *kind* (excluding the root)."""
        root = self.schema(kind)
        return [path for path, _ in root.walk() if path != root.name]

    def security_critical_fields(self, kind: str) -> list[tuple[str, FieldSpec]]:
        root = self.schema(kind)
        return [
            (path, spec)
            for path, spec in root.walk()
            if spec.security_critical and path != root.name
        ]


#: Singleton catalog used across the project.
catalog = SchemaCatalog()
