"""The miniature Kubernetes API server.

Implements the request pipeline of a real API server in the order that
matters for this paper's experiments:

1. **Routing** -- resolve the (kind, verb) pair against the resource
   registry; unknown kinds and unsupported verbs are rejected.
2. **Authorization** -- a pluggable authorizer (RBAC in the
   experiments) decides whether the authenticated user may perform the
   verb on the resource.
3. **Structural validation** -- the manifest is checked against the
   schema catalog (unknown fields and type mismatches are rejected,
   mirroring server-side strict validation).
4. **Admission** -- a chain of admission plugins may mutate or reject
   the object.  The CVE exploit engine registers here as an observer:
   if a malicious manifest reaches admission (i.e. nothing upstream
   filtered it), the corresponding vulnerability "fires".
5. **Persistence** -- the object lands in the versioned store.
6. **Audit** -- every request, allowed or denied, is recorded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.k8s.audit import AuditEvent, AuditLog
from repro.k8s.errors import ApiError
from repro.k8s.gvk import ResourceRegistry, ResourceType, registry as default_registry
from repro.k8s.objects import K8sObject
from repro.k8s.schema import SCALAR_TYPES, FieldSpec, SchemaCatalog, catalog as default_catalog
from repro.k8s.store import ObjectStore
from repro.core.shards import shards_enabled
from repro.obs import current_trace_id, new_phase_clock, new_registry, span
from repro.obs.analytics.events import SecurityEvent, new_event_bus


@dataclass(frozen=True)
class User:
    """An authenticated API client identity."""

    username: str
    groups: tuple[str, ...] = ("system:authenticated",)

    @classmethod
    def admin(cls) -> "User":
        return cls("kubernetes-admin", ("system:masters", "system:authenticated"))


#: Verbs that carry a request body.
_WRITE_VERBS = ("create", "update", "patch")


@dataclass
class ApiRequest:
    """One API request as seen by the server (and by KubeFence)."""

    verb: str
    kind: str
    user: User
    namespace: str | None = "default"
    name: str | None = None
    body: dict[str, Any] | None = None
    source_ip: str = "127.0.0.1"

    @classmethod
    def from_manifest(
        cls, manifest: dict[str, Any], user: User, verb: str = "create"
    ) -> "ApiRequest":
        obj = K8sObject(manifest)
        return cls(
            verb=verb,
            kind=obj.kind,
            user=user,
            namespace=obj.namespace,
            name=obj.name or None,
            body=manifest,
        )

    def url_path(self, reg: ResourceRegistry = default_registry) -> str:
        rt = reg.by_kind(self.kind)
        name = self.name if self.verb in ("get", "update", "patch", "delete") else None
        return rt.url_path(self.namespace, name)


@dataclass
class ApiResponse:
    """The server's answer: a status code plus a body (object, list,
    or Status on failure)."""

    code: int
    body: dict[str, Any] | list[dict[str, Any]] | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.code < 300

    @classmethod
    def from_error(cls, err: ApiError) -> "ApiResponse":
        return cls(code=err.code, body=err.to_status(), error=err)


class Authorizer(Protocol):
    """Authorization plugin interface (RBAC implements this)."""

    def authorize(self, request: ApiRequest, resource: ResourceType) -> tuple[bool, str]:
        """Return (allowed, reason)."""
        ...


class AllowAll:
    """Default authorizer: everything is permitted."""

    def authorize(self, request: ApiRequest, resource: ResourceType) -> tuple[bool, str]:
        return True, "no authorization configured"


#: Admission plugins get the request and the parsed object; they raise
#: :class:`ApiError` to deny, and may mutate the object in place.
AdmissionPlugin = Callable[[ApiRequest, K8sObject], None]


class APIServer:
    """The control-plane front end."""

    def __init__(
        self,
        store: ObjectStore | None = None,
        reg: ResourceRegistry | None = None,
        schemas: SchemaCatalog | None = None,
        authorizer: Authorizer | None = None,
        version: str = "1.28.6",
        validate_schema: bool = True,
        metrics: Any | None = None,
        event_bus: Any | None = None,
    ) -> None:
        # Explicit None checks: ObjectStore and ResourceRegistry define
        # __len__, so an empty instance is falsy and `or` would drop it.
        self.store = store if store is not None else ObjectStore()
        self.registry = reg if reg is not None else default_registry
        self.schemas = schemas or default_catalog
        self.authorizer: Authorizer = authorizer or AllowAll()
        self.audit_log = AuditLog()
        self.admission_plugins: list[AdmissionPlugin] = []
        self.version = version
        self.validate_schema = validate_schema
        #: observability: per-server metrics registry (scraped by
        #: HttpApiServer's /metrics; REPRO_NO_OBS=1 makes it a no-op).
        self.metrics = metrics if metrics is not None else new_registry()
        #: security-analytics: every audited request is also published
        #: as a ``kind="audit"`` SecurityEvent (no-op bus when
        #: REPRO_NO_OBS=1 or nothing subscribes a real bus).
        self.event_bus = event_bus if event_bus is not None else new_event_bus()
        # Durability + watch observability land on this server's
        # registry (kubefence_wal_appends_total, kubefence_recovery_*,
        # kubefence_watcher_errors_total) so /metrics exposes them.
        self.store.bind_metrics(self.metrics)
        self._announce_recovery()
        self._m_requests = self.metrics.counter(
            "kubefence_apiserver_requests_total",
            "API-server requests, by verb and response code.",
            labels=("verb", "code"),
            max_series=256,
        )
        # Hot-path write handles: per-thread cells on the sharded data
        # plane, the classic locked series under REPRO_NO_SHARDS=1
        # (see repro.core.shards / _Metric.local).
        self._sharded_telemetry = shards_enabled()
        self._m_latency = self._m_bind(self.metrics.histogram(
            "kubefence_apiserver_latency_ns",
            "Full request-pipeline latency (routing through audit).",
        ))
        self._m_audit = self._m_bind(self.metrics.counter(
            "kubefence_audit_events_total", "Audit events recorded."
        ))
        #: (verb, code) -> bound counter, so the hot path skips
        #: labels() resolution on every request.
        self._m_requests_bound: dict[tuple[str, str], Any] = {}
        self._m_http = self.metrics.counter(
            "http_requests_total",
            "HTTP requests served, by method and status code.",
            labels=("method", "code"),
            max_series=128,
        )
        self._m_http_bound: dict[tuple[str, str], Any] = {}
        # Per-request phase attribution (kubefence_phase_ns_total):
        # the null clock when telemetry is off, so handle() skips the
        # extra perf_counter_ns reads entirely.
        self.phases = new_phase_clock(
            self.metrics, sharded=self._sharded_telemetry
        )

    def _announce_recovery(self) -> None:
        """Publish one ``kind="recovery"`` SecurityEvent when fronting a
        store that was rebuilt from snapshot+WAL (exactly once per
        recovery, however many servers share the store)."""
        recovery = getattr(self.store, "recovery", None)
        if recovery is None or recovery.announced or not self.event_bus.enabled:
            return
        recovery.announced = True
        self.event_bus.publish(
            SecurityEvent(
                kind="recovery",
                source="apiserver",
                ts=time.time(),
                verb="recover",
                resource="objectstore",
                name=recovery.path,
                outcome="allow",
                code=200,
                latency_ns=int(recovery.duration_s * 1e9),
                detail={
                    "revision": recovery.revision,
                    "snapshot_objects": recovery.snapshot_objects,
                    "replayed": recovery.replayed,
                    "truncated_bytes": recovery.truncated_bytes,
                    "torn_reason": recovery.torn_reason or "",
                },
            )
        )

    def _m_bind(self, metric: Any, **labels: str) -> Any:
        if self._sharded_telemetry:
            return metric.local(**labels)
        return metric.labels(**labels) if labels else metric

    def count_http_request(self, method: str, code: Any) -> None:
        """Access-log replacement: ``http_requests_total{method,code}``
        (called from the HTTP front end's ``log_request``)."""
        key = (str(method or "?"), str(getattr(code, "value", code)))
        bound = self._m_http_bound.get(key)
        if bound is None:
            bound = self._m_bind(self._m_http, method=key[0], code=key[1])
            self._m_http_bound[key] = bound
        bound.inc()

    # -- plugin management ---------------------------------------------------

    def register_admission_plugin(self, plugin: AdmissionPlugin) -> None:
        self.admission_plugins.append(plugin)

    # -- request handling ------------------------------------------------

    def handle(self, request: ApiRequest) -> ApiResponse:
        """Run the full request pipeline and audit the outcome.

        Phase attribution (when telemetry is on): routing+authorization
        is the server's **authn** share, dispatch (admission chain and
        store commit) its **upstream** share, and the request counter /
        latency histogram / audit write its **telemetry** share.  The
        **wall** denominator is stamped by the HTTP frontend
        (:mod:`repro.k8s.http`), whose handler also covers the
        serialization share -- body parse and reply encode happen
        outside this method.
        """
        attributed = self.phases.enabled
        started = time.perf_counter_ns()
        authed = started
        try:
            resource = self._route(request)
            self._authorize(request, resource)
            if attributed:
                authed = time.perf_counter_ns()
            response = self._dispatch(request, resource)
        except ApiError as err:
            if authed == started and attributed:
                # Failed before/inside authorization: the whole pipeline
                # share so far is authn.
                authed = time.perf_counter_ns()
            response = ApiResponse.from_error(err)
        elapsed_ns = time.perf_counter_ns() - started
        key = (request.verb or "?", str(response.code))
        bound = self._m_requests_bound.get(key)
        if bound is None:
            bound = self._m_bind(self._m_requests, verb=key[0], code=key[1])
            self._m_requests_bound[key] = bound
        bound.inc()
        self._m_latency.observe(elapsed_ns)
        self._audit(request, response, latency_ns=elapsed_ns)
        if attributed:
            done = started + elapsed_ns
            final = time.perf_counter_ns()
            phases = self.phases
            phases.authn(authed - started)
            phases.upstream(done - authed)
            phases.telemetry(final - done)
            # The HTTP frontend brackets this call together with the
            # trace open/close; exporting the interior span lets it
            # attribute the tracer bookkeeping without double-counting.
            response.handle_ns = final - started
        return response

    def _route(self, request: ApiRequest) -> ResourceType:
        if request.kind not in self.registry:
            raise ApiError.not_found(request.kind or "<missing kind>", request.name or "")
        resource = self.registry.by_kind(request.kind)
        if request.verb not in resource.verbs:
            raise ApiError.method_not_allowed(
                f"verb {request.verb!r} not supported on {resource.plural}"
            )
        return resource

    def _authorize(self, request: ApiRequest, resource: ResourceType) -> None:
        allowed, reason = self.authorizer.authorize(request, resource)
        if not allowed:
            raise ApiError.forbidden(
                f'User "{request.user.username}" cannot {request.verb} resource '
                f'"{resource.plural}" in API group "{resource.gvk.group}": {reason}'
            )

    def _dispatch(self, request: ApiRequest, resource: ResourceType) -> ApiResponse:
        verb = request.verb
        if verb in _WRITE_VERBS:
            return self._handle_write(request, resource)
        if verb == "get":
            obj = self.store.get(request.kind, request.namespace or "default", request.name or "")
            return ApiResponse(200, obj.data)
        if verb == "list":
            namespace = request.namespace if resource.namespaced else None
            objs = self.store.list(request.kind, namespace)
            return ApiResponse(200, [o.data for o in objs])
        if verb == "delete":
            obj = self.store.delete(
                request.kind, request.namespace or "default", request.name or ""
            )
            return ApiResponse(200, obj.data)
        if verb == "watch":
            # Watch is exposed for API-surface completeness; the
            # in-process event stream lives on the store itself.
            return ApiResponse(200, [])
        raise ApiError.method_not_allowed(f"unsupported verb {verb!r}")

    def _handle_write(self, request: ApiRequest, resource: ResourceType) -> ApiResponse:
        if not isinstance(request.body, dict):
            raise ApiError.bad_request("request body must be a JSON/YAML object")
        obj = K8sObject(request.body).copy()
        if obj.kind != request.kind:
            raise ApiError.bad_request(
                f"body kind {obj.kind!r} does not match request kind {request.kind!r}"
            )
        if not obj.name:
            raise ApiError.invalid("metadata.name is required")
        if resource.namespaced:
            obj.metadata.setdefault("namespace", request.namespace or "default")
        if self.validate_schema and obj.kind in self.schemas:
            self._validate_structure(obj)
        with span("admission.chain"):
            for plugin in self.admission_plugins:
                plugin(request, obj)
        with span("store.commit"):
            if request.verb == "create":
                stored = self.store.create(obj)
                return ApiResponse(201, stored.data)
            if request.verb == "patch":
                current = self.store.get(obj.kind, obj.namespace, obj.name)
                from repro.yamlutil import deep_merge

                merged = K8sObject(deep_merge(current.data, obj.data, delete_on_none=True))
                stored = self.store.update(merged)
                return ApiResponse(200, stored.data)
            stored = self.store.update(obj)
            return ApiResponse(200, stored.data)

    # -- structural (schema) validation -----------------------------------

    def _validate_structure(self, obj: K8sObject) -> None:
        schema = self.schemas.schema(obj.kind)
        errors: list[str] = []
        for key, value in obj.data.items():
            if key in ("apiVersion", "kind", "status"):
                continue
            child = schema.children.get(key)
            if child is None:
                errors.append(f"unknown field {key!r}")
                continue
            self._check_field(child, value, key, errors)
        if errors:
            raise ApiError.invalid(
                f"{obj.kind} {obj.name!r} is invalid: " + "; ".join(errors[:10]),
                fieldErrors=errors,
            )

    def _check_field(self, spec: FieldSpec, value: Any, path: str, errors: list[str]) -> None:
        if value is None:
            return
        if spec.ftype == "object":
            if not isinstance(value, dict):
                errors.append(f"{path}: expected object, got {type(value).__name__}")
                return
            for key, child_value in value.items():
                child = spec.children.get(key)
                if child is None:
                    errors.append(f"{path}.{key}: unknown field")
                    continue
                self._check_field(child, child_value, f"{path}.{key}", errors)
        elif spec.ftype == "array":
            if not isinstance(value, list):
                errors.append(f"{path}: expected array, got {type(value).__name__}")
                return
            assert spec.items is not None
            for idx, item in enumerate(value):
                self._check_field(spec.items, item, f"{path}[{idx}]", errors)
        elif spec.ftype == "" or spec.name == "":
            # Anonymous array item schema: object items have children.
            pass
        else:
            self._check_scalar(spec, value, path, errors)

    def _check_scalar(self, spec: FieldSpec, value: Any, path: str, errors: list[str]) -> None:
        ftype = spec.ftype
        if ftype == "enum":
            if value not in spec.enum:
                errors.append(f"{path}: {value!r} not one of {list(spec.enum)}")
        elif ftype == "string":
            if not isinstance(value, str):
                errors.append(f"{path}: expected string, got {type(value).__name__}")
        elif ftype == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                errors.append(f"{path}: expected integer, got {type(value).__name__}")
        elif ftype == "bool":
            if not isinstance(value, bool):
                errors.append(f"{path}: expected boolean, got {type(value).__name__}")
        elif ftype == "port":
            if isinstance(value, bool) or not isinstance(value, (int, str)):
                errors.append(f"{path}: expected port, got {type(value).__name__}")
            elif isinstance(value, int) and not 0 <= value <= 65535:
                errors.append(f"{path}: port {value} out of range")
        elif ftype == "ip":
            if not isinstance(value, str):
                errors.append(f"{path}: expected IP string, got {type(value).__name__}")
        elif ftype == "quantity":
            if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                errors.append(f"{path}: expected quantity, got {type(value).__name__}")
        elif ftype == "map":
            if not isinstance(value, dict):
                errors.append(f"{path}: expected map, got {type(value).__name__}")
        elif ftype == "any":
            pass
        else:  # pragma: no cover - catalog bug guard
            errors.append(f"{path}: unhandled schema type {ftype!r}")

    # -- audit -------------------------------------------------------------

    def _audit(
        self,
        request: ApiRequest,
        response: ApiResponse,
        latency_ns: int | None = None,
    ) -> None:
        resource_plural = ""
        api_group = ""
        if request.kind in self.registry:
            rt = self.registry.by_kind(request.kind)
            resource_plural = rt.plural
            api_group = rt.gvk.group
        self._m_audit.inc()
        trace_id = current_trace_id()
        object_name = request.name or (
            K8sObject(request.body).name if request.body else None
        )
        self.audit_log.record(
            AuditEvent(
                request_uri=(
                    request.url_path(self.registry) if request.kind in self.registry else "/"
                ),
                verb=request.verb,
                username=request.user.username,
                groups=request.user.groups,
                resource=resource_plural,
                api_group=api_group,
                namespace=request.namespace,
                name=object_name,
                response_code=response.code,
                request_object=request.body if request.verb in _WRITE_VERBS else None,
                source_ip=request.source_ip,
                trace_id=trace_id,
                latency_ns=latency_ns,
            )
        )
        bus = self.event_bus
        # Successful audits are head-sampled (REPRO_EVENT_SAMPLE); the
        # durable AuditLog above always records, and failed requests
        # always reach the stream.
        if bus.enabled and (not response.ok or bus.sampled()):
            bus.publish(
                SecurityEvent(
                    kind="audit",
                    source="apiserver",
                    ts=time.time(),
                    user=request.user.username,
                    verb=request.verb,
                    resource=resource_plural or request.kind,
                    name=object_name or "",
                    namespace=request.namespace or "",
                    outcome="allow" if response.ok else "error",
                    code=response.code,
                    trace_id=trace_id or "",
                    latency_ns=latency_ns or 0,
                )
            )


class Cluster:
    """A convenience bundle: store + API server (+ later: controllers,
    exploit engine).  This is what tests and examples instantiate."""

    def __init__(
        self,
        version: str = "1.28.6",
        authorizer: Authorizer | None = None,
        validate_schema: bool = True,
        event_bus: Any | None = None,
        data_dir: Any | None = None,
        fsync: str | None = None,
    ) -> None:
        # ``data_dir`` makes the cluster durable: the store recovers
        # from (and write-ahead-logs into) that directory.  Under
        # REPRO_NO_WAL=1, recover() degrades to a plain in-memory
        # store, so the escape hatch covers this path too.
        if data_dir is not None:
            self.store = ObjectStore.recover(data_dir, fsync=fsync)
        else:
            self.store = ObjectStore()
        self.api = APIServer(
            store=self.store,
            authorizer=authorizer,
            version=version,
            validate_schema=validate_schema,
            event_bus=event_bus,
        )

    def apply(
        self, manifest: dict[str, Any], user: User | None = None, verb: str | None = None
    ) -> ApiResponse:
        """kubectl-apply semantics: create, or update when it exists."""
        user = user or User.admin()
        obj = K8sObject(manifest)
        if verb is None:
            verb = (
                "update"
                if self.store.exists(obj.kind, obj.namespace, obj.name)
                else "create"
            )
        return self.api.handle(ApiRequest.from_manifest(manifest, user, verb))

    def apply_all(
        self, manifests: list[dict[str, Any]], user: User | None = None
    ) -> list[ApiResponse]:
        return [self.apply(m, user) for m in manifests]
