"""The garbage collector: ownerReference-based cascade deletion.

Kubernetes deletes dependents when their owner disappears (background
cascading deletion): removing a Deployment removes its ReplicaSets,
which removes their Pods.  The mini control plane's controllers set
``ownerReferences`` exactly like upstream, so the collector only needs
the real algorithm: repeatedly delete objects whose controller owner
(by kind/name, same namespace) no longer exists, unless the reference
has ``blockOwnerDeletion`` semantics disabled by an orphan policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.k8s.objects import K8sObject
from repro.k8s.store import ObjectStore


@dataclass
class GCResult:
    """Objects collected in one run, in deletion order."""

    deleted: list[tuple[str, str, str]] = field(default_factory=list)  # kind, ns, name

    def __len__(self) -> int:
        return len(self.deleted)


def _owner_missing(store: ObjectStore, obj: K8sObject) -> bool:
    owners = obj.metadata.get("ownerReferences") or []
    if not owners:
        return False
    for owner in owners:
        kind = owner.get("kind", "")
        name = owner.get("name", "")
        if kind and name and store.exists(kind, obj.namespace, name):
            return False  # at least one living owner keeps it alive
    return True


class GarbageCollector:
    """Background cascading deletion over the store."""

    def __init__(self, store: ObjectStore, orphan_kinds: frozenset[str] = frozenset()):
        self.store = store
        #: kinds whose dependents are orphaned instead of collected
        #: (the ``--cascade=orphan`` policy).
        self.orphan_kinds = orphan_kinds

    def collect_once(self) -> GCResult:
        """One mark-then-sweep pass: liveness is decided against the
        state at the start of the pass, so each pass collects exactly
        one level of the ownership chain."""
        marked = [
            obj
            for obj in self.store.all_objects()
            if obj.kind not in self.orphan_kinds and _owner_missing(self.store, obj)
        ]
        result = GCResult()
        for obj in marked:
            self.store.delete(obj.kind, obj.namespace, obj.name)
            result.deleted.append((obj.kind, obj.namespace, obj.name))
        return result

    def collect(self, max_rounds: int = 10) -> GCResult:
        """Sweep to a fixed point (owners of owners cascade)."""
        total = GCResult()
        for _ in range(max_rounds):
            swept = self.collect_once()
            if not swept.deleted:
                return total
            total.deleted.extend(swept.deleted)
        raise RuntimeError("garbage collection did not converge")


def delete_with_cascade(
    store: ObjectStore, kind: str, namespace: str, name: str
) -> GCResult:
    """``kubectl delete`` default behaviour: delete + collect."""
    store.delete(kind, namespace, name)
    collector = GarbageCollector(store)
    result = collector.collect()
    result.deleted.insert(0, (kind, namespace, name))
    return result
