"""A miniature kube-scheduler.

Assigns pending pods (no ``spec.nodeName``) to nodes using the real
scheduler's core predicates and a spreading heuristic:

- **fit**: the pod's CPU/memory requests must fit the node's remaining
  allocatable capacity;
- **nodeSelector**: every selector label must match the node;
- **taints/tolerations**: ``NoSchedule`` taints exclude pods that do
  not tolerate them;
- **unschedulable**: cordoned nodes receive nothing;
- **scoring**: among feasible nodes, the least-loaded (by requested
  CPU) wins, spreading pods like the default scheduler's
  ``LeastAllocated`` strategy.

Nodes are plain :class:`Node` records (capacity + labels + taints); the
scheduler runs as a controller-style pass over the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.k8s.objects import K8sObject
from repro.k8s.quantity import QuantityError, parse_cpu_millis, parse_memory_bytes
from repro.k8s.store import ObjectStore
from repro.yamlutil import get_path


@dataclass
class Node:
    """A worker node: capacity, labels, taints, cordon state."""

    name: str
    cpu_millis: float = 8000.0
    memory_bytes: float = 16 * 2**30
    labels: dict[str, str] = field(default_factory=dict)
    taints: list[dict[str, str]] = field(default_factory=list)
    unschedulable: bool = False


def pod_requests(pod: K8sObject) -> tuple[float, float]:
    """(cpu millicores, memory bytes) requested by a pod."""
    cpu = memory = 0.0
    for group in ("containers", "initContainers"):
        for container in pod.spec.get(group) or []:
            if not isinstance(container, dict):
                continue
            requests = get_path(container, "resources.requests", {}) or {}
            try:
                if "cpu" in requests:
                    cpu += parse_cpu_millis(requests["cpu"])
                if "memory" in requests:
                    memory += parse_memory_bytes(requests["memory"])
            except QuantityError:
                continue
    return cpu, memory


def _tolerates(pod: K8sObject, taint: dict[str, str]) -> bool:
    for toleration in pod.spec.get("tolerations") or []:
        if not isinstance(toleration, dict):
            continue
        operator = toleration.get("operator", "Equal")
        key_matches = (
            toleration.get("key") in (None, "", taint.get("key"))
            if operator == "Exists"
            else toleration.get("key") == taint.get("key")
            and toleration.get("value") == taint.get("value")
        )
        effect_matches = toleration.get("effect") in (None, "", taint.get("effect"))
        if key_matches and effect_matches:
            return True
    return False


class Scheduler:
    """Binds pending pods to feasible nodes."""

    def __init__(self, store: ObjectStore, nodes: list[Node], recorder=None):
        self.store = store
        self.nodes = {node.name: node for node in nodes}
        self.recorder = recorder
        #: pods that could not be placed, with the reason per node.
        self.unschedulable: dict[str, dict[str, str]] = {}

    # -- feasibility -------------------------------------------------------

    def _usage(self) -> dict[str, tuple[float, float]]:
        usage: dict[str, tuple[float, float]] = {name: (0.0, 0.0) for name in self.nodes}
        for pod in self.store.list("Pod"):
            node_name = pod.spec.get("nodeName")
            if node_name in usage:
                cpu, memory = pod_requests(pod)
                used_cpu, used_memory = usage[node_name]
                usage[node_name] = (used_cpu + cpu, used_memory + memory)
        return usage

    def _feasible(
        self, pod: K8sObject, node: Node, usage: dict[str, tuple[float, float]]
    ) -> str | None:
        """None when feasible, else the predicate that failed."""
        if node.unschedulable:
            return "node is unschedulable"
        selector = pod.spec.get("nodeSelector") or {}
        if any(node.labels.get(k) != v for k, v in selector.items()):
            return "nodeSelector does not match"
        for taint in node.taints:
            if taint.get("effect") == "NoSchedule" and not _tolerates(pod, taint):
                return f"untolerated taint {taint.get('key')}"
        cpu, memory = pod_requests(pod)
        used_cpu, used_memory = usage[node.name]
        if used_cpu + cpu > node.cpu_millis:
            return "insufficient cpu"
        if used_memory + memory > node.memory_bytes:
            return "insufficient memory"
        return None

    # -- scheduling pass -----------------------------------------------------

    def schedule_once(self) -> int:
        """Bind every schedulable pending pod; returns bindings made."""
        bound = 0
        usage = self._usage()
        for pod in self.store.list("Pod"):
            if pod.spec.get("nodeName"):
                continue
            failures: dict[str, str] = {}
            candidates: list[tuple[float, str]] = []
            for node in self.nodes.values():
                reason = self._feasible(pod, node, usage)
                if reason is None:
                    candidates.append((usage[node.name][0], node.name))
                else:
                    failures[node.name] = reason
            if not candidates:
                self.unschedulable[f"{pod.namespace}/{pod.name}"] = failures
                if self.recorder is not None:
                    summary = "; ".join(
                        f"{node}: {reason}" for node, reason in sorted(failures.items())
                    )
                    self.recorder.warning(
                        pod, "FailedScheduling",
                        f"0/{len(self.nodes)} nodes are available: {summary}",
                        component="default-scheduler",
                    )
                continue
            candidates.sort()  # least-allocated CPU first, then name
            chosen = candidates[0][1]
            pod.spec["nodeName"] = chosen
            self.store.update(pod)
            if self.recorder is not None:
                self.recorder.normal(
                    pod, "Scheduled",
                    f"Successfully assigned {pod.namespace}/{pod.name} to {chosen}",
                    component="default-scheduler",
                )
            cpu, memory = pod_requests(pod)
            used_cpu, used_memory = usage[chosen]
            usage[chosen] = (used_cpu + cpu, used_memory + memory)
            self.unschedulable.pop(f"{pod.namespace}/{pod.name}", None)
            bound += 1
        return bound
