"""Synthetic Kubernetes e2e test corpus and coverage model (Fig. 5).

The paper instruments the Kubernetes codebase, runs 6,580 e2e tests
across 12 categories, and cross-references per-test line coverage with
the files patched by 49 CVEs.  We cannot run the real Go test suite, so
this module builds the closest synthetic equivalent:

- a **feature model**: each API feature (a schema field such as
  ``volumeMounts.subPath`` or ``externalIPs``) maps to the source files
  that implement it in the simulated Kubernetes codebase;
- a **corpus generator**: 6,580 synthetic tests across the same 12
  categories with the paper's size skew (storage dominates); each test
  declares the features it exercises, drawn deterministically from
  category-specific pools;
- a **coverage model**: test -> features -> files, intersected with the
  CVE database's vulnerable files.

The generator is seeded so the corpus is reproducible, and it is
calibrated to the paper's published structure: 29/6,580 tests touch
vulnerable code overall, 21/960 excluding the storage category, and
exactly three CVEs have non-zero coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.k8s.vulndb import VulnerabilityDatabase, vulndb

#: The 12 e2e categories with corpus sizes.  Storage dominates, and the
#: 11 non-storage categories sum to 960 (paper: "excluding the largest
#: category, vulnerable code is covered by only 21 out of 960 tests").
CATEGORY_SIZES: dict[str, int] = {
    "storage": 5620,
    "network": 180,
    "apps": 150,
    "node": 130,
    "apimachinery": 110,
    "auth": 70,
    "scheduling": 70,
    "autoscaling": 60,
    "common": 60,
    "cli": 50,
    "instrumentation": 45,
    "lifecycle": 35,
}

#: API feature -> source files exercised.  Non-vulnerable "background"
#: features map to benign files; the three features that reach
#: CVE-patched files mirror the paper's Fig. 5 rows.
FEATURE_FILES: dict[str, tuple[str, ...]] = {
    # background features (benign files)
    "pods.basic": ("pkg/kubelet/kubelet.go", "pkg/api/pod/util.go"),
    "pods.probes": ("pkg/kubelet/prober/prober.go",),
    "pods.env": ("pkg/kubelet/kuberuntime/kuberuntime_env.go",),
    "deployments.rollout": ("pkg/controller/deployment/deployment_controller.go",),
    "services.clusterip": ("pkg/proxy/iptables/proxier_benign.go",),
    "services.nodeport": ("pkg/proxy/nodeport.go",),
    "configmaps.mount": ("pkg/volume/configmap/configmap_benign.go",),
    "secrets.mount": ("pkg/volume/secret/secret_benign.go",),
    "volumes.pvc": ("pkg/volume/persistent_claim.go",),
    "volumes.csi": ("pkg/volume/csi/csi_attacher.go",),
    "volumes.provisioning": ("pkg/controller/volume/persistentvolume/pv_controller.go",),
    "scheduling.affinity": ("pkg/scheduler/framework/plugins/interpodaffinity/plugin.go",),
    "scheduling.taints": ("pkg/scheduler/framework/plugins/tainttoleration/plugin.go",),
    "autoscaling.hpa": ("pkg/controller/podautoscaler/horizontal.go",),
    "auth.rbac": ("plugin/pkg/auth/authorizer/rbac/rbac.go",),
    "auth.serviceaccount": ("pkg/serviceaccount/claims.go",),
    "apimachinery.crd": ("staging/src/k8s.io/apiextensions-apiserver/pkg/apiserver/apiserver.go",),
    "apimachinery.watch": ("staging/src/k8s.io/apiserver/pkg/storage/cacher/cacher.go",),
    "node.lifecycle": ("pkg/controller/nodelifecycle/node_lifecycle_controller.go",),
    "node.resources": ("pkg/kubelet/cm/container_manager_linux.go",),
    "cli.kubectl": ("pkg/kubectl/cmd/apply/apply.go",),
    "instrumentation.metrics": ("pkg/kubelet/metrics/metrics.go",),
    "lifecycle.preStop": ("pkg/kubelet/lifecycle/handlers.go",),
    "common.downward": ("pkg/volume/downwardapi/downwardapi.go",),
    # vulnerable-feature rows (Fig. 5)
    "volumes.subpath": ("pkg/volume/util/subpath/subpath_linux.go",),  # CVE-2017-1002101 / 25741
    "node.seccomp": ("pkg/kubelet/kuberuntime/security_context.go",),  # CVE-2023-2431
    "services.externalips": ("pkg/proxy/service.go",),  # CVE-2020-8554
}

#: Per-category feature pools (background features only; vulnerable
#: features are injected explicitly by the calibration below).
CATEGORY_FEATURES: dict[str, tuple[str, ...]] = {
    "storage": ("volumes.pvc", "volumes.csi", "volumes.provisioning",
                "configmaps.mount", "secrets.mount"),
    "network": ("services.clusterip", "services.nodeport"),
    "apps": ("deployments.rollout", "pods.basic"),
    "node": ("node.lifecycle", "node.resources", "pods.probes"),
    "apimachinery": ("apimachinery.crd", "apimachinery.watch"),
    "auth": ("auth.rbac", "auth.serviceaccount"),
    "scheduling": ("scheduling.affinity", "scheduling.taints"),
    "autoscaling": ("autoscaling.hpa",),
    "common": ("common.downward", "pods.env"),
    "cli": ("cli.kubectl",),
    "instrumentation": ("instrumentation.metrics",),
    "lifecycle": ("lifecycle.preStop",),
}

#: Calibration: (category, vulnerable feature, number of tests).
#: Totals 29 covering tests; 8 in storage, 21 outside; 3 CVE rows.
VULNERABLE_TEST_ALLOCATION: tuple[tuple[str, str, int], ...] = (
    ("storage", "volumes.subpath", 6),     # CVE-2017-1002101, CVE-2021-25741
    ("storage", "node.seccomp", 2),        # CVE-2023-2431 (storage seccomp tests)
    ("network", "services.externalips", 21),  # CVE-2020-8554
)


@dataclass(frozen=True)
class E2ETest:
    """One synthetic e2e test: a name, a category, and the API
    features it exercises."""

    name: str
    category: str
    features: tuple[str, ...]

    def covered_files(self) -> set[str]:
        out: set[str] = set()
        for feature in self.features:
            out.update(FEATURE_FILES.get(feature, ()))
        return out


class E2ECorpus:
    """The full synthetic test corpus with coverage queries."""

    def __init__(self, seed: int = 1337, sizes: dict[str, int] | None = None):
        self.sizes = dict(sizes or CATEGORY_SIZES)
        self.tests: list[E2ETest] = self._generate(seed)

    def _generate(self, seed: int) -> list[E2ETest]:
        rng = random.Random(seed)
        tests: list[E2ETest] = []
        vulnerable_quota: dict[str, list[str]] = {}
        for category, feature, count in VULNERABLE_TEST_ALLOCATION:
            vulnerable_quota.setdefault(category, []).extend([feature] * count)
        for category, size in sorted(self.sizes.items()):
            pool = CATEGORY_FEATURES[category]
            injected = vulnerable_quota.get(category, [])
            for idx in range(size):
                n_features = rng.randint(1, min(3, len(pool)))
                features = tuple(sorted(rng.sample(pool, n_features)))
                if idx < len(injected):
                    features = tuple(sorted(set(features) | {injected[idx]}))
                tests.append(
                    E2ETest(
                        name=f"e2e/{category}/test_{idx:05d}",
                        category=category,
                        features=features,
                    )
                )
        return tests

    def __len__(self) -> int:
        return len(self.tests)

    def categories(self) -> list[str]:
        return sorted(self.sizes)

    def tests_in(self, category: str) -> list[E2ETest]:
        return [t for t in self.tests if t.category == category]


@dataclass
class CoverageReport:
    """Cross-reference of test coverage with vulnerable files."""

    #: cve_id -> category -> number of tests covering its files
    heatmap: dict[str, dict[str, int]]
    total_tests: int
    covering_tests: int
    covering_tests_excluding: dict[str, tuple[int, int]] = field(default_factory=dict)

    def cves_with_coverage(self) -> list[str]:
        return sorted(c for c, row in self.heatmap.items() if any(row.values()))

    def cves_without_coverage(self) -> list[str]:
        return sorted(c for c, row in self.heatmap.items() if not any(row.values()))


def analyze_coverage(
    corpus: E2ECorpus, db: VulnerabilityDatabase | None = None
) -> CoverageReport:
    """Reproduce the paper's Fig. 5 analysis: for each CVE and e2e
    category, count the tests whose covered files intersect the CVE's
    vulnerable files."""
    db = db if db is not None else vulndb
    file_to_cves = db.vulnerable_files()
    heatmap: dict[str, dict[str, int]] = {
        entry.cve_id: {cat: 0 for cat in corpus.categories()} for entry in db
    }
    covering: set[str] = set()
    covering_by_category: dict[str, int] = {cat: 0 for cat in corpus.categories()}
    for test in corpus.tests:
        files = test.covered_files()
        hit_cves: set[str] = set()
        for f in files:
            hit_cves.update(file_to_cves.get(f, ()))
        if hit_cves:
            covering.add(test.name)
            covering_by_category[test.category] += 1
            for cve in hit_cves:
                heatmap[cve][test.category] += 1
    report = CoverageReport(
        heatmap=heatmap, total_tests=len(corpus), covering_tests=len(covering)
    )
    # Paper's robustness check: exclude the largest category.
    largest = max(corpus.sizes, key=lambda c: corpus.sizes[c])
    report.covering_tests_excluding[largest] = (
        len(covering) - covering_by_category[largest],
        len(corpus) - corpus.sizes[largest],
    )
    return report
