"""Kubernetes object helpers.

Objects are kept as plain dicts (the same shape as parsed YAML
manifests); :class:`K8sObject` is a thin wrapper adding typed access to
the common metadata fields and convenience constructors.  Keeping the
underlying representation as plain data means manifests flow unchanged
between the Helm engine, the KubeFence validator, and the API server.
"""

from __future__ import annotations

from typing import Any

from repro.yamlutil import deep_copy, get_path


class K8sObject:
    """A wrapper over a manifest dict with typed metadata access."""

    __slots__ = ("data",)

    def __init__(self, data: dict[str, Any]):
        if not isinstance(data, dict):
            raise TypeError(f"manifest must be a dict, got {type(data).__name__}")
        self.data = data

    @classmethod
    def make(
        cls,
        api_version: str,
        kind: str,
        name: str,
        namespace: str | None = "default",
        spec: dict | None = None,
        **extra: Any,
    ) -> "K8sObject":
        data: dict[str, Any] = {
            "apiVersion": api_version,
            "kind": kind,
            "metadata": {"name": name},
        }
        if namespace is not None:
            data["metadata"]["namespace"] = namespace
        if spec is not None:
            data["spec"] = spec
        data.update(extra)
        return cls(data)

    @property
    def api_version(self) -> str:
        return self.data.get("apiVersion", "")

    @property
    def kind(self) -> str:
        return self.data.get("kind", "")

    @property
    def metadata(self) -> dict[str, Any]:
        return self.data.setdefault("metadata", {})

    @property
    def name(self) -> str:
        return self.metadata.get("name", "")

    @property
    def namespace(self) -> str:
        return self.metadata.get("namespace", "default")

    @property
    def labels(self) -> dict[str, str]:
        return self.metadata.setdefault("labels", {})

    @property
    def spec(self) -> dict[str, Any]:
        return self.data.get("spec", {})

    @property
    def resource_version(self) -> int | None:
        rv = self.metadata.get("resourceVersion")
        return int(rv) if rv is not None else None

    def get(self, path: str, default: Any = None) -> Any:
        """Field access by dotted path, e.g. ``spec.replicas``."""
        return get_path(self.data, path, default)

    def copy(self) -> "K8sObject":
        return K8sObject(deep_copy(self.data))

    def key(self) -> tuple[str, str, str]:
        """(kind, namespace, name) identity inside the store."""
        return (self.kind, self.namespace, self.name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, K8sObject):
            return self.data == other.data
        return NotImplemented

    def __repr__(self) -> str:
        return f"K8sObject({self.kind} {self.namespace}/{self.name})"
