"""A from-scratch miniature Kubernetes control plane.

This package implements everything KubeFence needs from Kubernetes:

- :mod:`repro.k8s.gvk` -- group/version/kind registry of resource types.
- :mod:`repro.k8s.schema` -- the configurable-field catalog (the
  "attack surface" the paper quantifies; OpenAPI-like field trees).
- :mod:`repro.k8s.objects` -- Kubernetes object helpers.
- :mod:`repro.k8s.errors` -- API error/status model.
- :mod:`repro.k8s.store` -- etcd-like versioned object store with watch.
- :mod:`repro.k8s.audit` -- structured audit logging (for audit2rbac).
- :mod:`repro.k8s.apiserver` -- the API server: routing, authorization,
  admission, persistence, auditing.
- :mod:`repro.k8s.controllers` -- built-in controllers (Deployment ->
  ReplicaSet -> Pod reconciliation, etc.).
- :mod:`repro.k8s.vulndb` -- CVE database + live exploit engine.
- :mod:`repro.k8s.e2e` -- synthetic e2e test corpus and coverage model.
- :mod:`repro.k8s.http` -- optional real-HTTP transport (stdlib).
"""

from repro.k8s.apiserver import ApiRequest, ApiResponse, APIServer, Cluster
from repro.k8s.errors import ApiError
from repro.k8s.gvk import GVK, ResourceType, registry
from repro.k8s.objects import K8sObject
from repro.k8s.store import ObjectStore

__all__ = [
    "APIServer",
    "ApiRequest",
    "ApiResponse",
    "ApiError",
    "Cluster",
    "GVK",
    "K8sObject",
    "ObjectStore",
    "ResourceType",
    "registry",
]
