"""Built-in controllers: the reconciliation loop of the control plane.

The paper's background (Sec. II-C) relies on Kubernetes controllers
continuously reconciling desired and current state; operators build on
the same machinery.  This module implements the built-in controllers
the experiments exercise:

- DeploymentController  -- Deployment -> ReplicaSet
- ReplicaSetController  -- ReplicaSet -> Pods
- StatefulSetController -- StatefulSet -> ordered Pods (+ PVCs)
- DaemonSetController   -- DaemonSet -> one Pod per node
- JobController         -- Job -> Pods, completion tracking
- EndpointsController   -- Service -> Endpoints from selected Pods

Controllers are stepped deterministically (``reconcile_once`` /
``run_until_stable``); there is no background thread, which keeps tests
and benchmarks reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.k8s.objects import K8sObject
from repro.k8s.store import ObjectStore
from repro.yamlutil import deep_copy, get_path


def _hash_suffix(data: dict[str, Any]) -> str:
    """A stable content hash used for ReplicaSet / Pod name suffixes,
    mirroring the pod-template-hash of real Deployments."""
    import json

    digest = hashlib.sha1(json.dumps(data, sort_keys=True).encode()).hexdigest()
    return digest[:10]


def _selector_matches(selector: dict[str, Any] | None, labels: dict[str, str]) -> bool:
    if not selector:
        return False
    match_labels = selector.get("matchLabels") or selector
    if not isinstance(match_labels, dict):
        return False
    return all(labels.get(k) == v for k, v in match_labels.items())


class Controller:
    """Base class: one reconcile pass over the store."""

    kind: str = ""
    #: Optional shared EventRecorder (set by the ControllerManager).
    recorder = None

    def emit(self, obj, reason: str, message: str) -> None:
        if self.recorder is not None:
            self.recorder.normal(obj, reason, message)

    def reconcile(self, store: ObjectStore) -> int:
        """Run one pass; return the number of changes applied."""
        raise NotImplementedError


class DeploymentController(Controller):
    kind = "Deployment"

    def reconcile(self, store: ObjectStore) -> int:
        changes = 0
        for dep in store.list("Deployment"):
            template = dep.get("spec.template", {}) or {}
            rs_name = f"{dep.name}-{_hash_suffix(template)}"
            if store.exists("ReplicaSet", dep.namespace, rs_name):
                continue
            # Scale down older ReplicaSets owned by this Deployment.
            for rs in store.list("ReplicaSet", dep.namespace):
                owners = rs.metadata.get("ownerReferences") or []
                if any(o.get("name") == dep.name and o.get("kind") == "Deployment" for o in owners):
                    if rs.get("spec.replicas", 0) != 0:
                        rs.data.setdefault("spec", {})["replicas"] = 0
                        store.update(rs)
                        changes += 1
            rs = K8sObject.make(
                "apps/v1",
                "ReplicaSet",
                rs_name,
                namespace=dep.namespace,
                spec={
                    "replicas": dep.get("spec.replicas", 1) or 1,
                    "selector": deep_copy(dep.get("spec.selector", {}) or {}),
                    "template": deep_copy(template),
                },
            )
            rs.metadata["ownerReferences"] = [
                {"apiVersion": "apps/v1", "kind": "Deployment", "name": dep.name,
                 "uid": dep.metadata.get("uid"), "controller": True}
            ]
            rs.labels.update(get_path(template, "metadata.labels", {}) or {})
            store.create(rs)
            self.emit(dep, "ScalingReplicaSet",
                      f"Scaled up replica set {rs_name} to {rs.get('spec.replicas')}")
            changes += 1
        return changes


class ReplicaSetController(Controller):
    kind = "ReplicaSet"

    def reconcile(self, store: ObjectStore) -> int:
        changes = 0
        for rs in store.list("ReplicaSet"):
            desired = rs.get("spec.replicas", 1)
            desired = desired if desired is not None else 1
            owned = [
                p
                for p in store.list("Pod", rs.namespace)
                if any(
                    o.get("name") == rs.name and o.get("kind") == "ReplicaSet"
                    for o in (p.metadata.get("ownerReferences") or [])
                )
            ]
            current = len(owned)
            for i in range(current, desired):
                pod = self._pod_from_template(rs, i)
                store.create(pod)
                self.emit(rs, "SuccessfulCreate", f"Created pod: {pod.name}")
                changes += 1
            for pod in owned[desired:]:
                store.delete("Pod", pod.namespace, pod.name)
                self.emit(rs, "SuccessfulDelete", f"Deleted pod: {pod.name}")
                changes += 1
        return changes

    def _pod_from_template(self, rs: K8sObject, ordinal: int) -> K8sObject:
        template = rs.get("spec.template", {}) or {}
        pod = K8sObject.make(
            "v1",
            "Pod",
            f"{rs.name}-{_hash_suffix({'i': ordinal, 'rs': rs.name})[:5]}",
            namespace=rs.namespace,
            spec=deep_copy(template.get("spec", {})),
        )
        pod.labels.update(get_path(template, "metadata.labels", {}) or {})
        pod.metadata["ownerReferences"] = [
            {"apiVersion": "apps/v1", "kind": "ReplicaSet", "name": rs.name,
             "uid": rs.metadata.get("uid"), "controller": True}
        ]
        pod.data["status"] = {"phase": "Running"}
        return pod


class StatefulSetController(Controller):
    kind = "StatefulSet"

    def reconcile(self, store: ObjectStore) -> int:
        changes = 0
        for sts in store.list("StatefulSet"):
            desired = sts.get("spec.replicas", 1)
            desired = desired if desired is not None else 1
            template = sts.get("spec.template", {}) or {}
            for ordinal in range(desired):
                pod_name = f"{sts.name}-{ordinal}"
                if not store.exists("Pod", sts.namespace, pod_name):
                    pod = K8sObject.make(
                        "v1",
                        "Pod",
                        pod_name,
                        namespace=sts.namespace,
                        spec=deep_copy(template.get("spec", {})),
                    )
                    pod.labels.update(get_path(template, "metadata.labels", {}) or {})
                    pod.metadata["ownerReferences"] = [
                        {"apiVersion": "apps/v1", "kind": "StatefulSet",
                         "name": sts.name, "controller": True}
                    ]
                    pod.data["status"] = {"phase": "Running"}
                    store.create(pod)
                    changes += 1
                # Volume claim templates materialise one PVC per pod.
                for vct in sts.get("spec.volumeClaimTemplates", []) or []:
                    claim_name = f"{get_path(vct, 'metadata.name', 'data')}-{pod_name}"
                    if not store.exists("PersistentVolumeClaim", sts.namespace, claim_name):
                        pvc = K8sObject.make(
                            "v1",
                            "PersistentVolumeClaim",
                            claim_name,
                            namespace=sts.namespace,
                            spec=deep_copy(vct.get("spec", {})),
                        )
                        store.create(pvc)
                        changes += 1
        return changes


class DaemonSetController(Controller):
    kind = "DaemonSet"

    def __init__(self, nodes: tuple[str, ...] = ("node-1", "node-2")):
        self.nodes = nodes

    def reconcile(self, store: ObjectStore) -> int:
        changes = 0
        for ds in store.list("DaemonSet"):
            template = ds.get("spec.template", {}) or {}
            for node in self.nodes:
                pod_name = f"{ds.name}-{node}"
                if store.exists("Pod", ds.namespace, pod_name):
                    continue
                pod = K8sObject.make(
                    "v1",
                    "Pod",
                    pod_name,
                    namespace=ds.namespace,
                    spec=deep_copy(template.get("spec", {})),
                )
                pod.spec["nodeName"] = node
                pod.labels.update(get_path(template, "metadata.labels", {}) or {})
                pod.metadata["ownerReferences"] = [
                    {"apiVersion": "apps/v1", "kind": "DaemonSet",
                     "name": ds.name, "controller": True}
                ]
                pod.data["status"] = {"phase": "Running"}
                store.create(pod)
                changes += 1
        return changes


class JobController(Controller):
    kind = "Job"

    def reconcile(self, store: ObjectStore) -> int:
        changes = 0
        for job in store.list("Job"):
            completions = job.get("spec.completions", 1) or 1
            template = job.get("spec.template", {}) or {}
            for i in range(completions):
                pod_name = f"{job.name}-{i}"
                if store.exists("Pod", job.namespace, pod_name):
                    continue
                pod = K8sObject.make(
                    "v1",
                    "Pod",
                    pod_name,
                    namespace=job.namespace,
                    spec=deep_copy(template.get("spec", {})),
                )
                pod.labels.update(get_path(template, "metadata.labels", {}) or {})
                pod.metadata["ownerReferences"] = [
                    {"apiVersion": "batch/v1", "kind": "Job",
                     "name": job.name, "controller": True}
                ]
                pod.data["status"] = {"phase": "Succeeded"}
                store.create(pod)
                changes += 1
        return changes


class EndpointsController(Controller):
    kind = "Service"

    def reconcile(self, store: ObjectStore) -> int:
        changes = 0
        for svc in store.list("Service"):
            selector = svc.get("spec.selector")
            if not selector:
                continue
            addresses = []
            for pod in store.list("Pod", svc.namespace):
                if _selector_matches({"matchLabels": selector}, pod.labels):
                    addresses.append(
                        {"ip": f"10.244.0.{(hash(pod.name) % 250) + 1}",
                         "targetRef": {"kind": "Pod", "name": pod.name,
                                       "namespace": pod.namespace}}
                    )
            ports = [
                {"name": p.get("name", ""), "port": p.get("targetPort", p.get("port")),
                 "protocol": p.get("protocol", "TCP")}
                for p in (svc.get("spec.ports") or [])
            ]
            subsets = [{"addresses": addresses, "ports": ports}] if addresses else []
            if store.exists("Endpoints", svc.namespace, svc.name):
                current = store.get("Endpoints", svc.namespace, svc.name)
                if current.data.get("subsets") != subsets:
                    current.data["subsets"] = subsets
                    store.update(current)
                    changes += 1
            elif subsets:
                ep = K8sObject.make("v1", "Endpoints", svc.name, namespace=svc.namespace)
                ep.data["subsets"] = subsets
                store.create(ep)
                changes += 1
        return changes


class ControllerManager:
    """Runs the built-in controllers to a fixed point."""

    def __init__(
        self,
        store: ObjectStore,
        nodes: tuple[str, ...] = ("node-1", "node-2"),
        recorder=None,
    ):
        self.store = store
        self.recorder = recorder
        self.controllers: list[Controller] = [
            DeploymentController(),
            ReplicaSetController(),
            StatefulSetController(),
            DaemonSetController(nodes),
            JobController(),
            EndpointsController(),
        ]
        for controller in self.controllers:
            controller.recorder = recorder

    def reconcile_once(self) -> int:
        return sum(c.reconcile(self.store) for c in self.controllers)

    def run_until_stable(self, max_rounds: int = 20) -> int:
        """Reconcile until no controller makes a change.  Returns the
        total number of changes.  Raises if reconciliation diverges."""
        total = 0
        for _ in range(max_rounds):
            changed = self.reconcile_once()
            total += changed
            if changed == 0:
                return total
        raise RuntimeError("controllers did not converge")
