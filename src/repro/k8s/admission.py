"""Built-in admission plugins: LimitRange defaulting and ResourceQuota.

These are the mutating/validating admission controllers a hardened
cluster runs alongside RBAC.  They matter to the paper's story in two
ways: they demonstrate that *even a well-configured admission chain*
does not subsume KubeFence (quota caps totals, it cannot pin individual
spec fields), and they make the mini cluster a more faithful substrate
for the overhead experiments.

- :class:`LimitRangeDefaulter` (mutating): containers that omit
  ``resources.requests``/``limits`` inherit the namespace LimitRange's
  ``defaultRequest``/``default``; per-container ``max`` is validated.
- :class:`ResourceQuotaEnforcer` (validating): per-namespace sums of
  object counts and CPU/memory requests are checked against the hard
  quota; requests that would exceed it are denied with 403, exactly
  like upstream's quota admission.
"""

from __future__ import annotations

from typing import Any

from repro.k8s.apiserver import ApiRequest
from repro.k8s.errors import ApiError
from repro.k8s.gvk import registry
from repro.k8s.objects import K8sObject
from repro.k8s.quantity import (
    QuantityError,
    parse_cpu_millis,
    parse_memory_bytes,
)
from repro.k8s.store import ObjectStore
from repro.yamlutil import get_path


def _containers_of(obj: K8sObject) -> list[dict[str, Any]]:
    if obj.kind not in registry:
        return []
    pod_path = registry.by_kind(obj.kind).pod_spec_path
    if pod_path is None:
        return []
    pod_spec = get_path(obj.data, pod_path, None)
    if not isinstance(pod_spec, dict):
        return []
    out: list[dict[str, Any]] = []
    for group in ("containers", "initContainers"):
        out.extend(c for c in pod_spec.get(group) or [] if isinstance(c, dict))
    return out


class LimitRangeDefaulter:
    """Mutating admission: apply LimitRange defaults and enforce max."""

    def __init__(self, store: ObjectStore):
        self.store = store

    def __call__(self, request: ApiRequest, obj: K8sObject) -> None:
        containers = _containers_of(obj)
        if not containers:
            return
        limit_ranges = self.store.list("LimitRange", obj.namespace)
        for limit_range in limit_ranges:
            for rule in limit_range.get("spec.limits", []) or []:
                if rule.get("type") != "Container":
                    continue
                self._apply_rule(rule, containers, obj)

    def _apply_rule(
        self, rule: dict[str, Any], containers: list[dict[str, Any]], obj: K8sObject
    ) -> None:
        defaults = rule.get("default") or {}
        default_requests = rule.get("defaultRequest") or {}
        maxima = rule.get("max") or {}
        for container in containers:
            resources = container.setdefault("resources", {})
            limits = resources.setdefault("limits", {})
            requests = resources.setdefault("requests", {})
            for resource_name, value in defaults.items():
                limits.setdefault(resource_name, value)
            for resource_name, value in default_requests.items():
                requests.setdefault(resource_name, value)
            for resource_name, maximum in maxima.items():
                declared = limits.get(resource_name)
                if declared is None:
                    continue
                if not self._leq(resource_name, declared, maximum):
                    raise ApiError.forbidden(
                        f"maximum {resource_name} usage per Container is {maximum}, "
                        f"but limit is {declared} "
                        f'(LimitRange violation in container "{container.get("name")}")'
                    )

    @staticmethod
    def _leq(resource_name: str, left: Any, right: Any) -> bool:
        try:
            if resource_name == "cpu":
                return parse_cpu_millis(left) <= parse_cpu_millis(right)
            return parse_memory_bytes(left) <= parse_memory_bytes(right)
        except QuantityError:
            return True  # malformed values are caught by schema checks


#: quota key -> (kind counted, or None for compute resources)
_COUNT_KEYS = {
    "pods": "Pod",
    "services": "Service",
    "configmaps": "ConfigMap",
    "secrets": "Secret",
    "persistentvolumeclaims": "PersistentVolumeClaim",
}


class ResourceQuotaEnforcer:
    """Validating admission: enforce per-namespace ResourceQuota."""

    def __init__(self, store: ObjectStore):
        self.store = store

    def __call__(self, request: ApiRequest, obj: K8sObject) -> None:
        if request.verb != "create" or obj.kind == "ResourceQuota":
            return
        quotas = self.store.list("ResourceQuota", obj.namespace)
        for quota in quotas:
            hard = quota.get("spec.hard") or {}
            self._check_counts(hard, obj, quota.name)
            self._check_compute(hard, obj, quota.name)

    def _check_counts(self, hard: dict[str, Any], obj: K8sObject, quota_name: str) -> None:
        for key, kind in _COUNT_KEYS.items():
            if key not in hard or obj.kind != kind:
                continue
            current = len(self.store.list(kind, obj.namespace))
            allowed = int(hard[key])
            if current + 1 > allowed:
                raise ApiError.forbidden(
                    f"exceeded quota: {quota_name}, requested: {key}=1, "
                    f"used: {key}={current}, limited: {key}={allowed}"
                )

    def _check_compute(self, hard: dict[str, Any], obj: K8sObject, quota_name: str) -> None:
        cpu_key = "requests.cpu" if "requests.cpu" in hard else None
        memory_key = "requests.memory" if "requests.memory" in hard else None
        if not (cpu_key or memory_key) or obj.kind != "Pod":
            return
        new_cpu, new_memory = self._pod_requests(obj)
        used_cpu = used_memory = 0.0
        for pod in self.store.list("Pod", obj.namespace):
            cpu, memory = self._pod_requests(pod)
            used_cpu += cpu
            used_memory += memory
        if cpu_key is not None:
            allowed = parse_cpu_millis(hard[cpu_key])
            if used_cpu + new_cpu > allowed:
                raise ApiError.forbidden(
                    f"exceeded quota: {quota_name}, requested: requests.cpu, "
                    f"used: {used_cpu:.0f}m, limited: {allowed:.0f}m"
                )
        if memory_key is not None:
            allowed = parse_memory_bytes(hard[memory_key])
            if used_memory + new_memory > allowed:
                raise ApiError.forbidden(
                    f"exceeded quota: {quota_name}, requested: requests.memory, "
                    f"used: {used_memory:.0f}, limited: {allowed:.0f}"
                )

    @staticmethod
    def _pod_requests(obj: K8sObject) -> tuple[float, float]:
        cpu = memory = 0.0
        for container in _containers_of(obj):
            requests = get_path(container, "resources.requests", {}) or {}
            try:
                if "cpu" in requests:
                    cpu += parse_cpu_millis(requests["cpu"])
                if "memory" in requests:
                    memory += parse_memory_bytes(requests["memory"])
            except QuantityError:
                continue
        return cpu, memory


def install_builtin_admission(api: Any) -> None:
    """Register the built-in admission chain on an APIServer in the
    upstream order: defaulting (mutating) before quota (validating)."""
    api.register_admission_plugin(LimitRangeDefaulter(api.store))
    api.register_admission_plugin(ResourceQuotaEnforcer(api.store))
