"""Write-ahead log for the object store (crash-only durability).

The store's security argument assumes committed state survives faults:
audit baselines, scanner findings, and every admitted object must come
back after a crash exactly as they were acknowledged.  This module
provides the on-disk substrate:

- **Record framing** -- each record is a length-prefixed, CRC32-checked
  JSON document (``<u32 payload-len><u32 crc32><payload>\\n``).  The
  newline keeps the file greppable; the header makes torn writes
  detectable without trusting JSON parsing.
- **Torn-tail truncation** -- opening a WAL scans it front to back and
  truncates at the first invalid frame (short header, short payload,
  CRC mismatch, missing terminator).  A record is *acknowledged* iff
  its frame is complete on disk: the scan therefore restores exactly
  the acknowledged prefix and drops only the unacknowledged tail,
  never a half-applied record.
- **Fsync policy** (:data:`FSYNC_POLICIES`) -- every append is flushed
  to the OS (so acknowledged writes survive SIGKILL under every
  policy); ``always`` additionally fsyncs per append (power-loss
  safe), ``batch`` fsyncs every :data:`BATCH_FSYNC_EVERY` appends and
  on close, ``never`` leaves fsync to the OS.
- **Snapshots** -- :func:`write_snapshot` atomically (write-temp +
  ``os.replace``) persists a compacted ``{revision, objects}`` image
  using the same checked framing, so recovery replays snapshot + WAL
  suffix instead of the full history.

``REPRO_NO_WAL=1`` is the escape hatch: :func:`wal_enabled` gates the
durable store construction and everything stays in memory.

The module also hosts the **crash-point hook** used by the
process-level chaos harness (:mod:`repro.faults.crash`): a supervised
child arms :func:`arm_crashpoint` from :data:`CRASH_POINT_ENV` and the
store/HTTP layers call :func:`crashpoint` at the three commit points
(``pre-append``, ``post-append``, ``post-ack``); on the armed hit the
process SIGKILLs itself, which is how "kill at an injector-chosen
commit point" is made deterministic.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import threading
import zlib
from pathlib import Path
from typing import Any

__all__ = [
    "BATCH_FSYNC_EVERY",
    "CRASH_POINTS",
    "CRASH_POINT_ENV",
    "FSYNC_ENV",
    "FSYNC_POLICIES",
    "NO_WAL_ENV",
    "SNAPSHOT_NAME",
    "WAL_NAME",
    "WalError",
    "WriteAheadLog",
    "arm_crashpoint",
    "crashpoint",
    "encode_record",
    "load_snapshot",
    "scan_records",
    "wal_enabled",
    "write_snapshot",
]

#: ``<u32 payload length><u32 crc32(payload)>`` little-endian header.
_HEADER = struct.Struct("<II")

#: Record terminator: keeps the log line-oriented for humans/grep.
_TERMINATOR = b"\n"

#: Default file names inside a store data directory.
WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.json"

#: Supported fsync disciplines (see module docstring).
FSYNC_POLICIES = ("always", "batch", "never")
FSYNC_ENV = "REPRO_WAL_FSYNC"
DEFAULT_FSYNC = "batch"

#: Appends between fsyncs under the ``batch`` policy.
BATCH_FSYNC_EVERY = 64

#: ``REPRO_NO_WAL=1`` keeps every store purely in memory.
NO_WAL_ENV = "REPRO_NO_WAL"


def wal_enabled() -> bool:
    """False when ``REPRO_NO_WAL=1`` (the in-memory escape hatch)."""
    return os.environ.get(NO_WAL_ENV, "") != "1"


class WalError(RuntimeError):
    """Unrecoverable WAL/snapshot problem (corrupt snapshot, bad op)."""


def encode_record(record: dict[str, Any]) -> bytes:
    """One framed record: header + compact JSON payload + newline."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode()
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload + _TERMINATOR


def scan_records(data: bytes) -> tuple[list[dict[str, Any]], int, str | None]:
    """Decode the acknowledged prefix of a WAL byte string.

    Returns ``(records, valid_bytes, torn_reason)``: every frame that
    passes length + CRC + terminator checks, the byte offset where the
    valid prefix ends, and why scanning stopped (``None`` for a clean
    end-of-file).  Everything past ``valid_bytes`` is the torn tail --
    by construction an append that never completed, i.e. a write the
    store never acknowledged.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    size = len(data)
    reason: str | None = None
    while offset < size:
        if size - offset < _HEADER.size:
            reason = "torn header"
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        payload = data[start:start + length]
        if len(payload) < length:
            reason = "torn payload"
            break
        if zlib.crc32(payload) != crc:
            reason = "crc mismatch"
            break
        if data[start + length:start + length + 1] != _TERMINATOR:
            reason = "missing terminator"
            break
        try:
            record = json.loads(payload)
        except ValueError:
            reason = "undecodable payload"
            break
        if not isinstance(record, dict):
            reason = "non-object payload"
            break
        records.append(record)
        offset = start + length + 1
    return records, offset, reason


def _resolve_fsync(policy: str | None) -> str:
    resolved = policy or os.environ.get(FSYNC_ENV, "") or DEFAULT_FSYNC
    if resolved not in FSYNC_POLICIES:
        raise ValueError(
            f"unknown fsync policy {resolved!r} (expected one of {FSYNC_POLICIES})"
        )
    return resolved


class WriteAheadLog:
    """Append-only checked log with torn-tail truncation on open.

    Opening scans the existing file, keeps the acknowledged prefix in
    :attr:`recovered`, truncates the torn tail (recording
    :attr:`truncated_bytes` / :attr:`torn_reason`), and positions the
    handle for appends.  Thread-safe: appends serialize on an internal
    lock (the store's own lock already serializes callers, but the log
    must stay consistent even if shared).
    """

    def __init__(self, path: str | Path, fsync: str | None = None):
        self.path = Path(path)
        self.fsync_policy = _resolve_fsync(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.read_bytes() if self.path.exists() else b""
        self.recovered, valid_bytes, self.torn_reason = scan_records(existing)
        self.truncated_bytes = len(existing) - valid_bytes
        self._lock = threading.Lock()
        self._file = open(self.path, "r+b" if self.path.exists() else "w+b")
        self._file.truncate(valid_bytes)
        self._file.seek(valid_bytes)
        #: Records appended through this handle (not counting recovery).
        self.appends = 0
        self._since_fsync = 0
        self._closed = False

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record; returns only once the frame is
        flushed to the OS (and fsynced, per policy)."""
        frame = encode_record(record)
        with self._lock:
            self._file.write(frame)
            self._file.flush()
            self.appends += 1
            if self.fsync_policy == "always":
                os.fsync(self._file.fileno())
            elif self.fsync_policy == "batch":
                self._since_fsync += 1
                if self._since_fsync >= BATCH_FSYNC_EVERY:
                    os.fsync(self._file.fileno())
                    self._since_fsync = 0

    def sync(self) -> None:
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._since_fsync = 0

    def reset(self) -> None:
        """Truncate to empty (called after a compacting snapshot has
        been atomically persisted)."""
        with self._lock:
            self._file.truncate(0)
            self._file.seek(0)
            self._file.flush()
            if self.fsync_policy != "never":
                os.fsync(self._file.fileno())
            self._since_fsync = 0

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._file.flush()
            if self.fsync_policy != "never":
                try:
                    os.fsync(self._file.fileno())
                except OSError:  # pragma: no cover - fs teardown races
                    pass
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- snapshots --------------------------------------------------------------


def write_snapshot(path: str | Path, revision: int, objects: list[dict[str, Any]]) -> None:
    """Atomically persist a compacted store image.

    Write-temp + fsync + ``os.replace`` so a crash mid-snapshot can
    never be observed: either the previous snapshot or the new one is
    on disk, both CRC-framed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    frame = encode_record({"revision": revision, "objects": objects})
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(frame)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path: str | Path) -> tuple[int, list[dict[str, Any]]]:
    """Load a snapshot; ``(0, [])`` when none exists.

    A snapshot that exists but fails its CRC check is disk corruption
    (the write path is atomic), which recovery cannot paper over: that
    raises :class:`WalError` instead of silently dropping state.
    """
    path = Path(path)
    if not path.exists():
        return 0, []
    records, _, torn = scan_records(path.read_bytes())
    if not records:
        raise WalError(f"snapshot {path} is corrupt ({torn or 'empty'})")
    image = records[0]
    revision = int(image.get("revision", 0))
    objects = image.get("objects", [])
    if not isinstance(objects, list):
        raise WalError(f"snapshot {path} has a malformed object list")
    return revision, objects


# -- crash points (process-level chaos) -------------------------------------

#: The three commit points a durable write passes through, in order:
#: before the WAL append (nothing durable, nothing acknowledged),
#: after the append but before the client sees a response (durable,
#: client-unconfirmed), and after the HTTP response has been written
#: (durable and acknowledged).
CRASH_POINTS = ("pre-append", "post-append", "post-ack")

#: ``point:nth`` spec, e.g. ``post-append:3`` = SIGKILL on the third
#: time the post-append point is reached.
CRASH_POINT_ENV = "REPRO_CRASH_POINT"


class _CrashPoint:
    __slots__ = ("point", "target", "seen", "appends")

    def __init__(self, point: str, target: int):
        self.point = point
        self.target = target
        self.seen = 0
        self.appends = 0

    def hit(self, name: str) -> None:
        if self.point == "post-ack" and name == "pre-append":
            # An armed post-ack kill has a window: between the fatal
            # ack reaching the socket and the handler thread getting
            # scheduled to run its crashpoint, the client's *next*
            # write (sent the instant that ack lands) can be picked up
            # by another pool worker and become durable -- a write the
            # client will never see acknowledged, which recovery would
            # then "resurrect".  Once the armed ordinal's appends are
            # exhausted the kill is inevitable, so a further append
            # means that race was lost: die here, before anything
            # beyond the fatal ack hits the log.
            self.appends += 1
            if self.appends > self.target:
                os.kill(os.getpid(), signal.SIGKILL)
            return
        if name != self.point:
            return
        self.seen += 1
        if self.seen >= self.target:
            # SIGKILL, not sys.exit: the whole point is that no
            # cleanup, flush, or atexit hook runs -- the same fault
            # model as a kernel OOM-kill or power-cycled container.
            os.kill(os.getpid(), signal.SIGKILL)


_ARMED: _CrashPoint | None = None


def arm_crashpoint(spec: str | None) -> None:
    """Arm (or with ``None``/empty, disarm) the crash-point hook from a
    ``point:nth`` spec.  Only the chaos child process ever arms this."""
    global _ARMED
    if not spec:
        _ARMED = None
        return
    point, _, nth = spec.partition(":")
    if point not in CRASH_POINTS:
        raise ValueError(
            f"unknown crash point {point!r} (expected one of {CRASH_POINTS})"
        )
    target = int(nth) if nth else 1
    if target < 1:
        raise ValueError(f"crash-point ordinal must be >= 1, got {target}")
    _ARMED = _CrashPoint(point, target)


def crashpoint(name: str) -> None:
    """Commit-point marker: a no-op unless armed (one global read)."""
    armed = _ARMED
    if armed is not None:
        armed.hit(name)
