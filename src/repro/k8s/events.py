"""Kubernetes Events: the control plane's operational breadcrumbs.

Controllers and the scheduler publish ``Event`` objects describing what
they did to which object (``SuccessfulCreate``, ``FailedScheduling``,
``Killing``...).  Cluster operators read them first when debugging; the
mini control plane records them through an :class:`EventRecorder` that
any component can share.

Events are kept out of the main object store on purpose (real clusters
store them with a short TTL in a separate etcd prefix) -- the recorder
is its own ring buffer with query helpers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable

from repro.k8s.objects import K8sObject


@dataclass(frozen=True)
class Event:
    """One recorded event."""

    event_type: str  # "Normal" | "Warning"
    reason: str      # CamelCase machine-readable reason
    message: str
    kind: str
    namespace: str
    name: str
    component: str   # reporting controller
    sequence: int

    def line(self) -> str:
        return (
            f"{self.event_type:7s} {self.reason:20s} "
            f"{self.kind}/{self.name}  {self.message}  ({self.component})"
        )


class EventRecorder:
    """A bounded event sink shared by control-plane components."""

    def __init__(self, capacity: int = 1000):
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._sequence = 0

    def record(
        self,
        obj: "K8sObject | tuple[str, str, str]",
        event_type: str,
        reason: str,
        message: str,
        component: str = "controller-manager",
    ) -> Event:
        if isinstance(obj, K8sObject):
            kind, namespace, name = obj.kind, obj.namespace, obj.name
        else:
            kind, namespace, name = obj
        self._sequence += 1
        event = Event(
            event_type=event_type,
            reason=reason,
            message=message,
            kind=kind,
            namespace=namespace,
            name=name,
            component=component,
            sequence=self._sequence,
        )
        self._events.append(event)
        return event

    def normal(self, obj, reason: str, message: str, component: str = "controller-manager") -> Event:
        return self.record(obj, "Normal", reason, message, component)

    def warning(self, obj, reason: str, message: str, component: str = "controller-manager") -> Event:
        return self.record(obj, "Warning", reason, message, component)

    # -- queries -------------------------------------------------------------

    def events(self) -> list[Event]:
        return list(self._events)

    def for_object(self, kind: str, name: str, namespace: str = "default") -> list[Event]:
        return [
            e
            for e in self._events
            if e.kind == kind and e.name == name and e.namespace == namespace
        ]

    def warnings(self) -> list[Event]:
        return [e for e in self._events if e.event_type == "Warning"]

    def by_reason(self, reason: str) -> list[Event]:
        return [e for e in self._events if e.reason == reason]

    def __len__(self) -> int:
        return len(self._events)

    def render(self, events: Iterable[Event] | None = None) -> str:
        chosen = list(events) if events is not None else self.events()
        return "\n".join(e.line() for e in chosen) or "no events"
