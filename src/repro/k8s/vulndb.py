"""The Kubernetes CVE database and the live exploit engine.

Section III of the paper analyzes the official K8s CVE feed (July 2016
to December 2023; 49 CVEs) and maps each CVE to the source files its
patch modified.  This module reconstructs that database: every entry
carries its component, the vulnerable files (paths in the simulated
Kubernetes codebase), a CVSS score, the affected-version range, and --
for the CVEs that are exploitable through the API interface (Table II)
-- an executable *trigger predicate* over manifests.

The :class:`ExploitEngine` plugs into the API server's admission chain
as an observer: whenever a manifest that triggers a CVE reaches the
server (i.e. neither RBAC nor KubeFence filtered it), the exploit
"fires" and an :class:`ExploitEvent` is recorded.  Table III measures
exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.k8s.apiserver import ApiRequest
from repro.k8s.gvk import registry
from repro.k8s.objects import K8sObject
from repro.yamlutil import get_path

# ---------------------------------------------------------------------------
# Version handling
# ---------------------------------------------------------------------------


def parse_version(text: str) -> tuple[int, ...]:
    """Parse ``1.28.6`` into ``(1, 28, 6)``."""
    return tuple(int(p) for p in text.strip().lstrip("v").split("."))


def version_in_range(version: str, fixed_in: str | None) -> bool:
    """True when *version* predates the fix (i.e. is vulnerable)."""
    if fixed_in is None:
        return True
    return parse_version(version) < parse_version(fixed_in)


# ---------------------------------------------------------------------------
# Trigger predicates
# ---------------------------------------------------------------------------

#: A trigger inspects a manifest and returns the offending field path,
#: or None when the manifest does not exercise the vulnerability.
Trigger = Callable[[K8sObject], "str | None"]


def _pod_specs(obj: K8sObject) -> Iterator[tuple[str, dict]]:
    """Yield (path_prefix, pod_spec_dict) for the manifest's PodSpec,
    whatever workload kind wraps it."""
    if obj.kind not in registry:
        return
    rt = registry.by_kind(obj.kind)
    if rt.pod_spec_path is None:
        return
    spec = get_path(obj.data, rt.pod_spec_path, None)
    if isinstance(spec, dict):
        yield rt.pod_spec_path, spec


def _containers(obj: K8sObject) -> Iterator[tuple[str, dict]]:
    for prefix, spec in _pod_specs(obj):
        for kind in ("containers", "initContainers"):
            for idx, c in enumerate(spec.get(kind) or []):
                if isinstance(c, dict):
                    yield f"{prefix}.{kind}[{idx}]", c


def pod_flag_trigger(flag: str, value: Any = True) -> Trigger:
    """Trigger when a pod-level boolean (hostNetwork/hostPID/hostIPC)
    is set to *value*."""

    def trigger(obj: K8sObject) -> str | None:
        for prefix, spec in _pod_specs(obj):
            if spec.get(flag) == value:
                return f"{prefix}.{flag}"
        return None

    return trigger


def container_field_trigger(
    path: str, predicate: Callable[[Any], bool] = lambda v: v is not None
) -> Trigger:
    """Trigger when any container has *path* (dotted, relative to the
    container) satisfying *predicate*."""

    def trigger(obj: K8sObject) -> str | None:
        for prefix, container in _containers(obj):
            value = get_path(container, path, None)
            if value is not None and predicate(value):
                return f"{prefix}.{path}"
        return None

    return trigger


def subpath_trigger(obj: K8sObject) -> str | None:
    """CVE-2017-1002101: any volumeMounts[].subPath grants host access
    when combined with symlink-capable volumes."""
    for prefix, container in _containers(obj):
        for idx, vm in enumerate(container.get("volumeMounts") or []):
            if isinstance(vm, dict) and vm.get("subPath"):
                return f"{prefix}.volumeMounts[{idx}].subPath"
    return None


def subpath_injection_trigger(obj: K8sObject) -> str | None:
    """CVE-2023-3676: command injection through crafted subPath values
    (special characters evaluated by the kubelet)."""
    suspicious = ("$(", "`", ";", "&&", "|")
    for prefix, container in _containers(obj):
        for idx, vm in enumerate(container.get("volumeMounts") or []):
            if not isinstance(vm, dict):
                continue
            sub = vm.get("subPath")
            if isinstance(sub, str) and any(tok in sub for tok in suspicious):
                return f"{prefix}.volumeMounts[{idx}].subPath"
    return None


def missing_limits_trigger(obj: K8sObject) -> str | None:
    """CVE-2019-11253-style resource exhaustion: containers deployed
    without resources.limits can amplify a parsing DoS."""
    for prefix, container in _containers(obj):
        limits = get_path(container, "resources.limits", None)
        if not limits:
            return f"{prefix}.resources.limits"
    return None


def symlink_exchange_trigger(obj: K8sObject) -> str | None:
    """CVE-2021-25741: symlink exchange via container commands creating
    symlinks into mounted volumes."""
    for prefix, container in _containers(obj):
        command = container.get("command") or []
        joined = " ".join(str(c) for c in command)
        if "ln" in command and "-s" in command:
            return f"{prefix}.command"
        if "ln -s" in joined:
            return f"{prefix}.command"
    return None


def external_ips_trigger(obj: K8sObject) -> str | None:
    """CVE-2020-8554: Services with externalIPs can intercept traffic."""
    if obj.kind != "Service":
        return None
    if obj.get("spec.externalIPs"):
        return "spec.externalIPs"
    return None


# ---------------------------------------------------------------------------
# CVE entries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CVEEntry:
    """One vulnerability record from the official K8s CVE feed."""

    cve_id: str
    summary: str
    cvss: float
    component: str
    vulnerable_files: tuple[str, ...]
    fixed_in: str | None = None
    trigger: Trigger | None = None
    effect: str = ""

    @property
    def api_exploitable(self) -> bool:
        """True for CVEs exploitable through crafted API requests
        (the subset evaluated in Table II/III)."""
        return self.trigger is not None


def _build_cve_database() -> list[CVEEntry]:
    """The 49-CVE window (July 2016 - December 2023).

    The eight Table II CVEs carry executable triggers; the rest are
    metadata-only (component + vulnerable files), which is all the
    Fig. 5 coverage analysis needs.
    """
    e = CVEEntry
    cves = [
        # -- Table II: API-exploitable CVEs (E1-E8) -------------------------
        e(
            "CVE-2020-15257",
            "containerd-shim API exposed to host-network containers",
            5.2,
            "networking",
            ("pkg/kubelet/network/host_network.go", "vendor/containerd/shim/service.go"),
            fixed_in=None,
            trigger=pod_flag_trigger("hostNetwork"),
            effect="container escapes to host network namespace / containerd control",
        ),
        e(
            "CVE-2020-8554",
            "MITM via LoadBalancer or ExternalIPs",
            6.3,
            "networking",
            ("pkg/proxy/service.go", "pkg/apis/core/validation/validation_service.go"),
            fixed_in=None,
            trigger=external_ips_trigger,
            effect="traffic interception via external IPs",
        ),
        e(
            "CVE-2023-3676",
            "Command injection via insufficient subPath sanitization",
            8.8,
            "kubelet",
            ("pkg/kubelet/kubelet_pods.go", "pkg/volume/util/subpath/subpath.go"),
            fixed_in="1.28.1",
            trigger=subpath_injection_trigger,
            effect="arbitrary command execution on the node",
        ),
        e(
            "CVE-2017-1002101",
            "subPath volume mounts allow host filesystem access",
            8.8,
            "storage",
            ("pkg/volume/util/subpath/subpath_linux.go", "pkg/kubelet/volumemanager/volume_manager.go"),
            fixed_in="1.9.4",
            trigger=subpath_trigger,
            effect="read/write access to host filesystem",
        ),
        e(
            "CVE-2019-11253",
            "YAML parsing amplification (billion laughs) without limits",
            7.5,
            "apiserver",
            ("staging/src/k8s.io/apimachinery/pkg/util/yaml/yaml.go",),
            fixed_in="1.16.2",
            trigger=missing_limits_trigger,
            effect="API server resource-exhaustion DoS",
        ),
        e(
            "CVE-2021-25741",
            "Symlink exchange allows host filesystem access",
            8.1,
            "storage",
            ("pkg/volume/util/atomic_writer.go", "pkg/kubelet/kubelet_getters.go"),
            fixed_in="1.22.2",
            trigger=symlink_exchange_trigger,
            effect="host filesystem access via symlink race",
        ),
        e(
            "CVE-2023-2431",
            "Seccomp profile bypass via empty localhostProfile",
            5.0,
            "node",
            ("pkg/kubelet/kuberuntime/security_context.go", "pkg/securitycontext/util.go"),
            fixed_in="1.27.2",
            trigger=container_field_trigger(
                "securityContext.seccompProfile.localhostProfile", lambda v: True
            ),
            effect="pod runs unconfined, bypassing seccomp policy",
        ),
        e(
            "CVE-2021-21334",
            "containerd env-leak enables privileged container abuse",
            6.3,
            "node",
            ("vendor/containerd/oci/spec_opts.go", "pkg/kubelet/kuberuntime/kuberuntime_container.go"),
            fixed_in=None,
            trigger=container_field_trigger("securityContext.privileged", lambda v: v is True),
            effect="privileged container escapes isolation",
        ),
        # -- remaining CVEs in the July 2016 - Dec 2023 window --------------
        e("CVE-2016-1905", "Admission control bypass via patch", 7.7, "admission",
          ("plugin/pkg/admission/admit.go",), fixed_in="1.2.0"),
        e("CVE-2016-1906", "Unauthorized build-config access", 9.8, "apiserver",
          ("pkg/registry/rbac/validation/rule.go",), fixed_in="1.2.0"),
        e("CVE-2017-1000056", "PodSecurityPolicy admission bypass", 8.8, "admission",
          ("plugin/pkg/admission/security/podsecuritypolicy/admission.go",), fixed_in="1.5.5"),
        e("CVE-2017-1002102", "Malicious secret/configMap volume deletes host files", 6.5, "storage",
          ("pkg/volume/configmap/configmap.go", "pkg/volume/secret/secret.go"), fixed_in="1.9.4"),
        e("CVE-2018-1002100", "kubectl cp path traversal", 5.5, "kubectl",
          ("pkg/kubectl/cmd/cp/cp.go",), fixed_in="1.11.0"),
        e("CVE-2018-1002101", "Windows mount command injection", 8.8, "storage",
          ("pkg/util/mount/mount_windows.go",), fixed_in="1.13.1"),
        e("CVE-2018-1002105", "API server connection upgrade privilege escalation", 9.8, "apiserver",
          ("staging/src/k8s.io/apimachinery/pkg/util/proxy/upgradeaware.go",), fixed_in="1.13.0"),
        e("CVE-2019-1002100", "JSON-patch DoS on the API server", 6.5, "apiserver",
          ("staging/src/k8s.io/apiserver/pkg/endpoints/handlers/patch.go",), fixed_in="1.13.5"),
        e("CVE-2019-1002101", "kubectl cp symlink tar write", 5.5, "kubectl",
          ("pkg/kubectl/cmd/cp/cp.go",), fixed_in="1.14.0"),
        e("CVE-2019-11243", "Rest client leaks credentials in logs", 3.3, "security",
          ("staging/src/k8s.io/client-go/rest/config.go",), fixed_in="1.14.0"),
        e("CVE-2019-11244", "kubectl creates world-readable cache files", 3.3, "kubectl",
          ("staging/src/k8s.io/client-go/discovery/cached/disk/cached_discovery.go",), fixed_in="1.14.0"),
        e("CVE-2019-11245", "Container uid 0 despite runAsNonRoot on restart", 4.9, "kubelet",
          ("pkg/kubelet/kuberuntime/kuberuntime_container.go",), fixed_in="1.14.3"),
        e("CVE-2019-11246", "kubectl cp symlink directory traversal", 6.5, "kubectl",
          ("pkg/kubectl/cmd/cp/cp.go",), fixed_in="1.14.2"),
        e("CVE-2019-11247", "Cluster-scoped CRD access via namespaced RBAC", 8.1, "apiserver",
          ("staging/src/k8s.io/apiserver/pkg/endpoints/installer.go",), fixed_in="1.14.5"),
        e("CVE-2019-11248", "Debug endpoint /debug/pprof exposed on kubelet", 8.2, "kubelet",
          ("pkg/kubelet/server/server.go",), fixed_in="1.14.4"),
        e("CVE-2019-11249", "kubectl cp incomplete fix directory traversal", 6.5, "kubectl",
          ("pkg/kubectl/cmd/cp/cp.go",), fixed_in="1.14.5"),
        e("CVE-2019-11250", "Bearer tokens written to logs at high verbosity", 6.5, "security",
          ("staging/src/k8s.io/client-go/transport/round_trippers.go",), fixed_in="1.16.0"),
        e("CVE-2019-11251", "kubectl cp symlink again (third fix)", 5.7, "kubectl",
          ("pkg/kubectl/cmd/cp/cp.go",), fixed_in="1.15.4"),
        e("CVE-2019-11254", "YAML parsing CPU DoS in kube-apiserver", 6.5, "apiserver",
          ("staging/src/k8s.io/apimachinery/pkg/util/yaml/yaml.go",), fixed_in="1.16.8"),
        e("CVE-2019-11255", "CSI volume snapshot data leak", 6.5, "storage",
          ("pkg/volume/csi/csi_client.go",), fixed_in="1.16.4"),
        e("CVE-2020-8551", "Kubelet DoS via crafted requests", 6.5, "kubelet",
          ("pkg/kubelet/server/server.go",), fixed_in="1.17.3"),
        e("CVE-2020-8552", "API server memory exhaustion via errors", 5.3, "apiserver",
          ("staging/src/k8s.io/apiserver/pkg/server/filters/maxinflight.go",), fixed_in="1.17.3"),
        e("CVE-2020-8555", "SSRF via StorageClass and volume drivers", 6.3, "cloud-provider",
          ("pkg/cloudprovider/providers/gce/gce.go", "pkg/volume/glusterfs/glusterfs.go"), fixed_in="1.18.1"),
        e("CVE-2020-8557", "Pod DoS via /etc/hosts file growth", 5.5, "kubelet",
          ("pkg/kubelet/kubelet_pods.go",), fixed_in="1.18.6"),
        e("CVE-2020-8558", "Node-local services reachable from adjacent hosts", 8.8, "networking",
          ("pkg/proxy/iptables/proxier.go",), fixed_in="1.18.4"),
        e("CVE-2020-8559", "Privilege escalation via compromised node redirects", 6.4, "apiserver",
          ("staging/src/k8s.io/apimachinery/pkg/util/proxy/upgradeaware.go",), fixed_in="1.18.6"),
        e("CVE-2020-8561", "Webhook redirect log injection", 4.1, "admission",
          ("staging/src/k8s.io/apiserver/pkg/util/webhook/webhook.go",), fixed_in=None),
        e("CVE-2020-8562", "TOCTOU bypass of proxy IP restrictions", 3.1, "apiserver",
          ("staging/src/k8s.io/apiserver/pkg/util/proxy/dial.go",), fixed_in="1.21.1"),
        e("CVE-2020-8563", "Secrets leaked in vSphere cloud-provider logs", 5.5, "cloud-provider",
          ("legacy-cloud-providers/vsphere/vsphere.go",), fixed_in="1.19.3"),
        e("CVE-2020-8564", "Docker config secrets leaked in logs", 5.5, "security",
          ("pkg/credentialprovider/config.go",), fixed_in="1.20.0"),
        e("CVE-2020-8565", "Tokens leaked at high log verbosity (incomplete fix)", 5.5, "security",
          ("staging/src/k8s.io/client-go/transport/round_trippers.go",), fixed_in="1.20.0"),
        e("CVE-2021-25735", "Node update bypass of validating webhook", 6.5, "admission",
          ("plugin/pkg/admission/noderestriction/admission.go",), fixed_in="1.20.6"),
        e("CVE-2021-25737", "EndpointSlice IP range bypass", 2.7, "networking",
          ("pkg/apis/discovery/validation/validation.go",), fixed_in="1.21.1"),
        e("CVE-2021-25740", "Endpoint slice cross-namespace forwarding", 3.1, "networking",
          ("pkg/apis/core/validation/validation_endpoints.go",), fixed_in=None),
        e("CVE-2022-3162", "CRD wildcard list allows cluster-scope reads", 6.5, "apiserver",
          ("staging/src/k8s.io/apiserver/pkg/endpoints/handlers/get.go",), fixed_in="1.25.4"),
        e("CVE-2022-3172", "API server aggregation SSRF", 5.1, "apiserver",
          ("staging/src/k8s.io/apiserver/pkg/util/proxy/dial.go",), fixed_in="1.25.1"),
        e("CVE-2022-3294", "Node address validation bypass in kubelet proxy", 8.8, "apiserver",
          ("pkg/registry/core/node/strategy.go",), fixed_in="1.25.4"),
        e("CVE-2023-2727", "ImagePolicyWebhook bypass via ephemeral containers", 6.5, "admission",
          ("plugin/pkg/admission/imagepolicy/admission.go",), fixed_in="1.27.3"),
        e("CVE-2023-2728", "ServiceAccount admission bypass via ephemeral containers", 6.5, "admission",
          ("plugin/pkg/admission/serviceaccount/admission.go",), fixed_in="1.27.3"),
        e("CVE-2023-3955", "Windows node command injection (nodes params)", 8.8, "kubelet",
          ("pkg/kubelet/kubelet_node_status_windows.go",), fixed_in="1.28.1"),
        e("CVE-2023-5528", "Windows in-tree storage privilege escalation", 7.2, "storage",
          ("pkg/volume/local/local_windows.go",), fixed_in="1.28.4"),
    ]
    return cves


class VulnerabilityDatabase:
    """Query interface over the CVE records."""

    def __init__(self, entries: list[CVEEntry] | None = None) -> None:
        self._entries = entries if entries is not None else _build_cve_database()
        self._by_id = {e.cve_id: e for e in self._entries}

    def __iter__(self) -> Iterator[CVEEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, cve_id: str) -> CVEEntry:
        try:
            return self._by_id[cve_id]
        except KeyError:
            raise KeyError(f"unknown CVE: {cve_id}") from None

    def __contains__(self, cve_id: str) -> bool:
        return cve_id in self._by_id

    def api_exploitable(self) -> list[CVEEntry]:
        return [e for e in self._entries if e.api_exploitable]

    def by_component(self, component: str) -> list[CVEEntry]:
        return [e for e in self._entries if e.component == component]

    def components(self) -> list[str]:
        return sorted({e.component for e in self._entries})

    def vulnerable_files(self) -> dict[str, list[str]]:
        """file -> [cve_id] mapping used by the coverage analysis."""
        mapping: dict[str, list[str]] = {}
        for entry in self._entries:
            for f in entry.vulnerable_files:
                mapping.setdefault(f, []).append(entry.cve_id)
        return mapping


#: Singleton database.
vulndb = VulnerabilityDatabase()


# ---------------------------------------------------------------------------
# Exploit engine (admission observer)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExploitEvent:
    """A vulnerability fired: a triggering manifest reached the server."""

    cve_id: str
    kind: str
    namespace: str
    name: str
    field: str
    effect: str
    username: str


class ExploitEngine:
    """Observes admitted objects and records CVE triggers.

    With ``assume_vulnerable=True`` (the Table III configuration) the
    cluster is treated as affected by every catalog CVE regardless of
    its version, because the paper's attack catalog spans CVEs fixed in
    different releases.  With ``assume_vulnerable=False`` only CVEs
    whose fix postdates the cluster version fire.
    """

    def __init__(
        self,
        db: VulnerabilityDatabase | None = None,
        cluster_version: str = "1.28.6",
        assume_vulnerable: bool = True,
    ) -> None:
        self.db = db if db is not None else vulndb
        self.cluster_version = cluster_version
        self.assume_vulnerable = assume_vulnerable
        self.events: list[ExploitEvent] = []

    def __call__(self, request: ApiRequest, obj: K8sObject) -> None:
        """Admission-plugin entry point (observer; never denies)."""
        for entry in self.db.api_exploitable():
            if not self.assume_vulnerable and not version_in_range(
                self.cluster_version, entry.fixed_in
            ):
                continue
            assert entry.trigger is not None
            offending = entry.trigger(obj)
            if offending is not None:
                self.events.append(
                    ExploitEvent(
                        cve_id=entry.cve_id,
                        kind=obj.kind,
                        namespace=obj.namespace,
                        name=obj.name,
                        field=offending,
                        effect=entry.effect,
                        username=request.user.username,
                    )
                )

    def triggered_cves(self) -> set[str]:
        return {e.cve_id for e in self.events}

    def clear(self) -> None:
        self.events.clear()
