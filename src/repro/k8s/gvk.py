"""Group/version/kind registry of Kubernetes resource types.

The registry mirrors the discovery information a real API server
publishes: for each resource type, its API group, version, kind name,
plural resource name, whether it is namespaced, and which HTTP verbs it
supports.  Both the API server's request router and the attack-surface
analysis iterate over this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GVK:
    """A group/version/kind triple, e.g. ``apps/v1 Deployment``."""

    group: str
    version: str
    kind: str

    @property
    def api_version(self) -> str:
        """The ``apiVersion`` string as it appears in manifests."""
        if self.group == "":
            return self.version
        return f"{self.group}/{self.version}"

    def __str__(self) -> str:
        return f"{self.api_version}/{self.kind}"


_DEFAULT_VERBS = ("get", "list", "create", "update", "patch", "delete", "watch")


@dataclass(frozen=True)
class ResourceType:
    """Discovery record for one resource type."""

    gvk: GVK
    plural: str
    namespaced: bool = True
    verbs: tuple[str, ...] = _DEFAULT_VERBS
    # Kinds that embed a PodSpec (workload kinds); used by the attack
    # catalog to decide where pod-level malicious fields can be injected.
    pod_spec_path: str | None = None

    @property
    def kind(self) -> str:
        return self.gvk.kind

    def url_path(self, namespace: str | None = None, name: str | None = None) -> str:
        """The REST path for this resource, mirroring real K8s routing."""
        if self.gvk.group == "":
            base = f"/api/{self.gvk.version}"
        else:
            base = f"/apis/{self.gvk.group}/{self.gvk.version}"
        if self.namespaced and namespace:
            base += f"/namespaces/{namespace}"
        base += f"/{self.plural}"
        if name:
            base += f"/{name}"
        return base


class ResourceRegistry:
    """All resource types known to the mini API server."""

    def __init__(self) -> None:
        self._by_kind: dict[str, ResourceType] = {}
        self._by_plural: dict[str, ResourceType] = {}

    def register(self, rt: ResourceType) -> ResourceType:
        if rt.kind in self._by_kind:
            raise ValueError(f"kind {rt.kind} already registered")
        self._by_kind[rt.kind] = rt
        self._by_plural[rt.plural] = rt
        return rt

    def by_kind(self, kind: str) -> ResourceType:
        try:
            return self._by_kind[kind]
        except KeyError:
            raise KeyError(f"unknown resource kind: {kind!r}") from None

    def by_plural(self, plural: str) -> ResourceType:
        try:
            return self._by_plural[plural]
        except KeyError:
            raise KeyError(f"unknown resource plural: {plural!r}") from None

    def __contains__(self, kind: str) -> bool:
        return kind in self._by_kind

    def __iter__(self):
        return iter(self._by_kind.values())

    def __len__(self) -> int:
        return len(self._by_kind)

    def kinds(self) -> list[str]:
        return sorted(self._by_kind)

    def workload_kinds(self) -> list[str]:
        """Kinds that embed a PodSpec (Pod, Deployment, ...)."""
        return sorted(k for k, rt in self._by_kind.items() if rt.pod_spec_path is not None)


def _build_default_registry() -> ResourceRegistry:
    reg = ResourceRegistry()
    core = lambda kind, plural, **kw: reg.register(  # noqa: E731
        ResourceType(GVK("", "v1", kind), plural, **kw)
    )
    apps = lambda kind, plural, **kw: reg.register(  # noqa: E731
        ResourceType(GVK("apps", "v1", kind), plural, **kw)
    )

    core("Pod", "pods", pod_spec_path="spec")
    core("Service", "services")
    core("ConfigMap", "configmaps")
    core("Secret", "secrets")
    core("ServiceAccount", "serviceaccounts")
    core("PersistentVolumeClaim", "persistentvolumeclaims")
    core("PersistentVolume", "persistentvolumes", namespaced=False)
    core("Namespace", "namespaces", namespaced=False)
    core("Endpoints", "endpoints")
    core("LimitRange", "limitranges")
    core("ResourceQuota", "resourcequotas")

    apps("Deployment", "deployments", pod_spec_path="spec.template.spec")
    apps("ReplicaSet", "replicasets", pod_spec_path="spec.template.spec")
    apps("StatefulSet", "statefulsets", pod_spec_path="spec.template.spec")
    apps("DaemonSet", "daemonsets", pod_spec_path="spec.template.spec")

    reg.register(
        ResourceType(
            GVK("batch", "v1", "Job"), "jobs", pod_spec_path="spec.template.spec"
        )
    )
    reg.register(
        ResourceType(
            GVK("batch", "v1", "CronJob"),
            "cronjobs",
            pod_spec_path="spec.jobTemplate.spec.template.spec",
        )
    )
    reg.register(ResourceType(GVK("networking.k8s.io", "v1", "Ingress"), "ingresses"))
    reg.register(
        ResourceType(GVK("networking.k8s.io", "v1", "NetworkPolicy"), "networkpolicies")
    )
    reg.register(
        ResourceType(
            GVK("autoscaling", "v2", "HorizontalPodAutoscaler"),
            "horizontalpodautoscalers",
        )
    )
    reg.register(
        ResourceType(GVK("policy", "v1", "PodDisruptionBudget"), "poddisruptionbudgets")
    )
    rbac_group = "rbac.authorization.k8s.io"
    reg.register(ResourceType(GVK(rbac_group, "v1", "Role"), "roles"))
    reg.register(ResourceType(GVK(rbac_group, "v1", "RoleBinding"), "rolebindings"))
    reg.register(
        ResourceType(GVK(rbac_group, "v1", "ClusterRole"), "clusterroles", namespaced=False)
    )
    reg.register(
        ResourceType(
            GVK(rbac_group, "v1", "ClusterRoleBinding"),
            "clusterrolebindings",
            namespaced=False,
        )
    )
    return reg


#: The default registry used by the whole project.
registry = _build_default_registry()
