"""Real-HTTP transport for the mini API server (stdlib only).

The paper deploys mitmproxy between real HTTP clients and the K8s API
server.  For the overhead experiment we support the same topology: the
API server (and the KubeFence proxy) can be exposed over genuine TCP
sockets so round-trip-time measurements include real network and
serialization costs.

The wire protocol mirrors Kubernetes REST conventions:

- ``POST   /api/v1/namespaces/{ns}/pods``          -> create
- ``GET    /apis/apps/v1/namespaces/{ns}/deployments[/name]`` -> list/get
- ``PUT    .../{name}``                            -> update
- ``DELETE .../{name}``                            -> delete

Bodies are JSON; failures return Kubernetes ``Status`` objects.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer, ThreadingHTTPServer
from typing import Any, Callable
from urllib import request as urllib_request
from urllib.error import HTTPError

from repro.core.shards import shards_enabled
from repro.k8s.apiserver import APIServer, ApiRequest, ApiResponse, User
from repro.k8s.errors import ApiError
from repro.k8s.gvk import ResourceRegistry, registry as default_registry
from repro.k8s.wal import crashpoint
from repro.obs import PROFILER, TimeSeriesRing, obs_endpoint, trace

#: Worker threads in the bounded frontend pool.  A worker serves one
#: TCP connection at a time (HTTP/1.1 keep-alive loops inside
#: finish_request), so the pool bounds *concurrent connections*, not
#: in-flight requests; size it above the expected client fan-in.
HTTP_WORKERS_ENV = "REPRO_HTTP_WORKERS"
DEFAULT_HTTP_WORKERS = 32

#: Accepted connections parked while every worker is busy.  Beyond
#: this, new connections get an immediate 503 instead of silently
#: growing an unbounded queue (accept-queue backpressure).
HTTP_QUEUE_ENV = "REPRO_HTTP_QUEUE"
DEFAULT_HTTP_QUEUE = 64

#: Explicit listen(2) backlog for every frontend (kernel-side accept
#: queue, distinct from the worker pool's).
LISTEN_BACKLOG = 128


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        value = int(raw) if raw else default
    except ValueError:
        return default
    return value if value > 0 else default


def parse_rest_path(path: str, reg: ResourceRegistry) -> tuple[str, str | None, str | None]:
    """Parse a Kubernetes REST path into (kind, namespace, name).

    Raises :class:`ValueError` for unroutable paths.
    """
    parts = [p for p in path.split("/") if p]
    # /api/v1/... or /apis/{group}/{version}/...
    if not parts or parts[0] not in ("api", "apis"):
        raise ValueError(f"unroutable path: {path!r}")
    idx = 2 if parts[0] == "api" else 3
    rest = parts[idx:]
    namespace: str | None = None
    if len(rest) >= 2 and rest[0] == "namespaces":
        namespace = rest[1]
        rest = rest[2:]
    if not rest:
        raise ValueError(f"no resource in path: {path!r}")
    plural = rest[0]
    name = rest[1] if len(rest) > 1 else None
    kind = reg.by_plural(plural).kind
    return kind, namespace, name


_METHOD_VERBS = {"POST": "create", "PUT": "update", "PATCH": "patch", "DELETE": "delete"}


class _QuietErrorsMixin:
    """Swallow connection-level failures instead of spraying
    tracebacks.

    Clients that time out and hang up mid-reply (the KubeFence proxy
    under a tight deadline, chaos clients, load balancers) produce
    ``BrokenPipeError``/``ConnectionResetError`` in the worker thread;
    injected faults (:mod:`repro.faults`) abort connections on
    purpose.  Those are routine under load and are swallowed here --
    genuine handler bugs still get the default traceback.
    """

    def handle_error(self, request: Any, client_address: Any) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError, BrokenPipeError)):
            return
        if isinstance(exc, OSError) and exc.errno in (9, 32, 104):  # EBADF/EPIPE/ECONNRESET
            return
        super().handle_error(request, client_address)  # type: ignore[misc]


class QuietThreadingHTTPServer(_QuietErrorsMixin, ThreadingHTTPServer):
    """The legacy unbounded thread-per-connection frontend (one daemon
    thread per accepted socket), kept as the ``REPRO_NO_SHARDS=1``
    arm and for fault-injection topologies."""

    #: Workers must not block interpreter shutdown.
    daemon_threads = True
    #: Explicit lifecycle knobs: rebind a just-closed port immediately
    #: (start/stop cycles in tests) and a deterministic accept backlog.
    allow_reuse_address = True
    request_queue_size = LISTEN_BACKLOG


#: Raw saturation reply, prebuilt: sent on the accept path without a
#: handler (there is no worker to run one).  ``Connection: close`` so
#: keep-alive clients do not retry on the dead socket.
_SATURATED_BODY = (
    b'{"kind":"Status","apiVersion":"v1","status":"Failure",'
    b'"message":"server saturated: worker pool and accept queue full",'
    b'"reason":"ServerSaturated","code":503}'
)
_SATURATED_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_SATURATED_BODY)).encode() + b"\r\n"
    b"Connection: close\r\n"
    b"\r\n" + _SATURATED_BODY
)


class WorkerPoolHTTPServer(_QuietErrorsMixin, HTTPServer):
    """Bounded worker-pool frontend (the sharded data plane's default).

    ``ThreadingHTTPServer`` spawns one thread per connection with no
    ceiling: under saturation the thread count, memory, and scheduler
    load grow with offered load and latency collapses.  This frontend
    accepts on one thread and hands sockets to a **fixed pool**:

    - ``workers`` threads (``REPRO_HTTP_WORKERS``, default 32) each
      serve one connection to completion, keep-alive included;
    - a bounded hand-off queue (``REPRO_HTTP_QUEUE``, default 64)
      absorbs bursts;
    - when the queue is full the connection is answered immediately
      with a prebuilt ``503 ServerSaturated`` and closed -- explicit
      backpressure instead of silent queue growth
      (:attr:`saturation_rejects` counts these).
    """

    allow_reuse_address = True
    request_queue_size = LISTEN_BACKLOG

    def __init__(
        self,
        server_address: tuple[str, int],
        RequestHandlerClass: Any,
        workers: int | None = None,
        queue_size: int | None = None,
    ):
        super().__init__(server_address, RequestHandlerClass)
        self.workers = workers or _env_int(HTTP_WORKERS_ENV, DEFAULT_HTTP_WORKERS)
        self._queue: "queue.Queue[tuple[Any, Any] | None]" = queue.Queue(
            maxsize=queue_size or _env_int(HTTP_QUEUE_ENV, DEFAULT_HTTP_QUEUE)
        )
        self._threads: list[threading.Thread] = []
        self._pool_lock = threading.Lock()
        #: Connections refused with the prebuilt 503.
        self.saturation_rejects = 0

    def _ensure_pool(self) -> None:
        if self._threads:
            return
        with self._pool_lock:
            if self._threads:
                return
            threads = []
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker,
                    name=f"http-pool-{self.server_address[1]}-{index}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            self._threads = threads

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            request, client_address = item
            try:
                self.finish_request(request, client_address)
            except Exception:  # noqa: BLE001 - mirror ThreadingMixIn
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)

    def process_request(self, request: Any, client_address: Any) -> None:
        """Accept-path hand-off: enqueue or reject, never block."""
        self._ensure_pool()
        try:
            self._queue.put_nowait((request, client_address))
        except queue.Full:
            self.saturation_rejects += 1
            try:
                request.sendall(_SATURATED_RESPONSE)
            except OSError:
                pass
            self.shutdown_request(request)

    def server_close(self) -> None:
        super().server_close()
        with self._pool_lock:
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout=5)


def new_http_server(
    address: tuple[str, int],
    handler: Any,
    workers: int | None = None,
    queue_size: int | None = None,
) -> "WorkerPoolHTTPServer | QuietThreadingHTTPServer":
    """The HTTP frontend for one server: the bounded worker pool on
    the sharded data plane, thread-per-connection under
    ``REPRO_NO_SHARDS=1`` (chosen at bind time, like the decision
    cache)."""
    if not shards_enabled():
        return QuietThreadingHTTPServer(address, handler)
    return WorkerPoolHTTPServer(address, handler, workers=workers, queue_size=queue_size)


class _Handler(BaseHTTPRequestHandler):
    server_version = "MiniKubeApiServer/1.0"
    #: HTTP/1.1 so pooled clients (notably the KubeFence proxy's
    #: keep-alive upstream connections) can reuse the TCP socket; every
    #: response path sends an explicit Content-Length.
    protocol_version = "HTTP/1.1"
    api: APIServer  # injected by serve()
    #: Optional :class:`repro.obs.analytics.slo.SloEngine` served at
    #: ``/obs/slo``; injected by :class:`HttpApiServer` when wired.
    slo: Any = None
    #: Optional :class:`repro.obs.refine.RefineController` served at
    #: ``/obs/refine``; injected by :class:`HttpApiServer` when wired.
    refine: Any = None
    #: Optional :class:`repro.scan.CVEScanner` served at ``/obs/scan``;
    #: injected by :class:`HttpApiServer` when wired.
    scanner: Any = None
    #: Optional :class:`repro.faults.FaultInjector` applied at the wire
    #: level (after the body drain, before routing).  ``None`` in the
    #: normal, fault-free topology.
    faults: Any = None
    #: Optional :class:`repro.obs.TimeSeriesRing` served at
    #: ``/obs/timeseries``; injected by :class:`HttpApiServer`.
    timeseries: Any = None

    # Silence the default stderr request logging; access logs are not
    # discarded, though -- log_request() routes them into the metrics
    # registry as http_requests_total{method,code}.
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
        pass

    def log_request(self, code: Any = "-", size: Any = "-") -> None:
        self.api.count_http_request(getattr(self, "command", "?") or "?", code)

    def _user(self) -> User:
        username = self.headers.get("X-Remote-User", "kubernetes-admin")
        groups = tuple(
            g for g in self.headers.get("X-Remote-Groups", "system:masters").split(",") if g
        )
        return User(username, groups + ("system:authenticated",))

    def _respond(self, response: ApiResponse) -> None:
        phases = self.api.phases
        started = time.perf_counter_ns() if phases.enabled else 0
        payload = json.dumps(response.body if response.body is not None else {}).encode()
        self.send_response(response.code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        if started:
            phases.serialization(time.perf_counter_ns() - started)

    def _serve_obs(self, head: bool = False) -> bool:
        """Observability surfaces: /metrics, /healthz, /readyz,
        /obs/traces (served before REST routing)."""
        bus = getattr(self.api, "event_bus", None)
        served = obs_endpoint(
            self.path,
            self.api.metrics,
            component="mini-apiserver",
            ready_checks={"store": lambda: self.api.store is not None},
            event_bus=bus if (bus is not None and bus.enabled) else None,
            slo=self.slo,
            refine=self.refine,
            scanner=self.scanner,
            profiler=PROFILER,
            timeseries=self.timeseries,
            accept=self.headers.get("Accept", ""),
        )
        if served is None:
            return False
        status, content_type, body = served
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if not head:
            self.wfile.write(body)
        return True

    def _handle(self, method: str) -> None:
        # Wall-clock denominator for the phase breakdown
        # (kubefence_request_wall_ns_total): stamped here, at HTTP
        # ingress, so the serialization shares recorded below are
        # inside the total.
        phases = self.api.phases
        if not phases.enabled:
            self._handle_timed(method)
            return
        wall_started = time.perf_counter_ns()
        self._handle_timed(method)
        phases.wall(time.perf_counter_ns() - wall_started)

    def _handle_timed(self, method: str) -> None:
        # Drain the request body before any early reply: with HTTP/1.1
        # keep-alive, unread body bytes would corrupt the next request
        # on the same connection.  The drain is wire deserialization --
        # it counts toward the serialization phase share.
        phases = self.api.phases
        attributed = phases.enabled
        drain_started = time.perf_counter_ns() if attributed else 0
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        # `mark` threads through the method: everything between the
        # stamped regions (fault checks, REST-path routing, ApiRequest
        # construction with identity extraction) is attributed to authn
        # so the coverage denominator holds >=90% on validated writes.
        mark = time.perf_counter_ns() if attributed else 0
        if attributed and raw:
            phases.serialization(mark - drain_started)

        # Wire-level chaos: the injector may 5xx, stall, truncate, or
        # RST this request.  It runs after the body drain (keep-alive
        # hygiene) and never touches the observability surfaces, so
        # /metrics stays scrapeable mid-scenario.
        faults = self.faults
        if faults is not None and faults.apply_http(self):
            return

        try:
            kind, namespace, name = parse_rest_path(self.path, self.api.registry)
        except (ValueError, KeyError) as exc:
            payload = json.dumps(
                {"kind": "Status", "status": "Failure", "message": str(exc), "code": 404}
            ).encode()
            self.send_response(404)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return

        body: dict | None = None
        if raw:
            parse_started = time.perf_counter_ns() if attributed else 0
            if attributed:
                phases.authn(parse_started - mark)
            try:
                body = json.loads(raw)
            except (ValueError, RecursionError):
                self._respond(
                    ApiResponse.from_error(
                        ApiError.bad_request("request body is not valid JSON")
                    )
                )
                return
            if parse_started:
                mark = time.perf_counter_ns()
                phases.serialization(mark - parse_started)

        if method == "GET":
            verb = "get" if name else "list"
        else:
            verb = _METHOD_VERBS[method]
        request = ApiRequest(
            verb=verb,
            kind=kind,
            user=self._user(),
            namespace=namespace or "default",
            name=name,
            body=body,
            source_ip=self.client_address[0],
        )
        if attributed:
            now = time.perf_counter_ns()
            phases.authn(now - mark)
            mark = now
        # Join the caller's trace when the KubeFence proxy forwarded an
        # X-Trace-Id, so the audit event correlates with the proxy-side
        # trace; otherwise open a fresh server-side trace.
        incoming = self.headers.get("X-Trace-Id") or None
        with trace("apiserver.request", trace_id=incoming):
            response = self.api.handle(request)
        if attributed:
            # Everything in this bracket outside handle()'s own span is
            # tracer bookkeeping (trace open, span record under the
            # buffer lock) -- telemetry, and the largest unstamped gap
            # on the server path when a scrape holds that lock.
            phases.telemetry(
                time.perf_counter_ns() - mark
                - getattr(response, "handle_ns", 0)
            )
        self._respond(response)
        # Commit point 3: the response bytes for a successful write are
        # on the socket (wfile is unbuffered) — the client will observe
        # this write as acknowledged.  No-op outside the chaos child.
        if response.ok and verb in ("create", "update", "patch", "delete"):
            crashpoint("post-ack")

    def do_GET(self) -> None:
        if self._serve_obs():
            return
        self._handle("GET")

    def do_HEAD(self) -> None:
        # HEAD on the observability surfaces: full headers (correct
        # Content-Length), no body.  REST paths answer 405 -- the mini
        # API has no HEAD semantics.
        if self._serve_obs(head=True):
            return
        self.send_response(405)
        self.send_header("Allow", "GET, POST, PUT, PATCH, DELETE")
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_POST(self) -> None:
        self._handle("POST")

    def do_PUT(self) -> None:
        self._handle("PUT")

    def do_PATCH(self) -> None:
        self._handle("PATCH")

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class HttpApiServer:
    """Serve an :class:`APIServer` over a real TCP socket."""

    def __init__(self, api: APIServer, host: str = "127.0.0.1", port: int = 0,
                 fault_injector: Any | None = None, slo: Any | None = None,
                 refine: Any | None = None, scanner: Any | None = None,
                 workers: int | None = None, queue_size: int | None = None):
        #: in-process metrics ring (served at /obs/timeseries, the
        #: ``repro top`` data source); ticking starts with the server.
        self.timeseries = TimeSeriesRing(api.metrics)
        handler = type(
            "BoundHandler", (_Handler,),
            {"api": api, "faults": fault_injector, "slo": slo,
             "refine": refine, "scanner": scanner,
             "timeseries": self.timeseries},
        )
        self._httpd = new_http_server(
            (host, port), handler, workers=workers, queue_size=queue_size
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "HttpApiServer":
        # Refcounted: the profiler thread is shared process-wide and
        # stops with the last component that acquired it.
        PROFILER.acquire()
        self.timeseries.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                raise RuntimeError(
                    "HttpApiServer serve thread failed to stop within 5s"
                )
            self._thread = None
            self.timeseries.stop()
            PROFILER.release()

    def __enter__(self) -> "HttpApiServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class HttpClient:
    """A minimal kubectl-like HTTP client for the mini API."""

    def __init__(self, base_url: str, username: str = "kubernetes-admin",
                 groups: tuple[str, ...] = ("system:masters",),
                 reg: ResourceRegistry | None = None):
        self.base_url = base_url.rstrip("/")
        self.username = username
        self.groups = groups
        self.registry = reg if reg is not None else default_registry

    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, Any]:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib_request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={
                "Content-Type": "application/json",
                "X-Remote-User": self.username,
                "X-Remote-Groups": ",".join(self.groups),
            },
        )
        try:
            with urllib_request.urlopen(req) as resp:
                return resp.status, json.loads(resp.read() or b"{}")
        except HTTPError as err:
            return err.code, json.loads(err.read() or b"{}")

    def create(self, manifest: dict) -> tuple[int, Any]:
        kind = manifest.get("kind", "")
        rt = self.registry.by_kind(kind)
        ns = manifest.get("metadata", {}).get("namespace", "default")
        return self._request("POST", rt.url_path(ns if rt.namespaced else None), manifest)

    def apply(self, manifest: dict) -> tuple[int, Any]:
        """create-or-update, like ``kubectl apply``."""
        kind = manifest.get("kind", "")
        rt = self.registry.by_kind(kind)
        meta = manifest.get("metadata", {})
        ns = meta.get("namespace", "default")
        name = meta.get("name", "")
        status, body = self._request(
            "GET", rt.url_path(ns if rt.namespaced else None, name)
        )
        if status == 200:
            return self._request(
                "PUT", rt.url_path(ns if rt.namespaced else None, name), manifest
            )
        return self._request(
            "POST", rt.url_path(ns if rt.namespaced else None), manifest
        )

    def get(self, kind: str, name: str, namespace: str = "default") -> tuple[int, Any]:
        rt = self.registry.by_kind(kind)
        return self._request("GET", rt.url_path(namespace if rt.namespaced else None, name))

    def delete(self, kind: str, name: str, namespace: str = "default") -> tuple[int, Any]:
        rt = self.registry.by_kind(kind)
        return self._request(
            "DELETE", rt.url_path(namespace if rt.namespaced else None, name)
        )
