"""Kubernetes RBAC: model, authorizer, and audit2rbac inference.

This is the baseline enforcement mechanism the paper compares
KubeFence against:

- :mod:`repro.rbac.model` -- Role/ClusterRole/RoleBinding/
  ClusterRoleBinding objects and rule matching.
- :mod:`repro.rbac.authorizer` -- the request authorizer plugged into
  the API server.
- :mod:`repro.rbac.audit2rbac` -- infers the minimal RBAC policy for a
  workload from audit logs (the paper's ``audit2rbac`` baseline setup).
"""

from repro.rbac.audit2rbac import infer_policy
from repro.rbac.authorizer import RBACAuthorizer
from repro.rbac.model import PolicyRule, RBACPolicy, Role, RoleBinding

__all__ = [
    "PolicyRule",
    "RBACPolicy",
    "RBACAuthorizer",
    "Role",
    "RoleBinding",
    "infer_policy",
]
