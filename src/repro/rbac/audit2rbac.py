"""audit2rbac: infer a least-privilege RBAC policy from audit logs.

The paper's RBAC baseline is produced with Liggitt's ``audit2rbac``
tool: run the workload attack-free with audit logging on, then distil
the minimum permissions that cover the observed API interactions
(Fig. 11).  This module reimplements that inference:

- successful requests are grouped by (user, namespace, apiGroup,
  resource);
- per group, the observed verbs are unioned and the observed resource
  names collected;
- ``create`` cannot be name-scoped in RBAC (the name does not exist
  yet), so any group containing ``create`` drops resourceNames --
  matching audit2rbac's behaviour.

Crucially, the inferred rules carry *no specification fields*: the
audit entries contain the full requestObject, but the RBAC model has
nowhere to put it.  That information loss is the paper's central
observation about RBAC granularity.
"""

from __future__ import annotations

from repro.k8s.audit import AuditLog
from repro.rbac.model import PolicyRule, RBACPolicy

#: Verbs whose targets cannot be restricted by resourceName in RBAC.
_UNNAMED_VERBS = frozenset({"create", "list", "watch"})


def infer_policy(audit_log: AuditLog, username: str) -> RBACPolicy:
    """Infer the minimal RBAC policy covering *username*'s successful,
    attack-free API interactions recorded in *audit_log*."""
    # (namespace, api_group, resource) -> (verbs, names, saw_unnamed_verb)
    groups: dict[tuple[str | None, str, str], tuple[set[str], set[str], bool]] = {}
    for event in audit_log.successful():
        if event.username != username or not event.resource:
            continue
        key = (event.namespace, event.api_group, event.resource)
        verbs, names, unnamed = groups.get(key, (set(), set(), False))
        verbs.add(event.verb)
        if event.name:
            names.add(event.name)
        unnamed = unnamed or event.verb in _UNNAMED_VERBS
        groups[key] = (verbs, names, unnamed)

    policy = RBACPolicy()
    for idx, ((namespace, api_group, resource), (verbs, names, unnamed)) in enumerate(
        sorted(groups.items(), key=lambda kv: (str(kv[0][0]), kv[0][1], kv[0][2]))
    ):
        rule = PolicyRule(
            api_groups=(api_group,),
            resources=(resource,),
            verbs=tuple(sorted(verbs)),
            resource_names=() if unnamed else tuple(sorted(names)),
        )
        policy.grant(
            username,
            rule,
            namespace=namespace,
            role_name=f"audit2rbac-{username}-{idx}",
        )
    return policy
