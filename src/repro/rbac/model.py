"""The RBAC object model: roles, bindings, and rule matching.

Mirrors ``rbac.authorization.k8s.io/v1``: a :class:`Role` carries
:class:`PolicyRule` entries (apiGroups x resources x verbs, optionally
restricted to resourceNames); a :class:`RoleBinding` grants a role to
subjects.  :class:`RBACPolicy` bundles roles and bindings for one
workload and can serialise to/from manifests, so policies produced by
``audit2rbac`` can be applied to the cluster like any other object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class PolicyRule:
    """One RBAC rule.  ``"*"`` is the wildcard everywhere."""

    api_groups: tuple[str, ...]
    resources: tuple[str, ...]
    verbs: tuple[str, ...]
    resource_names: tuple[str, ...] = ()

    def matches(self, api_group: str, resource: str, verb: str, name: str | None = None) -> bool:
        if not self._match(self.api_groups, api_group):
            return False
        if not self._match(self.resources, resource):
            return False
        if not self._match(self.verbs, verb):
            return False
        if self.resource_names and name is not None:
            return name in self.resource_names
        return True

    @staticmethod
    def _match(allowed: tuple[str, ...], value: str) -> bool:
        return "*" in allowed or value in allowed

    def to_dict(self) -> dict[str, Any]:
        rule: dict[str, Any] = {
            "apiGroups": list(self.api_groups),
            "resources": list(self.resources),
            "verbs": list(self.verbs),
        }
        if self.resource_names:
            rule["resourceNames"] = list(self.resource_names)
        return rule

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PolicyRule":
        return cls(
            api_groups=tuple(data.get("apiGroups", [])),
            resources=tuple(data.get("resources", [])),
            verbs=tuple(data.get("verbs", [])),
            resource_names=tuple(data.get("resourceNames", [])),
        )


@dataclass
class Role:
    """A Role or ClusterRole."""

    name: str
    rules: list[PolicyRule] = field(default_factory=list)
    namespace: str | None = "default"  # None -> ClusterRole

    @property
    def kind(self) -> str:
        return "Role" if self.namespace is not None else "ClusterRole"

    def to_manifest(self) -> dict[str, Any]:
        manifest: dict[str, Any] = {
            "apiVersion": "rbac.authorization.k8s.io/v1",
            "kind": self.kind,
            "metadata": {"name": self.name},
            "rules": [r.to_dict() for r in self.rules],
        }
        if self.namespace is not None:
            manifest["metadata"]["namespace"] = self.namespace
        return manifest

    @classmethod
    def from_manifest(cls, manifest: dict[str, Any]) -> "Role":
        meta = manifest.get("metadata", {})
        namespace = meta.get("namespace") if manifest.get("kind") == "Role" else None
        if manifest.get("kind") == "Role" and namespace is None:
            namespace = "default"
        return cls(
            name=meta.get("name", ""),
            rules=[PolicyRule.from_dict(r) for r in manifest.get("rules", [])],
            namespace=namespace,
        )


@dataclass
class RoleBinding:
    """A RoleBinding or ClusterRoleBinding."""

    name: str
    role_name: str
    subjects: list[str] = field(default_factory=list)  # usernames
    namespace: str | None = "default"  # None -> ClusterRoleBinding

    @property
    def kind(self) -> str:
        return "RoleBinding" if self.namespace is not None else "ClusterRoleBinding"

    def to_manifest(self) -> dict[str, Any]:
        manifest: dict[str, Any] = {
            "apiVersion": "rbac.authorization.k8s.io/v1",
            "kind": self.kind,
            "metadata": {"name": self.name},
            "subjects": [
                {"kind": "User", "apiGroup": "rbac.authorization.k8s.io", "name": s}
                for s in self.subjects
            ],
            "roleRef": {
                "apiGroup": "rbac.authorization.k8s.io",
                "kind": "Role" if self.namespace is not None else "ClusterRole",
                "name": self.role_name,
            },
        }
        if self.namespace is not None:
            manifest["metadata"]["namespace"] = self.namespace
        return manifest

    @classmethod
    def from_manifest(cls, manifest: dict[str, Any]) -> "RoleBinding":
        meta = manifest.get("metadata", {})
        namespace = meta.get("namespace") if manifest.get("kind") == "RoleBinding" else None
        if manifest.get("kind") == "RoleBinding" and namespace is None:
            namespace = "default"
        return cls(
            name=meta.get("name", ""),
            role_name=manifest.get("roleRef", {}).get("name", ""),
            subjects=[s.get("name", "") for s in manifest.get("subjects", [])],
            namespace=namespace,
        )


@dataclass
class RBACPolicy:
    """A workload-tailored bundle of roles and bindings."""

    roles: list[Role] = field(default_factory=list)
    bindings: list[RoleBinding] = field(default_factory=list)

    def grant(self, username: str, rule: PolicyRule, namespace: str | None = "default",
              role_name: str | None = None) -> None:
        """Convenience: create a single-rule role bound to *username*."""
        role_name = role_name or f"granted-{len(self.roles)}"
        self.roles.append(Role(role_name, [rule], namespace))
        self.bindings.append(
            RoleBinding(f"{role_name}-binding", role_name, [username], namespace)
        )

    def rules_for(self, username: str, namespace: str | None) -> Iterable[PolicyRule]:
        """All rules granted to *username* that apply in *namespace*.

        ClusterRole rules (namespace None) apply everywhere; Role rules
        apply only inside their namespace.
        """
        roles_by_key = {(r.kind, r.namespace, r.name): r for r in self.roles}
        for binding in self.bindings:
            if username not in binding.subjects:
                continue
            if binding.namespace is not None and namespace != binding.namespace:
                continue
            role_kind = "Role" if binding.namespace is not None else "ClusterRole"
            role = roles_by_key.get((role_kind, binding.namespace, binding.role_name))
            if role is not None:
                yield from role.rules

    def to_manifests(self) -> list[dict[str, Any]]:
        return [r.to_manifest() for r in self.roles] + [
            b.to_manifest() for b in self.bindings
        ]

    @classmethod
    def from_manifests(cls, manifests: list[dict[str, Any]]) -> "RBACPolicy":
        policy = cls()
        for manifest in manifests:
            kind = manifest.get("kind")
            if kind in ("Role", "ClusterRole"):
                policy.roles.append(Role.from_manifest(manifest))
            elif kind in ("RoleBinding", "ClusterRoleBinding"):
                policy.bindings.append(RoleBinding.from_manifest(manifest))
        return policy
