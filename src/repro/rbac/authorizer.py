"""The RBAC authorizer plugged into the mini API server.

Decision logic mirrors upstream Kubernetes: members of
``system:masters`` bypass RBAC entirely; everyone else needs at least
one bound rule matching (apiGroup, resource, verb[, resourceName]).
RBAC never inspects the request *body* -- that is precisely the
granularity gap (Sec. III) that KubeFence fills.
"""

from __future__ import annotations

from repro.k8s.apiserver import ApiRequest
from repro.k8s.gvk import ResourceType
from repro.rbac.model import RBACPolicy


class RBACAuthorizer:
    """Authorize requests against an :class:`RBACPolicy`."""

    def __init__(self, policy: RBACPolicy | None = None, superuser_group: str = "system:masters"):
        self.policy = policy or RBACPolicy()
        self.superuser_group = superuser_group

    def authorize(self, request: ApiRequest, resource: ResourceType) -> tuple[bool, str]:
        if self.superuser_group in request.user.groups:
            return True, "superuser group"
        namespace = request.namespace if resource.namespaced else None
        name = request.name
        if name is None and request.body is not None:
            name = request.body.get("metadata", {}).get("name")
        for rule in self.policy.rules_for(request.user.username, namespace):
            if rule.matches(resource.gvk.group, resource.plural, request.verb, name):
                return True, "RBAC rule matched"
        return False, "no RBAC rule matched"
