"""Scripted chaos scenarios and the survival report.

A scenario is a :class:`~repro.faults.injector.FaultPlan` plus a
deterministic driver: deploy an operator chart through a KubeFence
proxy whose upstream is wrapped in a :class:`~repro.faults.injector.
FaultyAPIServer`, interleave hostile mutations (which the policy must
deny), and tally what came out the other side.

The one invariant every scenario must uphold -- the reason this
harness exists -- is **zero fail-open decisions**: a request the
policy would deny is either denied (403) or refused (503), never
admitted, no matter what the injector does to the upstream.  The
store is audited afterwards for hostile markers as a second,
end-state check.

``repro chaos`` (the CLI) and ``tests/integration/test_chaos.py``
both drive these entry points; the CLI prints
:func:`render_survival_report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.faults.injector import FaultInjector, FaultPlan, FaultyAPIServer

__all__ = [
    "SCENARIOS",
    "ScenarioReport",
    "hostile_mutations",
    "render_survival_report",
    "run_scenario",
]

#: The built-in chaos menu.  Rates are chosen so that every scenario
#: finishes in well under a second in-process while still exercising
#: retries, breaker trips, and degradation.
SCENARIOS: dict[str, FaultPlan] = {
    "baseline": FaultPlan(name="baseline"),
    "latency": FaultPlan(name="latency", latency_rate=0.5, latency_ms=1.0),
    "error-burst": FaultPlan(name="error-burst", error_rate=0.3, fail_first=3),
    "reset-storm": FaultPlan(name="reset-storm", reset_rate=0.35),
    "partial-response": FaultPlan(name="partial-response", partial_rate=0.3),
    "hang": FaultPlan(name="hang", hang_rate=0.2, hang_seconds=0.01),
    "blackout": FaultPlan(name="blackout", error_rate=1.0),
}


def hostile_mutations(manifest: dict[str, Any]) -> list[dict[str, Any]]:
    """Mutations of a workload manifest that sit outside any generated
    policy's allowed configuration space (host namespace escapes)."""
    from repro.yamlutil import deep_copy, set_path

    mutations = []
    for path, value in (
        ("spec.template.spec.hostNetwork", True),
        ("spec.template.spec.hostPID", True),
        ("spec.template.spec.hostIPC", True),
    ):
        bad = deep_copy(manifest)
        set_path(bad, path, value)
        mutations.append(bad)
    return mutations


@dataclass
class ScenarioReport:
    """What survived one scripted chaos scenario."""

    name: str
    seed: int
    rounds: int
    requests_total: int = 0
    benign_ok: int = 0
    benign_refused: int = 0
    denial_attempts: int = 0
    denied: int = 0
    fail_open: int = 0
    retries: int = 0
    degraded_refused: int = 0
    breaker_opens: int = 0
    injected: dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0

    @property
    def survived(self) -> bool:
        """The security invariant: no would-be denial was admitted."""
        return self.fail_open == 0 and self.denied == self.denial_attempts


def run_scenario(
    plan: FaultPlan,
    *,
    chart: Any | None = None,
    validator: Any | None = None,
    seed: int = 1337,
    rounds: int = 10,
    resilience: Any | None = None,
) -> ScenarioReport:
    """Drive one scenario through the in-process enforcement stack.

    Each round applies every chart manifest (benign traffic) and every
    hostile mutation of the workload Deployment (traffic the policy
    must deny), while the injector mauls the upstream according to
    *plan*.  Deterministic for a fixed ``(plan, seed, rounds)``.
    """
    from repro.core.pipeline import generate_policy
    from repro.core.proxy import KubeFenceProxy
    from repro.helm.chart import render_chart
    from repro.k8s.apiserver import ApiRequest, Cluster, User
    from repro.operators import get_chart
    from repro.resilience import ResilienceConfig, RetryPolicy
    from repro.yamlutil import get_path

    chart = chart if chart is not None else get_chart("nginx")
    validator = validator if validator is not None else generate_policy(chart)
    if resilience is None:
        # Tight timings: chaos scenarios must be fast enough for CI.
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01),
            request_deadline=2.0,
            failure_threshold=5,
            recovery_timeout=0.02,
        )

    cluster = Cluster()
    injector = FaultInjector(plan, seed=seed)
    proxy = KubeFenceProxy(
        FaultyAPIServer(cluster.api, injector), validator, resilience=resilience
    )
    manifests = render_chart(chart)
    workload = next(m for m in manifests if m["kind"] == "Deployment")
    hostile = hostile_mutations(workload)
    operator = User(f"{chart.name}-operator")
    attacker = User("eve")

    report = ScenarioReport(name=plan.name, seed=seed, rounds=rounds)
    started = time.perf_counter()
    for round_index in range(rounds):
        verb = "create" if round_index == 0 else "update"
        for manifest in manifests:
            response = proxy.submit(
                ApiRequest.from_manifest(manifest, operator, verb)
            )
            report.requests_total += 1
            if response.ok:
                report.benign_ok += 1
            elif response.code >= 500:
                report.benign_refused += 1
            # 4xx on benign traffic (e.g. 409 conflict after a retried
            # create) is neither a success nor a refusal; it is counted
            # in requests_total only.
        for bad in hostile:
            response = proxy.submit(ApiRequest.from_manifest(bad, attacker, "update"))
            report.requests_total += 1
            report.denial_attempts += 1
            if response.code == 403:
                report.denied += 1
            elif response.ok:
                report.fail_open += 1
    report.duration_s = time.perf_counter() - started

    # End-state audit: no hostile marker may have reached the store.
    for stored in cluster.store.list("Deployment"):
        spec = stored.data if hasattr(stored, "data") else stored
        for path in ("spec.template.spec.hostNetwork",
                     "spec.template.spec.hostPID",
                     "spec.template.spec.hostIPC"):
            if get_path(spec, path, None):
                report.fail_open += 1

    snapshot = proxy.stats.snapshot()
    report.retries = int(snapshot.get("kubefence_retries_total", 0))
    report.degraded_refused = int(
        snapshot.get('kubefence_degraded_requests_total{mode="refused"}', 0)
    )
    report.breaker_opens = int(
        snapshot.get('kubefence_breaker_transitions_total{state="open"}', 0)
    )
    report.injected = {
        kind: count for kind, count in injector.counts.items()
        if kind != "none" and count
    }
    return report


def render_survival_report(reports: list[ScenarioReport]) -> str:
    """The ``repro chaos`` table: one row per scenario."""
    header = (
        f"{'scenario':<18} {'reqs':>5} {'ok':>5} {'refused':>7} "
        f"{'denied':>6} {'fail-open':>9} {'retries':>7} {'brk-open':>8} "
        f"{'faults':>6}  verdict"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        faults = sum(r.injected.values())
        verdict = "SURVIVED" if r.survived else "FAIL-OPEN"
        lines.append(
            f"{r.name:<18} {r.requests_total:>5} {r.benign_ok:>5} "
            f"{r.benign_refused:>7} {r.denied:>6}/{r.denial_attempts:<3}"
            f"{r.fail_open:>6} {r.retries:>7} {r.breaker_opens:>8} "
            f"{faults:>6}  {verdict}"
        )
    total_open = sum(r.fail_open for r in reports)
    lines.append("-" * len(header))
    lines.append(
        f"{len(reports)} scenario(s), {sum(r.requests_total for r in reports)} "
        f"requests, {total_open} fail-open decision(s) "
        f"-- {'OK' if total_open == 0 else 'SECURITY INVARIANT VIOLATED'}"
    )
    return "\n".join(lines)
