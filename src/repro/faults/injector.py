"""Deterministic, seedable fault injection for the enforcement path.

The chaos harness needs upstream failures that are *reproducible*: a
fixed seed must replay the exact same sequence of resets, 503 bursts,
latency spikes, truncated responses, and hangs, so a chaos run is an
experiment rather than a flake generator.

One :class:`FaultInjector` draws a :class:`FaultDecision` per request
from a single seeded ``random.Random`` (exactly one draw per decision,
under a lock, so the sequence is a pure function of ``(plan, seed)``
and the request order).  The same injector instance plugs into both
deployment shapes:

- **in-process**: :class:`FaultyAPIServer` wraps an
  :class:`~repro.k8s.apiserver.APIServer`'s ``handle`` and turns
  decisions into 5xx :class:`~repro.k8s.apiserver.ApiResponse`\\ s,
  raised ``ConnectionResetError``/``TimeoutError``, or added latency;
- **HTTP**: :meth:`FaultInjector.apply_http` is called by the
  :class:`~repro.k8s.http.HttpApiServer` request handler (when the
  server is constructed with ``fault_injector=...``) and turns
  decisions into real wire-level faults -- RST via ``SO_LINGER(0)``,
  short-writes against an inflated ``Content-Length``, stalls, and
  5xx ``Status`` bodies.

Every injected fault is counted twice: in the injector's own
``counts`` dict (assertable in tests) and in the
``kubefence_faults_injected_total{kind}`` series of an optional
:mod:`repro.obs` registry, so a chaos run's pressure is visible on the
same ``/metrics`` surface as the proxy's reaction to it.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, NamedTuple

from repro.k8s.apiserver import ApiResponse
from repro.k8s.errors import ApiError

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultyAPIServer",
]

#: Everything the injector can do to a request.
FAULT_KINDS = ("none", "delay", "error", "reset", "partial", "hang")

#: Safety cap on injected hangs (a chaos run must terminate).
MAX_HANG_SECONDS = 5.0


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault mix for one chaos scenario.

    Rates are independent per-request probabilities resolved in a
    fixed precedence order (error, reset, partial, hang, latency) off
    a single uniform draw, so their sum must stay <= 1.  ``fail_first``
    scripts a deterministic burst: the first N requests unconditionally
    suffer ``fail_first_kind`` (how a breaker-trip scenario is staged).
    """

    name: str = "custom"
    latency_rate: float = 0.0
    latency_ms: float = 1.0
    error_rate: float = 0.0
    error_code: int = 503
    reset_rate: float = 0.0
    partial_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 0.5
    fail_first: int = 0
    fail_first_kind: str = "error"

    def __post_init__(self) -> None:
        total = (self.error_rate + self.reset_rate + self.partial_rate
                 + self.hang_rate + self.latency_rate)
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {total:.3f} > 1.0")
        for rate in (self.error_rate, self.reset_rate, self.partial_rate,
                     self.hang_rate, self.latency_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("fault rates must be in [0, 1]")
        if self.fail_first < 0:
            raise ValueError("fail_first must be >= 0")
        if self.fail_first_kind not in FAULT_KINDS or self.fail_first_kind == "none":
            raise ValueError(
                f"fail_first_kind must be an active fault kind, "
                f"not {self.fail_first_kind!r}"
            )
        if not 500 <= self.error_code <= 599:
            raise ValueError("error_code must be a 5xx status")


class FaultDecision(NamedTuple):
    """One injected behaviour: ``kind`` plus its magnitude (ms for
    delay, status code for error, seconds for hang)."""

    kind: str
    value: float = 0.0


class FaultInjector:
    """Draws one deterministic :class:`FaultDecision` per request."""

    def __init__(self, plan: FaultPlan, seed: int = 0, registry: Any | None = None):
        self.plan = plan
        self.seed = seed
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._request_index = 0
        self.counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._metric = None
        if registry is not None:
            self._metric = registry.counter(
                "kubefence_faults_injected_total",
                "Faults injected into the upstream path, by kind.",
                labels=("kind",),
            )

    def reset(self, seed: int | None = None) -> None:
        """Rewind to the start of the (re-)seeded decision sequence."""
        with self._lock:
            self.seed = self.seed if seed is None else seed
            self._rng = random.Random(self.seed)
            self._request_index = 0
            self.counts = {kind: 0 for kind in FAULT_KINDS}

    @property
    def requests_seen(self) -> int:
        with self._lock:
            return self._request_index

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return sum(n for kind, n in self.counts.items() if kind != "none")

    # -- decisions -----------------------------------------------------------

    def _decision_for(self, kind: str) -> FaultDecision:
        plan = self.plan
        if kind == "delay":
            return FaultDecision("delay", plan.latency_ms)
        if kind == "error":
            return FaultDecision("error", float(plan.error_code))
        if kind == "hang":
            return FaultDecision("hang", min(plan.hang_seconds, MAX_HANG_SECONDS))
        return FaultDecision(kind)

    def decide(self) -> FaultDecision:
        """The next decision in the seeded sequence (thread-safe; one
        uniform draw per call regardless of the outcome, so the
        sequence never depends on which faults fired earlier)."""
        plan = self.plan
        with self._lock:
            self._request_index += 1
            draw = self._rng.random()
            if self._request_index <= plan.fail_first:
                kind = plan.fail_first_kind
            else:
                kind = "none"
                threshold = 0.0
                for candidate, rate in (
                    ("error", plan.error_rate),
                    ("reset", plan.reset_rate),
                    ("partial", plan.partial_rate),
                    ("hang", plan.hang_rate),
                    ("delay", plan.latency_rate),
                ):
                    threshold += rate
                    if draw < threshold:
                        kind = candidate
                        break
            self.counts[kind] += 1
        if self._metric is not None and kind != "none":
            self._metric.labels(kind=kind).inc()
        return self._decision_for(kind)

    # -- HTTP wire-level application ----------------------------------------

    def apply_http(self, handler: Any) -> bool:
        """Apply the next decision at the HTTP layer.

        Returns ``True`` when the fault consumed the request (the
        handler must not route it); ``False`` for no-fault and for
        pure added latency.  The caller has already drained the
        request body (keep-alive hygiene).
        """
        decision = self.decide()
        kind = decision.kind
        if kind == "none":
            return False
        if kind == "delay":
            time.sleep(decision.value / 1000.0)
            return False
        if kind == "error":
            code = int(decision.value)
            payload = json.dumps({
                "kind": "Status", "status": "Failure", "code": code,
                "reason": "ServiceUnavailable" if code == 503 else "InternalError",
                "message": f"injected fault: {self.plan.name} ({kind})",
            }).encode()
            handler.send_response(code)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(payload)))
            handler.end_headers()
            handler.wfile.write(payload)
            return True
        if kind == "hang":
            time.sleep(decision.value)
            self._reset_connection(handler)
            return True
        if kind == "reset":
            self._reset_connection(handler)
            return True
        # "partial": promise more bytes than are sent, then kill the
        # connection -- the client sees http.client.IncompleteRead.
        payload = b'{"kind":"Status","status":"Failure","message":"truncated'
        try:
            handler.send_response(200)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(payload) * 2))
            handler.end_headers()
            handler.wfile.write(payload)
            handler.wfile.flush()
        except OSError:
            pass
        self._reset_connection(handler)
        return True

    @staticmethod
    def _reset_connection(handler: Any) -> None:
        """Abort the TCP connection with an RST (SO_LINGER zero), the
        closest stdlib analogue of a crashed upstream."""
        handler.close_connection = True
        try:
            handler.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        try:
            handler.connection.close()
        except OSError:
            pass


class FaultyAPIServer:
    """An :class:`~repro.k8s.apiserver.APIServer` wrapper that injects
    faults in front of ``handle`` (the in-process chaos deployment).

    Transport-space faults surface as the exceptions an HTTP client
    would raise (``ConnectionResetError`` for reset/partial,
    ``TimeoutError`` after an injected hang); protocol-space faults as
    5xx :class:`~repro.k8s.apiserver.ApiResponse` objects.  Attribute
    access falls through to the wrapped server, so stores, registries,
    and metrics remain reachable.
    """

    def __init__(self, api: Any, injector: FaultInjector):
        self.api = api
        self.injector = injector

    def handle(self, request: Any) -> ApiResponse:
        decision = self.injector.decide()
        kind = decision.kind
        if kind == "delay":
            time.sleep(decision.value / 1000.0)
        elif kind == "error":
            code = int(decision.value)
            return ApiResponse.from_error(ApiError(
                code,
                "ServiceUnavailable" if code == 503 else "InternalError",
                f"injected fault: {self.injector.plan.name} ({kind})",
            ))
        elif kind in ("reset", "partial"):
            raise ConnectionResetError(f"injected fault: {kind}")
        elif kind == "hang":
            time.sleep(decision.value)
            raise TimeoutError(
                f"injected fault: upstream hung for {decision.value:.2f}s"
            )
        return self.api.handle(request)

    def __getattr__(self, name: str) -> Any:
        return getattr(self.api, name)
