"""Process-level chaos: SIGKILL a real API-server child at commit
points and prove recovery invariants across kill/restart cycles.

The wire-level injector (:mod:`repro.faults.injector`) mauls requests;
this module kills the *process*.  A supervised child runs a durable
:class:`~repro.k8s.http.HttpApiServer` (WAL-backed store, see
:mod:`repro.k8s.wal`); the injector picks a commit point and ordinal
(``pre-append:3``), the child arms the crash-point hook from
:data:`~repro.k8s.wal.CRASH_POINT_ENV` and SIGKILLs *itself* the
moment that point is reached — which is how "kill at an
injector-chosen commit point" is made exactly reproducible (a parent
racing ``kill(2)`` against a syscall is not).

Each :func:`run_crashtest` cycle: restart the child (recovery), verify
the recovered store against the ledger of acknowledged writes, issue a
seeded write sequence until the armed kill fires, then probe the
blackout window through two KubeFence proxies (one per degraded mode).
Three invariants, tallied in :class:`CrashReport`:

1. **No acknowledged write is ever lost** — every write the client saw
   a 2xx for (and every write that reached ``post-append``, i.e. was
   durably logged) is present after recovery with the exact content
   and resourceVersion it was acknowledged at.
2. **No unacknowledged write is ever resurrected** — a write killed at
   ``pre-append`` (or refused while the server was dark) never
   appears after recovery.
3. **The proxy never serves a fail-open allow during the blackout** —
   hostile writes are denied (403) locally, benign writes are refused
   (503) fail-closed, and fail-static serves stale GETs only to the
   identity that originally warmed them.

``repro crashtest`` drives this and exits 1 on any violation.
"""

from __future__ import annotations

import argparse
import http.client
import os
import random
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.k8s.wal import CRASH_POINTS, CRASH_POINT_ENV, NO_WAL_ENV

__all__ = [
    "CrashInjector",
    "CrashReport",
    "KillSpec",
    "SupervisedApiServer",
    "render_crash_report",
    "run_crashtest",
]

#: Extra writes attempted after the armed kill ordinal: guaranteed to
#: hit a dead server, so every cycle contributes never-accepted writes
#: to the resurrection check even when the kill lands on the last
#: in-range write.
GHOST_WRITES = 2


# ---------------------------------------------------------------------------
# Child process (the supervised server)
# ---------------------------------------------------------------------------


def _child_serve(args: argparse.Namespace) -> int:
    """Entry point of the supervised child: recover the durable store,
    serve it over HTTP, arm the crash point, wait for SIGTERM."""
    from repro.k8s.apiserver import APIServer
    from repro.k8s.http import HttpApiServer
    from repro.k8s.store import ObjectStore
    from repro.k8s.wal import arm_crashpoint

    store = ObjectStore.recover(
        args.data_dir, fsync=args.fsync or None, compact_every=args.compact_every
    )
    api = APIServer(store=store)
    server = HttpApiServer(api, host=args.host, port=args.port)
    # Arm only once the server exists: recovery itself is never killed
    # mid-replay by the spec (the spec counts live write commits).
    arm_crashpoint(os.environ.get(CRASH_POINT_ENV))
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    with server:
        stop.wait()
    store.close()
    return 0


class SupervisedApiServer:
    """Parent-side supervisor for a durable API-server child process.

    The child is spawned with ``python -m repro.faults.crash --serve``
    against a fixed port (so proxies pointed at it survive restarts)
    and a fixed data directory (so every restart is a recovery).
    ``start(crash_spec=...)`` arms the commit-point kill; the child
    then SIGKILLs itself mid-write and :meth:`wait_dead` reaps it.
    """

    def __init__(
        self,
        data_dir: str | Path,
        port: int,
        host: str = "127.0.0.1",
        fsync: str = "batch",
        compact_every: int | None = None,
    ):
        self.data_dir = Path(data_dir)
        self.host = host
        self.port = port
        self.fsync = fsync
        self.compact_every = compact_every
        self._proc: subprocess.Popen[bytes] | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def start(self, crash_spec: str | None = None, timeout: float = 15.0) -> None:
        if self.alive():
            raise RuntimeError("child already running")
        env = dict(os.environ)
        # The child must be durable no matter what the parent's env
        # says: an in-memory child would turn every cycle into a
        # false "lost write".
        env.pop(NO_WAL_ENV, None)
        env.pop(CRASH_POINT_ENV, None)
        if crash_spec:
            env[CRASH_POINT_ENV] = crash_spec
        # Make repro importable in the child even when the parent was
        # launched from an installed path.
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        cmd = [
            sys.executable, "-m", "repro.faults.crash", "--serve",
            "--host", self.host,
            "--port", str(self.port),
            "--data-dir", str(self.data_dir),
            "--fsync", self.fsync,
        ]
        if self.compact_every is not None:
            cmd += ["--compact-every", str(self.compact_every)]
        self._proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self._wait_ready(timeout)

    def _wait_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        url = self.base_url + "/readyz"
        while time.monotonic() < deadline:
            if not self.alive():
                code = self._proc.returncode if self._proc else None
                raise RuntimeError(f"crashtest child exited during startup (rc={code})")
            try:
                with urllib.request.urlopen(url, timeout=0.5):
                    return
            except urllib.error.HTTPError:
                return  # any HTTP response means the server is up
            except (urllib.error.URLError, OSError):
                time.sleep(0.02)
        raise RuntimeError(f"crashtest child not ready within {timeout}s")

    def wait_dead(self, timeout: float = 15.0) -> int:
        """Block until the child exits (it SIGKILLs itself at the armed
        commit point); returns the exit code and reaps the zombie."""
        if self._proc is None:
            raise RuntimeError("child was never started")
        try:
            return self._proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired as exc:  # pragma: no cover - harness bug guard
            raise RuntimeError(
                "crashtest child did not die at the armed commit point "
                f"within {timeout}s"
            ) from exc

    def kill(self) -> None:
        """Parent-initiated SIGKILL (used for teardown, not for the
        deterministic commit-point kills)."""
        if self.alive():
            assert self._proc is not None
            self._proc.kill()
            self._proc.wait(timeout=10)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful SIGTERM shutdown (flushes and closes the WAL)."""
        if self._proc is None:
            return
        if self._proc.poll() is None:
            self._proc.terminate()
            try:
                self._proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._proc.wait(timeout=10)
        self._proc = None


# ---------------------------------------------------------------------------
# Kill scheduling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KillSpec:
    """One cycle's kill: SIGKILL on the ``nth`` hit of ``point``."""

    point: str
    nth: int

    @property
    def spec(self) -> str:
        return f"{self.point}:{self.nth}"


class CrashInjector:
    """Seeded chooser of (commit point, write ordinal) per cycle —
    one rng draw per decision, so schedules are reproducible."""

    def __init__(self, seed: int, writes_per_cycle: int,
                 points: tuple[str, ...] = CRASH_POINTS):
        if writes_per_cycle < 1:
            raise ValueError("writes_per_cycle must be >= 1")
        self._rng = random.Random(seed)
        self._writes = writes_per_cycle
        self._points = points

    def next_kill(self) -> KillSpec:
        point = self._rng.choice(self._points)
        nth = self._rng.randint(1, self._writes)
        return KillSpec(point, nth)


# ---------------------------------------------------------------------------
# The scenario suite
# ---------------------------------------------------------------------------


@dataclass
class CrashReport:
    """Tallies across N kill/restart cycles (see module docstring for
    the three invariants ``survived`` asserts)."""

    seed: int
    cycles: int
    writes_per_cycle: int
    fsync: str
    schedule: list[str] = field(default_factory=list)
    writes_attempted: int = 0
    writes_acked: int = 0
    kills: dict[str, int] = field(default_factory=dict)
    recoveries: int = 0
    recovered_records: int = 0
    #: Invariant 1 violations: acknowledged writes missing after
    #: recovery, or present with the wrong content/resourceVersion.
    lost_writes: int = 0
    corrupted_writes: int = 0
    #: Invariant 2 violations: never-acknowledged writes that appeared.
    resurrected_writes: int = 0
    #: Invariant 3 violations: any blackout-window allow that should
    #: not exist (admitted hostile write, 2xx benign write against a
    #: dead upstream, cross-identity stale read).
    fail_open: int = 0
    blackout_denials: int = 0
    blackout_writes_refused: int = 0
    stale_reads_served: int = 0
    stale_reads_refused: int = 0
    wall_time_s: float = 0.0

    @property
    def survived(self) -> bool:
        return (
            self.lost_writes == 0
            and self.corrupted_writes == 0
            and self.resurrected_writes == 0
            and self.fail_open == 0
            and self.recoveries >= self.cycles
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "cycles": self.cycles,
            "writes_per_cycle": self.writes_per_cycle,
            "fsync": self.fsync,
            "schedule": list(self.schedule),
            "writes_attempted": self.writes_attempted,
            "writes_acked": self.writes_acked,
            "kills": dict(self.kills),
            "recoveries": self.recoveries,
            "recovered_records": self.recovered_records,
            "lost_writes": self.lost_writes,
            "corrupted_writes": self.corrupted_writes,
            "resurrected_writes": self.resurrected_writes,
            "fail_open": self.fail_open,
            "blackout_denials": self.blackout_denials,
            "blackout_writes_refused": self.blackout_writes_refused,
            "stale_reads_served": self.stale_reads_served,
            "stale_reads_refused": self.stale_reads_refused,
            "wall_time_s": round(self.wall_time_s, 3),
            "survived": self.survived,
        }


def _probe_free_port(host: str = "127.0.0.1") -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _configmap(name: str, seq: int, cycle: int) -> dict[str, Any]:
    return {
        "apiVersion": "v1",
        "kind": "ConfigMap",
        "metadata": {"name": name, "namespace": "default"},
        "data": {"seq": str(seq), "cycle": str(cycle)},
    }


def _try_create(client: Any, manifest: dict[str, Any]) -> tuple[int | None, Any]:
    """A create whose transport may die mid-request (that's the point).
    Returns (status, body); status None = no usable HTTP response, i.e.
    the write was never acknowledged to this client."""
    try:
        return client.create(manifest)
    except (urllib.error.URLError, OSError, EOFError, http.client.HTTPException):
        return None, None


_REPLAYED_RE = re.compile(
    r"^kubefence_recovery_replayed_total\s+([0-9.eE+-]+)\s*$", re.MULTILINE
)


def _scrape_replayed(base_url: str) -> int:
    """Best-effort read of the child's recovery counter (0 when the
    observability layer is disabled)."""
    try:
        with urllib.request.urlopen(base_url + "/metrics", timeout=2) as resp:
            text = resp.read().decode()
    except (urllib.error.URLError, OSError, ValueError):
        return 0
    match = _REPLAYED_RE.search(text)
    return int(float(match.group(1))) if match else 0


class _Ledger:
    """Parent-side ground truth: what must (and must not) exist."""

    def __init__(self) -> None:
        #: name -> {"seq": str, "rv": str | None}; rv None = durable but
        #: client-unconfirmed (post-append kill) until first verified.
        self.present: dict[str, dict[str, Any]] = {}
        self.absent: list[str] = []

    def verify(self, admin: Any, report: CrashReport) -> None:
        for name, want in self.present.items():
            status, body = admin.get("ConfigMap", name)
            if status != 200:
                report.lost_writes += 1
                continue
            if body.get("data", {}).get("seq") != want["seq"]:
                report.corrupted_writes += 1
                continue
            rv = body.get("metadata", {}).get("resourceVersion")
            if want["rv"] is None:
                want["rv"] = rv  # learned at first recovery; pinned after
            elif rv != want["rv"]:
                report.corrupted_writes += 1
        for name in self.absent:
            status, _ = admin.get("ConfigMap", name)
            if status == 200:
                report.resurrected_writes += 1


def run_crashtest(
    chart: Any,
    validator: Any,
    seed: int = 1337,
    cycles: int = 10,
    writes_per_cycle: int = 6,
    data_dir: str | Path | None = None,
    fsync: str = "batch",
    compact_every: int = 32,
    host: str = "127.0.0.1",
) -> CrashReport:
    """Run the full kill/restart scenario suite (see module docstring)."""
    from repro.core.proxy import HttpKubeFenceProxy
    from repro.faults.scenarios import hostile_mutations
    from repro.helm.chart import render_chart
    from repro.k8s.http import HttpClient
    from repro.resilience import ResilienceConfig, RetryPolicy

    manifests = render_chart(chart)
    workload = next(m for m in manifests if m["kind"] == "Deployment")
    service = next(m for m in manifests if m["kind"] == "Service")
    service_name = service["metadata"]["name"]
    service_path = f"/api/v1/namespaces/default/services/{service_name}"

    retry = RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.01)
    fail_closed_cfg = ResilienceConfig(
        retry=retry, request_timeout=2.0, request_deadline=4.0,
        failure_threshold=3, recovery_timeout=0.05,
    )
    fail_static_cfg = ResilienceConfig(
        retry=retry, request_timeout=2.0, request_deadline=4.0,
        failure_threshold=3, recovery_timeout=0.05,
        degraded_mode="fail-static", read_cache_ttl=600.0,
    )

    report = CrashReport(
        seed=seed, cycles=cycles, writes_per_cycle=writes_per_cycle, fsync=fsync,
    )
    injector = CrashInjector(seed, writes_per_cycle)
    started = time.perf_counter()

    own_dir = data_dir is None
    root = Path(data_dir) if data_dir else Path(
        tempfile.mkdtemp(prefix="kubefence-crashtest-")
    )
    supervisor = SupervisedApiServer(
        root, _probe_free_port(host), host=host, fsync=fsync,
        compact_every=compact_every,
    )
    fail_closed = HttpKubeFenceProxy(
        supervisor.base_url, validator, resilience=fail_closed_cfg
    ).start()
    fail_static = HttpKubeFenceProxy(
        supervisor.base_url, validator, resilience=fail_static_cfg
    ).start()
    admin = HttpClient(supervisor.base_url)
    operator = HttpClient(fail_closed.base_url, username="nginx-operator")
    attacker = HttpClient(fail_closed.base_url, username="eve", groups=())
    ledger = _Ledger()
    seq = 0

    def stale_get(user: str, groups: str) -> tuple[int, str]:
        req = urllib.request.Request(
            fail_static.base_url + service_path,
            headers={"X-Remote-User": user, "X-Remote-Groups": groups},
        )
        try:
            with urllib.request.urlopen(req, timeout=5) as resp:
                return resp.status, resp.headers.get("X-KubeFence-Degraded", "")
        except urllib.error.HTTPError as err:
            return err.code, err.headers.get("X-KubeFence-Degraded", "")

    try:
        # Setup: unarmed child, install the service, warm the
        # fail-static read cache for exactly one identity.
        supervisor.start()
        status, body = operator.apply(service)
        if not 200 <= status < 300:
            raise RuntimeError(f"setup service install failed: {status} {body}")
        warm_status, _ = stale_get("nginx-operator", "system:masters")
        if warm_status != 200:
            raise RuntimeError(f"stale-cache warm GET failed: {warm_status}")
        supervisor.stop()

        for cycle in range(cycles):
            kill = injector.next_kill()
            report.schedule.append(kill.spec)
            report.kills[kill.point] = report.kills.get(kill.point, 0) + 1

            # Restart = recovery; then check every prior cycle's ledger.
            supervisor.start(crash_spec=kill.spec)
            report.recoveries += 1
            report.recovered_records += _scrape_replayed(supervisor.base_url)
            ledger.verify(admin, report)

            # Seeded write sequence; the child SIGKILLs itself at the
            # armed commit point.  GHOST_WRITES extra attempts land on
            # the corpse so every cycle feeds the resurrection check.
            for i in range(1, writes_per_cycle + GHOST_WRITES + 1):
                seq += 1
                name = f"wal-cm-{cycle:02d}-{i:02d}"
                manifest = _configmap(name, seq, cycle)
                status, body = _try_create(admin, manifest)
                report.writes_attempted += 1
                if status is not None and 200 <= status < 300:
                    report.writes_acked += 1
                    ledger.present[name] = {
                        "seq": str(seq),
                        "rv": body["metadata"]["resourceVersion"],
                    }
                elif i == kill.nth and kill.point == "post-append":
                    # Durably logged, never acknowledged to the client:
                    # recovery MUST restore it (append == commit).  The
                    # resourceVersion is pinned at first verification.
                    ledger.present[name] = {"seq": str(seq), "rv": None}
                else:
                    # pre-append kill, or the server was already dead:
                    # never accepted, must never reappear.
                    ledger.absent.append(name)

            supervisor.wait_dead()

            # Blackout window: the upstream is a corpse.  Invariant 3.
            for bad in hostile_mutations(workload):
                status, _ = attacker.apply(bad)
                if status is not None and 200 <= status < 300:
                    report.fail_open += 1
                elif status == 403:
                    report.blackout_denials += 1
            status, _ = operator.apply(service)
            if status is not None and 200 <= status < 300:
                report.fail_open += 1
            else:
                report.blackout_writes_refused += 1
            status, degraded = stale_get("nginx-operator", "system:masters")
            if status == 200 and degraded.startswith("stale-read"):
                report.stale_reads_served += 1
            elif status == 200:
                report.fail_open += 1  # a 200 from a dead upstream?!
            status, _ = stale_get("eve", "system:masters")
            if status == 200:
                report.fail_open += 1  # cross-identity stale read
            else:
                report.stale_reads_refused += 1

        # Final recovery: everything acknowledged across all cycles
        # must still be there; everything refused must still be gone.
        supervisor.start()
        report.recoveries += 1
        report.recovered_records += _scrape_replayed(supervisor.base_url)
        ledger.verify(admin, report)
        supervisor.stop()
    finally:
        supervisor.stop()
        fail_closed.stop()
        fail_static.stop()
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)

    report.wall_time_s = time.perf_counter() - started
    return report


def render_crash_report(report: CrashReport) -> str:
    """Human-readable summary (the ``repro crashtest`` output)."""
    lines = [
        "KubeFence crash/restart durability report",
        "=" * 41,
        f"seed {report.seed} | {report.cycles} kill/restart cycles | "
        f"{report.writes_per_cycle}+{GHOST_WRITES} writes/cycle | "
        f"fsync={report.fsync}",
        f"kill schedule: {', '.join(report.schedule)}",
        "",
        f"writes attempted        {report.writes_attempted}",
        f"writes acknowledged     {report.writes_acked}",
        f"recoveries              {report.recoveries}",
        f"WAL records replayed    {report.recovered_records}",
        "",
        f"lost acknowledged       {report.lost_writes}",
        f"corrupted on recovery   {report.corrupted_writes}",
        f"resurrected unacked     {report.resurrected_writes}",
        f"fail-open decisions     {report.fail_open}",
        "",
        f"blackout denials (403)  {report.blackout_denials}",
        f"blackout refusals (5xx) {report.blackout_writes_refused}",
        f"stale reads served      {report.stale_reads_served} "
        f"(identity-scoped; {report.stale_reads_refused} cross-identity refused)",
        f"wall time               {report.wall_time_s:.2f}s",
        "",
        "VERDICT: " + ("SURVIVED (crash-only invariants hold)"
                       if report.survived else "FAILED"),
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Child entry point
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="supervised durable API-server child (internal; "
                    "spawned by the crashtest harness)"
    )
    parser.add_argument("--serve", action="store_true", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--data-dir", required=True)
    parser.add_argument("--fsync", default="")
    parser.add_argument("--compact-every", type=int, default=None)
    return _child_serve(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
