"""Deterministic fault injection and scripted chaos scenarios.

Companion package to :mod:`repro.resilience`: where resilience is what
the enforcement path *does* under failure, faults are how failure is
*manufactured* -- reproducibly, from a seed -- so the fail-closed
guarantees can be tested instead of asserted (``repro chaos``,
``tests/integration/test_chaos.py``).

Two fault planes:

- :mod:`repro.faults.injector` mauls the *wire* (5xx, stalls,
  truncation, resets) under a running server;
- :mod:`repro.faults.crash` kills the *process* (SIGKILL at WAL commit
  points) and proves crash/restart durability (``repro crashtest``).
"""

from repro.faults.crash import (
    CrashInjector,
    CrashReport,
    KillSpec,
    SupervisedApiServer,
    render_crash_report,
    run_crashtest,
)
from repro.faults.injector import (
    FAULT_KINDS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultyAPIServer,
)
from repro.faults.scenarios import (
    SCENARIOS,
    ScenarioReport,
    hostile_mutations,
    render_survival_report,
    run_scenario,
)

__all__ = [
    "CrashInjector",
    "CrashReport",
    "FAULT_KINDS",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultyAPIServer",
    "KillSpec",
    "SCENARIOS",
    "ScenarioReport",
    "SupervisedApiServer",
    "hostile_mutations",
    "render_crash_report",
    "render_survival_report",
    "run_crashtest",
    "run_scenario",
]
