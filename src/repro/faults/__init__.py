"""Deterministic fault injection and scripted chaos scenarios.

Companion package to :mod:`repro.resilience`: where resilience is what
the enforcement path *does* under failure, faults are how failure is
*manufactured* -- reproducibly, from a seed -- so the fail-closed
guarantees can be tested instead of asserted (``repro chaos``,
``tests/integration/test_chaos.py``).
"""

from repro.faults.injector import (
    FAULT_KINDS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultyAPIServer,
)
from repro.faults.scenarios import (
    SCENARIOS,
    ScenarioReport,
    hostile_mutations,
    render_survival_report,
    run_scenario,
)

__all__ = [
    "FAULT_KINDS",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultyAPIServer",
    "SCENARIOS",
    "ScenarioReport",
    "hostile_mutations",
    "render_survival_report",
    "run_scenario",
]
