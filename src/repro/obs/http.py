"""Transport-agnostic observability HTTP surfaces.

Both HTTP servers in the repo (the mini API server in
:mod:`repro.k8s.http` and the KubeFence reverse proxy in
:mod:`repro.core.proxy`) expose the same operational endpoints:

- ``GET /metrics``    -- Prometheus text exposition (version 0.0.4);
- ``GET /healthz``    -- liveness (``ok`` as long as the process runs);
- ``GET /readyz``     -- readiness, with optional caller-supplied checks;
- ``GET /obs/traces`` -- recent request traces as JSON (debug aid).

:func:`obs_endpoint` keeps the handlers transport-agnostic: it maps a
request path to ``(status, content_type, body)`` or ``None`` when the
path is regular API traffic, so each ``BaseHTTPRequestHandler`` only
needs a three-line branch.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

from repro.obs.tracing import TRACES, TraceBuffer

__all__ = ["METRICS_CONTENT_TYPE", "obs_endpoint"]

METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON = "application/json"

#: Paths served by the observability layer.
OBS_PATHS = ("/metrics", "/healthz", "/readyz", "/livez", "/obs/traces")


def obs_endpoint(
    path: str,
    registry: Any,
    component: str = "kubefence",
    ready_checks: Mapping[str, Callable[[], bool]] | None = None,
    traces: TraceBuffer = TRACES,
) -> tuple[int, str, bytes] | None:
    """Serve an observability path, or return ``None`` for API traffic.

    ``ready_checks`` maps check names to callables; any falsy/raising
    check flips ``/readyz`` to 503 with the failing checks named.
    """
    path = path.split("?", 1)[0]
    if path == "/metrics":
        return 200, METRICS_CONTENT_TYPE, registry.expose().encode()
    if path in ("/healthz", "/livez"):
        body = {"status": "ok", "component": component}
        return 200, _JSON, json.dumps(body).encode()
    if path == "/readyz":
        failed: list[str] = []
        for name, check in (ready_checks or {}).items():
            try:
                ok = bool(check())
            except Exception:  # noqa: BLE001 - a raising check is a failing check
                ok = False
            if not ok:
                failed.append(name)
        status = 503 if failed else 200
        body = {
            "status": "ok" if not failed else "unready",
            "component": component,
            "failed": failed,
        }
        return status, _JSON, json.dumps(body).encode()
    if path == "/obs/traces":
        return 200, _JSON, traces.to_json().encode()
    return None
