"""Transport-agnostic observability HTTP surfaces.

Both HTTP servers in the repo (the mini API server in
:mod:`repro.k8s.http` and the KubeFence reverse proxy in
:mod:`repro.core.proxy`) expose the same operational endpoints:

- ``GET /metrics``    -- Prometheus text exposition (version 0.0.4);
- ``GET /healthz``    -- liveness (``ok`` as long as the process runs);
- ``GET /readyz``     -- readiness, with optional caller-supplied checks;
- ``GET /obs/traces`` -- recent request traces as JSON, bounded by
  ``?limit=`` (default 32, cap 256) and filterable by ``?trace_id=``;
- ``GET /obs/events`` -- the security-event stream ring (when an
  :class:`~repro.obs.analytics.events.EventBus` is wired), bounded by
  ``?limit=`` (default 64, cap 1024) and filterable by ``?kind=``,
  ``?user=``, ``?trace_id=``;
- ``GET /obs/slo``    -- SLO burn-rate evaluation (when an
  :class:`~repro.obs.analytics.slo.SloEngine` is wired); evaluation
  happens on read, so scraping this endpoint *is* the alert check;
- ``GET /obs/refine`` -- the policy-refinement loop's state (when a
  :class:`~repro.obs.refine.RefineController` is wired): field-usage
  matrix, candidate-policy diff, and the shadow-mode canary verdict;
- ``GET /obs/scan``   -- the CVE scanner's status and latest findings
  report (when a :class:`~repro.scan.CVEScanner` is wired); optional
  ``?severity=`` filters the reported findings;
- ``GET /obs/profile`` -- the sampling wall-clock profiler's collapsed
  stacks (when a :class:`~repro.obs.profile.SamplingProfiler` is
  wired): JSON by default, flamegraph-ready text with
  ``?format=collapsed``, ``?top=`` bounds the JSON tables;
- ``GET /obs/timeseries`` -- the in-process metrics ring (when a
  :class:`~repro.obs.profile.TimeSeriesRing` is wired), filterable by
  ``?series=`` (substring) and ``?since=`` (epoch seconds) -- the data
  source for ``repro top``.

``/metrics`` speaks both expositions: classic Prometheus text 0.0.4 by
default, OpenMetrics 1.0 (exemplars, ``# EOF``) when the request asks
via ``?format=openmetrics`` or an ``application/openmetrics-text``
Accept header.

:func:`obs_endpoint` keeps the handlers transport-agnostic: it maps a
request path to ``(status, content_type, body)`` or ``None`` when the
path is regular API traffic, so each ``BaseHTTPRequestHandler`` only
needs a three-line branch (plus a no-body variant for ``HEAD``).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs

from repro.obs.analytics.events import EVENT_KINDS
from repro.obs.tracing import TRACES, TraceBuffer

__all__ = [
    "METRICS_CONTENT_TYPE",
    "OPENMETRICS_CONTENT_TYPE",
    "obs_endpoint",
]

METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)
_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"

#: Paths served by the observability layer.
OBS_PATHS = (
    "/metrics", "/healthz", "/readyz", "/livez",
    "/obs/traces", "/obs/events", "/obs/slo", "/obs/refine", "/obs/scan",
    "/obs/profile", "/obs/timeseries",
)

#: Response-size bounds: a full TraceBuffer/EventBus dump must not be
#: reachable from one unauthenticated GET.
TRACES_DEFAULT_LIMIT = 32
TRACES_MAX_LIMIT = 256
EVENTS_DEFAULT_LIMIT = 64
EVENTS_MAX_LIMIT = 1024


def _int_param(params: Mapping[str, list[str]], name: str,
               default: int, cap: int) -> int:
    """Parse a bounded non-negative integer query parameter; bad input
    falls back to the default rather than erroring a debug surface."""
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(0, min(value, cap))


def _str_param(params: Mapping[str, list[str]], name: str) -> str | None:
    raw = params.get(name, [None])[0]
    return raw if raw else None


def _float_param(params: Mapping[str, list[str]], name: str,
                 default: float) -> float:
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def obs_endpoint(
    path: str,
    registry: Any,
    component: str = "kubefence",
    ready_checks: Mapping[str, Callable[[], bool]] | None = None,
    traces: TraceBuffer = TRACES,
    event_bus: Any | None = None,
    slo: Any | None = None,
    refine: Any | None = None,
    scanner: Any | None = None,
    profiler: Any | None = None,
    timeseries: Any | None = None,
    accept: str = "",
) -> tuple[int, str, bytes] | None:
    """Serve an observability path, or return ``None`` for API traffic.

    ``ready_checks`` maps check names to callables; any falsy/raising
    check flips ``/readyz`` to 503 with the failing checks named.
    ``event_bus``/``slo``/``refine``/``scanner``/``profiler``/
    ``timeseries`` wire the ``/obs/events``, ``/obs/slo``,
    ``/obs/refine``, ``/obs/scan``, ``/obs/profile`` and
    ``/obs/timeseries`` surfaces; unwired, those paths answer 404 with
    a hint instead of falling through to API routing.  ``accept`` is
    the request's Accept header, used by ``/metrics`` to negotiate the
    OpenMetrics exposition.
    """
    path, _, query = path.partition("?")
    params = parse_qs(query) if query else {}
    if path == "/metrics":
        openmetrics = (
            _str_param(params, "format") == "openmetrics"
            or "application/openmetrics-text" in accept
        )
        if openmetrics:
            body = registry.expose(openmetrics=True).encode()
            return 200, OPENMETRICS_CONTENT_TYPE, body
        return 200, METRICS_CONTENT_TYPE, registry.expose().encode()
    if path in ("/healthz", "/livez"):
        body = {"status": "ok", "component": component}
        return 200, _JSON, json.dumps(body).encode()
    if path == "/readyz":
        failed: list[str] = []
        for name, check in (ready_checks or {}).items():
            try:
                ok = bool(check())
            except Exception:  # noqa: BLE001 - a raising check is a failing check
                ok = False
            if not ok:
                failed.append(name)
        status = 503 if failed else 200
        body = {
            "status": "ok" if not failed else "unready",
            "component": component,
            "failed": failed,
        }
        return status, _JSON, json.dumps(body).encode()
    if path == "/obs/traces":
        trace_id = _str_param(params, "trace_id")
        if trace_id is not None:
            found = traces.find(trace_id)
            payload = [found.to_dict()] if found is not None else []
            return 200, _JSON, json.dumps(payload, sort_keys=True).encode()
        limit = _int_param(
            params, "limit", TRACES_DEFAULT_LIMIT, TRACES_MAX_LIMIT
        )
        return 200, _JSON, traces.to_json(limit).encode()
    if path == "/obs/events":
        if event_bus is None:
            return 404, _JSON, json.dumps(
                {"error": "no event bus wired on this component"}
            ).encode()
        kind = _str_param(params, "kind")
        if kind is not None and kind not in EVENT_KINDS:
            # A typo'd kind would silently filter everything out; fail
            # the query instead, naming the valid kinds.
            return 400, _JSON, json.dumps({
                "error": f"unknown event kind {kind!r}",
                "valid_kinds": list(EVENT_KINDS),
            }, sort_keys=True).encode()
        limit = _int_param(
            params, "limit", EVENTS_DEFAULT_LIMIT, EVENTS_MAX_LIMIT
        )
        body_text = event_bus.to_json(
            limit=limit,
            kind=kind,
            user=_str_param(params, "user"),
            trace_id=_str_param(params, "trace_id"),
        )
        return 200, _JSON, body_text.encode()
    if path == "/obs/slo":
        if slo is None:
            return 404, _JSON, json.dumps(
                {"error": "no SLO engine wired on this component"}
            ).encode()
        report = slo.evaluate()
        return 200, _JSON, json.dumps(report.to_dict(), sort_keys=True).encode()
    if path == "/obs/refine":
        if refine is None:
            return 404, _JSON, json.dumps(
                {"error": "no refinement controller wired on this component"}
            ).encode()
        return 200, _JSON, json.dumps(
            refine.status(), sort_keys=True
        ).encode()
    if path == "/obs/scan":
        if scanner is None:
            return 404, _JSON, json.dumps(
                {"error": "no CVE scanner wired on this component"}
            ).encode()
        status = scanner.status()
        severity = _str_param(params, "severity")
        if severity is not None:
            from repro.scan.scanner import SEVERITIES
            if severity not in SEVERITIES:
                return 400, _JSON, json.dumps({
                    "error": f"unknown severity {severity!r}",
                    "valid_severities": list(SEVERITIES),
                }, sort_keys=True).encode()
            report = status.get("last_report")
            if report:
                report["findings"] = [
                    f for f in report["findings"]
                    if f["severity"] == severity
                ]
        return 200, _JSON, json.dumps(status, sort_keys=True).encode()
    if path == "/obs/profile":
        if profiler is None:
            return 404, _JSON, json.dumps(
                {"error": "no profiler wired on this component"}
            ).encode()
        if _str_param(params, "format") == "collapsed":
            return 200, _TEXT, profiler.collapsed().encode()
        top = _int_param(params, "top", 50, 1000)
        return 200, _JSON, json.dumps(
            profiler.stats(top=top), sort_keys=True
        ).encode()
    if path == "/obs/timeseries":
        if timeseries is None:
            return 404, _JSON, json.dumps(
                {"error": "no timeseries ring wired on this component"}
            ).encode()
        limit = _int_param(params, "limit", 0, 100_000) or None
        payload = timeseries.to_dict(
            series=_str_param(params, "series"),
            since=_float_param(params, "since", 0.0),
            limit=limit,
        )
        return 200, _JSON, json.dumps(payload, sort_keys=True).encode()
    return None
