"""KubeFence observability: metrics registry, request tracing, and the
``/metrics``/``/healthz`` HTTP surfaces.

A dependency-free telemetry layer threaded through the enforcement
stack (proxy -> validator engine -> API server) so the paper's
evaluation quantities -- where latency goes (Table IV), which requests
are denied and why (Table III), what the audit trail records
(Fig. 11) -- can be read off a Prometheus scrape instead of ad-hoc
counters.  ``REPRO_NO_OBS=1`` disables the layer entirely (the
baseline arm of the observability-overhead benchmark).
"""

from repro.obs.metrics import (
    CardinalityError,
    Counter,
    DEFAULT_LATENCY_BUCKETS_NS,
    Gauge,
    Histogram,
    MAX_LABEL_SETS,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    REGISTRY,
    delta,
    new_registry,
    obs_enabled,
)
from repro.obs.http import (
    METRICS_CONTENT_TYPE,
    OPENMETRICS_CONTENT_TYPE,
    obs_endpoint,
)
from repro.obs.profile import (
    NULL_PHASE_CLOCK,
    PHASES,
    PROFILER,
    PhaseClock,
    SamplingProfiler,
    TimeSeriesRing,
    new_phase_clock,
    phase_totals,
)
from repro.obs.tracing import (
    Span,
    Trace,
    TraceBuffer,
    TRACES,
    current_trace_id,
    new_trace_id,
    span,
    trace,
)

__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MAX_LABEL_SETS",
    "METRICS_CONTENT_TYPE",
    "MetricError",
    "MetricsRegistry",
    "NULL_PHASE_CLOCK",
    "NULL_REGISTRY",
    "NullRegistry",
    "OPENMETRICS_CONTENT_TYPE",
    "PHASES",
    "PROFILER",
    "PhaseClock",
    "REGISTRY",
    "SamplingProfiler",
    "Span",
    "TimeSeriesRing",
    "TRACES",
    "Trace",
    "TraceBuffer",
    "current_trace_id",
    "delta",
    "new_phase_clock",
    "new_registry",
    "new_trace_id",
    "obs_endpoint",
    "phase_totals",
    "obs_enabled",
    "span",
    "trace",
]
