"""Per-request phase attribution (``kubefence_phase_ns_total``).

The sampling profiler says where the *process* spends wall time; the
phase clock says where each *request* does.  Both hot paths (the
KubeFence proxy and the mini API server) stamp ``perf_counter_ns``
deltas into one of six phases:

======================  ====================================================
``authn``               identity extraction + authorization (proxy: the
                        forwarded-identity headers; API server: routing +
                        RBAC authorize)
``cache-probe``         decision-cache key + lookup (hits *and* the probe
                        cost of misses)
``validation``          the compiled policy-engine walk on a cache miss
``upstream``            the proxied upstream round trip (API server: the
                        admission chain + store commit it performs)
``telemetry``           event publication, shadow evaluation, audit, and
                        metric recording -- the in-process observability
                        cost the ROADMAP teardown tracks
``serialization``       request-body read/JSON parse + response encoding
======================  ====================================================

plus ``kubefence_request_wall_ns_total``, the handler-measured wall
time of the same requests, so coverage (``sum(phases)/wall``) is a
scrapeable honesty check -- the acceptance bar is >=90% for a
validated write.

Cost model: each phase attribute *is* the bound write handle's ``inc``
(per-thread lock-free cells on the sharded data plane, the classic
locked series under ``REPRO_NO_SHARDS=1``), so a phase stamp is one
attribute load plus one GIL-atomic float add.  Under ``REPRO_NO_OBS=1``
:func:`new_phase_clock` returns the shared :data:`NULL_PHASE_CLOCK`:
no metric, no cells, and ``enabled=False`` lets hot paths skip their
``perf_counter_ns`` reads entirely.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry, obs_enabled

__all__ = [
    "NULL_PHASE_CLOCK",
    "PHASES",
    "PHASE_METRIC",
    "PhaseClock",
    "WALL_METRIC",
    "new_phase_clock",
    "phase_totals",
]

#: The closed phase taxonomy (metric label values; attribute names use
#: ``_`` for ``-``).
PHASES = (
    "authn",
    "cache-probe",
    "validation",
    "upstream",
    "telemetry",
    "serialization",
)

PHASE_METRIC = "kubefence_phase_ns_total"
WALL_METRIC = "kubefence_request_wall_ns_total"

_PHASE_HELP = (
    "Wall nanoseconds attributed to each request-processing phase "
    "(authn, cache-probe, validation, upstream, telemetry, "
    "serialization)."
)
_WALL_HELP = (
    "Handler-measured wall nanoseconds of the same requests; "
    "sum(kubefence_phase_ns_total)/this is the attribution coverage."
)


def _noop(_amount: float = 1.0) -> None:
    pass


class NullPhaseClock:
    """Shared do-nothing clock: what ``REPRO_NO_OBS=1`` hot paths hold.

    Allocates no metric series and no per-thread cells; ``enabled`` is
    False so instrumented paths skip their clock reads.
    """

    enabled = False
    authn = staticmethod(_noop)
    cache_probe = staticmethod(_noop)
    validation = staticmethod(_noop)
    upstream = staticmethod(_noop)
    telemetry = staticmethod(_noop)
    serialization = staticmethod(_noop)
    wall = staticmethod(_noop)


NULL_PHASE_CLOCK = NullPhaseClock()


class PhaseClock:
    """Pre-bound phase write handles over one registry.

    Each attribute (``authn``, ``cache_probe``, ...) is the bound
    series' ``inc`` itself -- ``clock.validation(elapsed_ns)`` is the
    whole hot-path API.
    """

    __slots__ = (
        "enabled", "authn", "cache_probe", "validation", "upstream",
        "telemetry", "serialization", "wall",
    )

    def __init__(self, registry: Any, sharded: bool = True):
        self.enabled = True
        counter = registry.counter(PHASE_METRIC, _PHASE_HELP, labels=("phase",))
        bind = counter.local if sharded else counter.labels
        self.authn = bind(phase="authn").inc
        self.cache_probe = bind(phase="cache-probe").inc
        self.validation = bind(phase="validation").inc
        self.upstream = bind(phase="upstream").inc
        self.telemetry = bind(phase="telemetry").inc
        self.serialization = bind(phase="serialization").inc
        wall = registry.counter(WALL_METRIC, _WALL_HELP)
        self.wall = (wall.local() if sharded else wall).inc


def new_phase_clock(registry: Any, sharded: bool = True) -> Any:
    """A :class:`PhaseClock` over *registry*, or the shared
    :data:`NULL_PHASE_CLOCK` when telemetry is off (``REPRO_NO_OBS=1``
    or a null registry) -- the null path allocates nothing."""
    if registry is None or not obs_enabled():
        return NULL_PHASE_CLOCK
    if not isinstance(registry, MetricsRegistry):
        return NULL_PHASE_CLOCK
    return PhaseClock(registry, sharded=sharded)


def phase_totals(registry: Any) -> dict[str, float]:
    """``{phase: ns, ..., "wall": ns}`` read off *registry* (scrape-side
    helper for ``repro top`` and the coverage acceptance check)."""
    out: dict[str, float] = {}
    snapshot = registry.snapshot()
    for phase in PHASES:
        out[phase] = snapshot.get(f'{PHASE_METRIC}{{phase="{phase}"}}', 0.0)
    out["wall"] = snapshot.get(WALL_METRIC, 0.0)
    return out
