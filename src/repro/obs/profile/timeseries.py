"""In-process metrics time series (the ``/obs/timeseries`` ring).

A Prometheus deployment gets rate/quantile-over-time for free from its
scrape store; a dev loop or CI smoke run has no Prometheus.  This ring
closes the gap in-process: a daemon thread snapshots the component's
registry at a fixed interval (``REPRO_TS_INTERVAL``, default 1 s) and
appends one bounded point per tick (``REPRO_TS_RETENTION`` points,
default 300 -- five minutes at the default interval).

Each point stores **deltas** for counter/histogram series (so a point
reads as "what happened in this interval" -- divide by ``interval_s``
for a rate) and **absolute values** for gauges (breaker state, SLO
burn, shadow fraction -- level signals where a delta is meaningless).
Zero deltas are dropped per point, so an idle component's ring costs a
timestamp per tick.

``GET /obs/timeseries?series=&since=`` serves the ring; ``repro top``
renders it as a live terminal dashboard.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any

from repro.obs.metrics import Gauge, MetricsRegistry, obs_enabled

__all__ = [
    "DEFAULT_TS_INTERVAL_S",
    "DEFAULT_TS_RETENTION",
    "TS_INTERVAL_ENV",
    "TS_RETENTION_ENV",
    "TimeSeriesRing",
]

TS_RETENTION_ENV = "REPRO_TS_RETENTION"
TS_INTERVAL_ENV = "REPRO_TS_INTERVAL"

#: Ring size (points) and tick interval (seconds) defaults.
DEFAULT_TS_RETENTION = 300
DEFAULT_TS_INTERVAL_S = 1.0

#: Floor on the tick interval -- a sub-20ms ticker is a busy loop.
_MIN_INTERVAL_S = 0.02


def ts_retention() -> int:
    raw = os.environ.get(TS_RETENTION_ENV)
    if not raw:
        return DEFAULT_TS_RETENTION
    try:
        return max(2, min(int(raw), 100_000))
    except ValueError:
        return DEFAULT_TS_RETENTION


def ts_interval() -> float:
    raw = os.environ.get(TS_INTERVAL_ENV)
    if not raw:
        return DEFAULT_TS_INTERVAL_S
    try:
        return max(_MIN_INTERVAL_S, float(raw))
    except ValueError:
        return DEFAULT_TS_INTERVAL_S


class TimeSeriesRing:
    """Bounded ring of fixed-interval registry snapshot deltas."""

    def __init__(self, registry: Any, interval_s: float | None = None,
                 retention: int | None = None):
        self.registry = registry
        self.interval_s = interval_s if interval_s is not None else ts_interval()
        self.retention = retention if retention is not None else ts_retention()
        self._points: deque[dict[str, Any]] = deque(maxlen=self.retention)
        self._lock = threading.Lock()
        self._last: dict[str, float] = {}
        self._primed = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> bool:
        """Start the ticker thread; ``False`` when telemetry is off or
        the registry is a null (nothing to snapshot).  Idempotent."""
        if not obs_enabled() or not isinstance(self.registry, MetricsRegistry):
            return False
        with self._lock:
            if self._thread is not None:
                return True
            self._stop.clear()
            thread = threading.Thread(
                target=self._run, name="repro-timeseries", daemon=True
            )
            self._thread = thread
        thread.start()
        return True

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5)
        if thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("timeseries thread failed to stop within 5s")

    def _run(self) -> None:
        # Prime the baseline snapshot so the first recorded point holds
        # one interval's delta, not process-lifetime totals.
        self.tick(record=False)
        while not self._stop.wait(self.interval_s):
            self.tick()

    # -- ticking -----------------------------------------------------------

    def _gauge_keys(self) -> set[str]:
        keys: set[str] = set()
        collect = getattr(self.registry, "collect", None)
        if collect is None:
            return keys
        for metric in collect():
            if isinstance(metric, Gauge):
                snap: dict[str, float] = {}
                metric.snapshot_into(snap)
                keys.update(snap)
        return keys

    def tick(self, record: bool = True) -> dict[str, Any] | None:
        """Snapshot the registry and append one point (public so tests
        and synchronous callers can tick without the thread)."""
        snapshot = self.registry.snapshot()
        gauges = self._gauge_keys()
        with self._lock:
            last, primed = self._last, self._primed
            self._last, self._primed = snapshot, True
            if not record:
                return None
            values: dict[str, float] = {}
            for key, value in snapshot.items():
                if key in gauges:
                    values[key] = value
                else:
                    delta = value - last.get(key, 0.0) if primed else 0.0
                    if delta:
                        values[key] = delta
            point = {"ts": round(time.time(), 3), "values": values}
            self._points.append(point)
            return point

    # -- queries -----------------------------------------------------------

    def points(self, series: str | None = None, since: float = 0.0,
               limit: int | None = None) -> list[dict[str, Any]]:
        """Points newer than *since*, with values filtered to series
        names containing *series* (substring match on the full
        ``name{labels}`` key)."""
        with self._lock:
            selected = [p for p in self._points if p["ts"] > since]
        if limit is not None and limit >= 0:
            selected = selected[-limit:]
        if series is None:
            return [dict(p, values=dict(p["values"])) for p in selected]
        return [
            {
                "ts": p["ts"],
                "values": {
                    key: value for key, value in p["values"].items()
                    if series in key
                },
            }
            for p in selected
        ]

    def to_dict(self, series: str | None = None, since: float = 0.0,
                limit: int | None = None) -> dict[str, Any]:
        """The ``/obs/timeseries`` payload."""
        return {
            "interval_s": self.interval_s,
            "retention": self.retention,
            "running": self.running,
            "points": self.points(series=series, since=since, limit=limit),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)
