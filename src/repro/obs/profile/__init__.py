"""Continuous profiling and latency attribution (docs/OBSERVABILITY.md).

Three cooperating pieces close the performance-observability loop the
same way the analytics layer closed the security one:

- :mod:`~repro.obs.profile.sampler` -- a sampling wall-clock profiler
  (``sys._current_frames()`` at ``REPRO_PROFILE_HZ``) exporting
  flamegraph-ready collapsed stacks at ``/obs/profile``;
- :mod:`~repro.obs.profile.phases` -- a near-zero-cost per-request
  phase clock (``kubefence_phase_ns_total{phase=...}``) attributing
  every request's wall time to authn / cache-probe / validation /
  upstream / telemetry / serialization;
- :mod:`~repro.obs.profile.timeseries` -- a bounded in-process ring of
  registry snapshot deltas at ``/obs/timeseries``, the data source for
  the ``repro top`` live dashboard.
"""

from repro.obs.profile.phases import (
    NULL_PHASE_CLOCK,
    PHASES,
    PHASE_METRIC,
    PhaseClock,
    WALL_METRIC,
    new_phase_clock,
    phase_totals,
)
from repro.obs.profile.sampler import (
    DEFAULT_PROFILE_HZ,
    PROFILE_HZ_ENV,
    PROFILER,
    SamplingProfiler,
    profile_hz,
)
from repro.obs.profile.timeseries import (
    DEFAULT_TS_INTERVAL_S,
    DEFAULT_TS_RETENTION,
    TS_INTERVAL_ENV,
    TS_RETENTION_ENV,
    TimeSeriesRing,
)

__all__ = [
    "DEFAULT_PROFILE_HZ",
    "DEFAULT_TS_INTERVAL_S",
    "DEFAULT_TS_RETENTION",
    "NULL_PHASE_CLOCK",
    "PHASES",
    "PHASE_METRIC",
    "PROFILER",
    "PROFILE_HZ_ENV",
    "PhaseClock",
    "SamplingProfiler",
    "TS_INTERVAL_ENV",
    "TS_RETENTION_ENV",
    "TimeSeriesRing",
    "WALL_METRIC",
    "new_phase_clock",
    "phase_totals",
    "profile_hz",
]
