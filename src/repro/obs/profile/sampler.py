"""Sampling wall-clock profiler (continuous, flamegraph-ready).

A daemon thread walks :func:`sys._current_frames` at
``REPRO_PROFILE_HZ`` (default :data:`DEFAULT_PROFILE_HZ`, ``0`` turns
the sampler off) and folds every thread's stack into collapsed-stack
counts -- the `Brendan Gregg flamegraph format
<https://www.brendangregg.com/flamegraphs.html>`_: one line per
distinct stack, frames joined with ``;`` root-to-leaf, followed by the
sample count.  ``/obs/profile`` on both HTTP components serves the
table as collapsed text (``?format=collapsed``) or JSON with a
per-function self/total split.

Design points:

- **Wall-clock, not CPU.**  ``sys._current_frames()`` reports where
  every thread *is*, including threads blocked on sockets or locks --
  exactly what a request-serving data plane needs (a thread stuck in
  ``store.commit`` shows up even though it burns no CPU).
- **Bounded.**  The stack table caps at ``max_stacks`` distinct
  stacks; overflow samples are counted in ``dropped_samples`` instead
  of growing memory under pathological stack diversity.
- **Zero instrumentation cost.**  Nothing runs on the request path;
  the only cost is the sampler thread waking ``hz`` times per second
  and walking ~N thread stacks, which is what the
  ``BENCH_profile_overhead.json`` gate bounds at <5%.
- **Refcounted lifetime.**  Each HTTP component ``acquire()``\\ s the
  process-global :data:`PROFILER` on start and ``release()``\\ s it on
  stop, so the sampler runs exactly while something is serving and the
  test-suite leak checker sees no stray thread afterwards.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any

from repro.obs.metrics import obs_enabled

__all__ = [
    "DEFAULT_PROFILE_HZ",
    "PROFILE_HZ_ENV",
    "PROFILER",
    "SamplingProfiler",
    "profile_hz",
]

#: Environment variable selecting the sampling rate; ``0`` disables.
PROFILE_HZ_ENV = "REPRO_PROFILE_HZ"

#: Default sampling rate.  67 Hz is deliberately prime-ish (the
#: perf-tool convention, e.g. 99 Hz): a rate that does not divide one
#: second evenly cannot phase-lock onto periodic work such as a 1 s
#: time-series tick or a scanner loop, which would systematically
#: over- or under-sample it.
DEFAULT_PROFILE_HZ = 67.0

#: Cap on distinct collapsed stacks retained (overflow is counted).
DEFAULT_MAX_STACKS = 4096

#: Frames kept per stack, leaf-ward; deeper stacks are truncated at
#: the root with a ``(truncated)`` marker frame.
DEFAULT_MAX_DEPTH = 64


def profile_hz() -> float:
    """The configured sampling rate (``REPRO_PROFILE_HZ``, Hz)."""
    raw = os.environ.get(PROFILE_HZ_ENV)
    if raw is None or raw == "":
        return DEFAULT_PROFILE_HZ
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_PROFILE_HZ
    return max(0.0, value)


def _frame_label(frame: Any) -> str:
    """``module.function`` -- compact, aggregatable across lines."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{code.co_name}"


class SamplingProfiler:
    """Fold periodic ``sys._current_frames()`` walks into a bounded
    collapsed-stack table (root-to-leaf tuples -> sample counts)."""

    def __init__(self, hz: float | None = None,
                 max_stacks: int = DEFAULT_MAX_STACKS,
                 max_depth: int = DEFAULT_MAX_DEPTH):
        #: ``None`` means "read REPRO_PROFILE_HZ at start()".
        self._hz_override = hz
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.hz = 0.0  # actual rate while running
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, ...], int] = {}
        self._samples = 0          # stack samples recorded
        self._dropped = 0          # samples refused by the stack cap
        self._sweeps = 0           # _current_frames() walks performed
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._refs = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> bool:
        """Start the sampler thread; ``False`` when disabled
        (``REPRO_PROFILE_HZ=0`` or ``REPRO_NO_OBS=1``) or already
        running.  Idempotent."""
        if not obs_enabled():
            return False
        hz = self._hz_override if self._hz_override is not None else profile_hz()
        if hz <= 0:
            return False
        with self._lock:
            if self._thread is not None:
                return True
            self.hz = hz
            self._stop.clear()
            thread = threading.Thread(
                target=self._run, args=(1.0 / hz,),
                name="repro-profiler", daemon=True,
            )
            self._thread = thread
        thread.start()
        return True

    def stop(self) -> None:
        """Stop and join the sampler thread (retains counts)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5)
        if thread.is_alive():  # pragma: no cover - hang guard
            raise RuntimeError("profiler thread failed to stop within 5s")

    def acquire(self) -> bool:
        """Refcounted :meth:`start` -- components call this on their own
        ``start()`` so one sampler serves however many are live."""
        with self._lock:
            self._refs += 1
        return self.start()

    def release(self) -> None:
        """Drop one reference; the last release stops the sampler."""
        with self._lock:
            self._refs = max(0, self._refs - 1)
            last = self._refs == 0
        if last:
            self.stop()

    # -- sampling ----------------------------------------------------------

    def _run(self, interval: float) -> None:
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(skip_ident=me)

    def sample_once(self, skip_ident: int | None = None) -> int:
        """One walk over every live thread's stack; returns the number
        of stacks recorded.  Public so tests can sample synchronously
        without a running thread."""
        recorded = 0
        with self._lock:
            self._sweeps += 1
        # _current_frames() returns a fresh dict; iterating it is safe
        # even as threads come and go.
        for ident, frame in sys._current_frames().items():
            if ident == skip_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if frame is not None:
                stack.append("(truncated)")
            if not stack:
                continue
            stack.reverse()  # collapsed format is root -> leaf
            key = tuple(stack)
            with self._lock:
                count = self._counts.get(key)
                if count is None and len(self._counts) >= self.max_stacks:
                    self._dropped += 1
                    continue
                self._counts[key] = (count or 0) + 1
                self._samples += 1
            recorded += 1
        return recorded

    # -- export ------------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._dropped = 0
            self._sweeps = 0

    def _snapshot(self) -> tuple[dict[tuple[str, ...], int], int, int]:
        with self._lock:
            return dict(self._counts), self._samples, self._dropped

    def collapsed(self) -> str:
        """Flamegraph-ready collapsed text: ``a;b;c <count>`` lines,
        heaviest stacks first (feed straight into ``flamegraph.pl`` or
        speedscope)."""
        counts, _samples, _dropped = self._snapshot()
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def functions(self, top: int = 50) -> list[dict[str, Any]]:
        """Per-function self/total sample split, heaviest *self* first.

        ``total`` counts every sample in which the function appears
        anywhere on the stack (deduplicated, so recursion does not
        double-count); ``self`` counts samples where it is the leaf.
        """
        counts, _samples, _dropped = self._snapshot()
        self_counts: dict[str, int] = {}
        total_counts: dict[str, int] = {}
        for stack, count in counts.items():
            self_counts[stack[-1]] = self_counts.get(stack[-1], 0) + count
            for name in set(stack):
                total_counts[name] = total_counts.get(name, 0) + count
        ranked = sorted(
            total_counts,
            key=lambda name: (-self_counts.get(name, 0), -total_counts[name], name),
        )
        return [
            {
                "function": name,
                "self": self_counts.get(name, 0),
                "total": total_counts[name],
            }
            for name in ranked[: max(0, top)]
        ]

    def stats(self, top: int = 50) -> dict[str, Any]:
        """JSON-ready profile state (the ``/obs/profile`` payload)."""
        counts, samples, dropped = self._snapshot()
        stacks = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return {
            "running": self.running,
            "hz": self.hz if self.running else (
                self._hz_override if self._hz_override is not None else profile_hz()
            ),
            "samples": samples,
            "dropped_samples": dropped,
            "distinct_stacks": len(counts),
            "max_stacks": self.max_stacks,
            "functions": self.functions(top),
            "stacks": [
                {"stack": ";".join(stack), "count": count}
                for stack, count in stacks[: max(0, top)]
            ],
        }


#: Process-global sampler: one thread profiles every component in the
#: process (``sys._current_frames`` is process-wide anyway).
PROFILER = SamplingProfiler()
