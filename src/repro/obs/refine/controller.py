"""The audit-driven policy-refinement loop, end to end.

:class:`RefineController` glues the three refinement stages onto a
live proxy:

1. **profile** -- subscribes a
   :class:`~repro.obs.refine.profiler.FieldUsageProfiler` to the
   proxy's event bus and flips ``proxy.observe_fields`` so decision
   events carry their manifest field sample (off by default: the cost
   of extracting fields stays off the hot path until a refinement
   loop is running);
2. **refine** -- :meth:`build_candidate` runs the
   :class:`~repro.obs.refine.refiner.PolicyRefiner` over the usage
   matrix, yielding a tightened candidate revision plus its diff;
3. **shadow & gate** -- :meth:`start_shadow` installs a
   :class:`~repro.obs.refine.shadow.ShadowEvaluator` on the proxy
   (``proxy.shadow``); :meth:`verdict` combines divergence counters
   with the ``shadow-deny-rate`` SLI burn rate; :meth:`promote`
   installs the candidate through the proxy's normal
   ``install_validator`` path, so the revision bump invalidates the
   (sharded) decision cache atomically -- no stale decisions survive
   promotion.

The controller also *is* the ``/obs/refine`` payload: wire it as the
``refine=`` argument of :func:`repro.obs.http.obs_endpoint` and
:meth:`status` serves the usage matrix, candidate diff and shadow
verdict as one JSON document.
"""

from __future__ import annotations

import threading
from typing import Any

from .profiler import FieldUsageProfiler, UsageReport
from .refiner import CandidatePolicy, PolicyRefiner
from .shadow import DEFAULT_FRACTION, ShadowEvaluator, ShadowVerdict

__all__ = ["RefineController"]


class RefineController:
    """Drive profile -> refine -> shadow -> promote on a live proxy."""

    def __init__(
        self,
        proxy: Any,
        slo: Any | None = None,
        min_samples: int = 5,
        shadow_fraction: float = DEFAULT_FRACTION,
        shadow_min_samples: int = 25,
    ):
        self.proxy = proxy
        self.slo = slo if slo is not None else getattr(proxy, "slo", None)
        self.profiler = FieldUsageProfiler(validator=proxy.validator)
        self.refiner = PolicyRefiner(min_samples=min_samples)
        self.shadow_fraction = shadow_fraction
        self.shadow_min_samples = shadow_min_samples
        self.candidate: CandidatePolicy | None = None
        self.shadow: ShadowEvaluator | None = None
        self.promotions = 0
        self._lock = threading.Lock()
        self._unsubscribe = proxy.events.subscribe(self.profiler.ingest)
        # Decision events start carrying detail["fields"]/["values"].
        proxy.observe_fields = True
        proxy.refine = self

    def close(self) -> None:
        """Detach from the proxy (stop field observation + shadowing)."""
        self._unsubscribe()
        self.stop_shadow()
        self.proxy.observe_fields = False
        if getattr(self.proxy, "refine", None) is self:
            self.proxy.refine = None

    # -- stage 1: profile --------------------------------------------------

    def usage(self) -> UsageReport:
        """The observed-vs-permitted matrix against the *current*
        active policy (rebinds on every call: promotion moves the
        comparison baseline)."""
        self.profiler.bind(self.proxy.validator)
        return self.profiler.usage()

    # -- stage 2: refine ---------------------------------------------------

    def build_candidate(self) -> CandidatePolicy:
        """Synthesize (and remember) a tightened candidate revision."""
        usage = self.usage()
        with self._lock:
            self.candidate = self.refiner.refine(self.proxy.validator, usage)
            return self.candidate

    # -- stage 3: shadow + gate --------------------------------------------

    def start_shadow(self, fraction: float | None = None) -> ShadowEvaluator:
        """Begin shadow-evaluating live traffic against the candidate.

        Field observation pauses while the canary runs: the profiling
        phase already fed the candidate, and the canary's question is
        divergence, not usage -- keeping the phases exclusive keeps
        the hot-path cost of *each* phase separately bounded (see the
        ``bench_refine`` gate).  Observation resumes at
        :meth:`stop_shadow` / :meth:`promote`.
        """
        with self._lock:
            if self.candidate is None:
                raise RuntimeError(
                    "no candidate policy built; call build_candidate() first"
                )
            evaluator = ShadowEvaluator(
                self.candidate.validator,
                fraction=self.shadow_fraction if fraction is None else fraction,
                event_bus=self.proxy.events,
                metrics=self.proxy.stats.registry,
                min_samples=self.shadow_min_samples,
            )
            self.shadow = evaluator
        self.proxy.observe_fields = False
        self.proxy.shadow = evaluator
        return evaluator

    def stop_shadow(self) -> None:
        with self._lock:
            stopped = self.shadow is not None
            self.shadow = None
        if getattr(self.proxy, "shadow", None) is not None:
            self.proxy.shadow = None
        if stopped:
            # Back to the profiling phase for the next cycle.
            self.proxy.observe_fields = True

    def verdict(self) -> ShadowVerdict:
        """The promotion gate (burn-rate-aware when an SLO engine is
        wired)."""
        with self._lock:
            shadow = self.shadow
        if shadow is None:
            return ShadowVerdict(
                decision="hold",
                reasons=["shadow evaluation not running"],
            )
        slo_report = self.slo.evaluate() if self.slo is not None else None
        return shadow.verdict(slo_report)

    def promote(self, force: bool = False) -> int:
        """Install the candidate as the active policy.

        Refuses (raises ``RuntimeError``) unless the shadow verdict is
        ``promote`` -- pass ``force=True`` to override.  Returns the
        new active ``policy_revision``.  The swap goes through the
        proxy's ``install_validator``, which drops every cached
        decision; the revision-tagged sharded cache then re-keys on
        the promoted revision, so no pre-promotion decision can be
        served afterwards.
        """
        with self._lock:
            candidate = self.candidate
        if candidate is None:
            raise RuntimeError("no candidate policy to promote")
        if not force:
            verdict = self.verdict()
            if not verdict.promote:
                raise RuntimeError(
                    f"shadow verdict is {verdict.decision!r}, not 'promote': "
                    + "; ".join(verdict.reasons)
                )
        self.proxy.install_validator(candidate.validator)
        self.stop_shadow()
        with self._lock:
            self.candidate = None
            self.promotions += 1
        # The matrix restarts against the tightened baseline.
        self.profiler.bind(self.proxy.validator)
        return self.proxy.validator.policy_revision

    # -- /obs/refine -------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """The full refinement-loop state (the ``/obs/refine`` body)."""
        with self._lock:
            candidate = self.candidate
            shadow = self.shadow
        slo_report = self.slo.evaluate() if self.slo is not None else None
        out: dict[str, Any] = {
            "operator": self.proxy.validator.operator,
            "active_revision": self.proxy.validator.policy_revision,
            "observe_fields": bool(getattr(self.proxy, "observe_fields", False)),
            "promotions": self.promotions,
            "usage": self.usage().to_dict(),
            "candidate": candidate.to_dict() if candidate else None,
            "shadow": None,
        }
        if shadow is not None:
            out["shadow"] = {
                **shadow.snapshot(),
                "verdict": shadow.verdict(slo_report).to_dict(),
            }
        return out
