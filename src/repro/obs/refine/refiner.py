"""Candidate-policy synthesis from a field-usage report.

The :class:`PolicyRefiner` turns the profiler's refinement flags into a
**candidate** validator revision:

- permitted-but-never-exercised subtrees are pruned (an unused allowed
  field is pure attack surface -- exactly the specialization argument
  of KubeFence Sec. IV, applied a second time with runtime evidence);
- over-broad placeholders that only ever carried one constant are
  specialized down to that constant.

The candidate is **never installed directly**.  It is an input to the
:class:`~repro.obs.refine.shadow.ShadowEvaluator`, which must clear it
against live traffic before :class:`~repro.obs.refine.RefineController`
promotes it.  Structural safety rails regardless of what the profiler
observed:

- the root ``kind``/``apiVersion``/``metadata`` fields survive (every
  manifest carries them; pruning them would deny all traffic);
- any field a *required* security lock asserts survives (the lock
  says the field must be present -- the policy must keep allowing it);
- a kind with fewer than ``min_samples`` allowed requests is left
  untouched (no evidence, no refinement).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.enforcement import Validator
from repro.core.placeholders import to_paper_form

from .profiler import UsageReport

__all__ = ["CandidatePolicy", "PolicyRefiner", "RefinementAction"]

#: Root-level manifest fields every request carries.
PROTECTED_ROOTS = frozenset({"kind", "apiVersion", "metadata"})


@dataclass(frozen=True)
class RefinementAction:
    """One machine-readable entry of the candidate diff."""

    action: str       # "prune" | "specialize"
    kind: str
    path: str
    before: Any = None
    after: Any = None
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "action": self.action,
            "kind": self.kind,
            "path": self.path,
            "before": self.before,
            "after": self.after,
            "reason": self.reason,
        }


@dataclass
class CandidatePolicy:
    """A tightened validator revision plus the diff that produced it."""

    validator: Validator
    base_revision: int
    actions: list[RefinementAction] = field(default_factory=list)
    skipped_kinds: list[dict[str, Any]] = field(default_factory=list)

    @property
    def pruned(self) -> int:
        return sum(1 for a in self.actions if a.action == "prune")

    @property
    def specialized(self) -> int:
        return sum(1 for a in self.actions if a.action == "specialize")

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.validator.operator,
            "base_revision": self.base_revision,
            "candidate_revision": self.validator.policy_revision,
            "pruned": self.pruned,
            "specialized": self.specialized,
            "actions": [a.to_dict() for a in self.actions],
            "skipped_kinds": self.skipped_kinds,
        }

    def diff_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


class PolicyRefiner:
    """Synthesize a tightened candidate from usage evidence."""

    def __init__(self, min_samples: int = 5):
        self.min_samples = min_samples

    def refine(self, active: Validator, usage: UsageReport) -> CandidatePolicy:
        """Build the candidate; ``active`` is never mutated."""
        candidate = Validator(
            operator=active.operator,
            kinds=copy.deepcopy(active.kinds),
            locks=list(active.locks),
            meta=dict(active.meta),
        )
        # The candidate is the *next* revision: caches keyed on
        # (validator id, revision) must treat promoted decisions as a
        # different policy generation from the active one.
        candidate.policy_revision = active.policy_revision + 1
        lock_heads = {
            lock.path.split(".")[0]
            for lock in active.locks
            if lock.mode == "required"
        }
        actions: list[RefinementAction] = []
        skipped: list[dict[str, Any]] = []
        for row in usage.rows:
            tree = candidate.kinds.get(row.kind)
            if tree is None:
                continue
            if row.requests < self.min_samples:
                skipped.append({
                    "kind": row.kind,
                    "requests": row.requests,
                    "reason": f"below min_samples={self.min_samples}",
                })
                continue
            for path in row.unused_fields:
                pruned = self._prune(tree, path.split("."), lock_heads)
                if pruned is not None:
                    actions.append(RefinementAction(
                        action="prune",
                        kind=row.kind,
                        path=path,
                        before=_render(pruned),
                        reason="permitted but never exercised by live traffic",
                    ))
            for flag in row.overbroad:
                if flag["suggestion"] != "constant" or len(flag["values"]) != 1:
                    continue
                constant = flag["values"][0]
                replaced = self._specialize(
                    tree, flag["path"].split("."), constant
                )
                if replaced is not None:
                    actions.append(RefinementAction(
                        action="specialize",
                        kind=row.kind,
                        path=flag["path"],
                        before=to_paper_form(str(replaced)),
                        after=constant,
                        reason=(
                            f"placeholder only ever carried this value "
                            f"({flag['samples']} samples)"
                        ),
                    ))
        if actions:
            # Content changed relative to the deep copy: make sure no
            # stale compiled engine survives (deepcopy skipped it --
            # _compiled_engine is init=False -- but be explicit).
            candidate._compiled_engine = None
        return CandidatePolicy(
            validator=candidate,
            base_revision=active.policy_revision,
            actions=actions,
            skipped_kinds=skipped,
        )

    # -- tree surgery ------------------------------------------------------

    def _prune(
        self,
        tree: dict[str, Any],
        parts: list[str],
        lock_heads: set[str],
    ) -> Any:
        """Delete the subtree at *parts* from every matching list
        branch; returns the removed value (from the first match) or
        ``None`` when protected/absent."""
        if not parts:
            return None
        if parts[-1] in lock_heads:
            return None

        def drop(node: Any, segments: list[str], at_root: bool) -> Any:
            if isinstance(node, list):
                removed = None
                for child in node:
                    got = drop(child, segments, at_root)
                    if removed is None:
                        removed = got
                return removed
            if not isinstance(node, dict):
                return None
            key, tail = segments[0], segments[1:]
            if key not in node:
                return None
            if not tail:
                if at_root and key in PROTECTED_ROOTS:
                    return None
                return node.pop(key)
            return drop(node[key], tail, False)

        return drop(tree, parts, True)

    def _specialize(
        self, tree: dict[str, Any], parts: list[str], constant: Any
    ) -> Any:
        """Replace the placeholder leaf at *parts* with *constant*;
        returns the replaced placeholder or ``None``."""

        def visit(node: Any, segments: list[str]) -> Any:
            if isinstance(node, list):
                replaced = None
                for child in node:
                    got = visit(child, segments)
                    if replaced is None:
                        replaced = got
                return replaced
            if not isinstance(node, dict):
                return None
            key, tail = segments[0], segments[1:]
            if key not in node:
                return None
            if tail:
                return visit(node[key], tail)
            leaf = node[key]
            if isinstance(leaf, (dict, list)):
                return None
            node[key] = constant
            return leaf

        return visit(tree, parts)


def _render(node: Any) -> Any:
    """JSON-safe rendering of a pruned subtree for the diff."""
    if isinstance(node, dict):
        return {k: _render(v) for k, v in node.items()}
    if isinstance(node, list):
        return [_render(v) for v in node]
    if isinstance(node, str):
        return to_paper_form(node)
    return node
