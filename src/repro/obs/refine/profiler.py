"""Field-usage profiling over the security-event stream.

KubeFence's core idea is specializing the attack surface to the fields
a workload actually uses (Fig. 9 / Table I), but the generated policy
is an *upper bound*: it permits every field any chart variant could
render.  The :class:`FieldUsageProfiler` closes the loop at runtime --
it subscribes to the :class:`~repro.obs.analytics.events.EventBus` and
builds, per ``(identity, kind)``, the matrix of **observed** fields and
verbs against the **permitted** set from the bound validator
(:meth:`~repro.core.enforcement.Validator.allowed_field_paths`).

Two refinement signals fall out of the matrix:

- **permitted-but-never-exercised fields** -- subtrees the policy
  allows that no live write ever touched (candidates for pruning);
- **over-broad placeholders** -- ``⟨string⟩``-style wildcards where
  live traffic only ever carried one constant (or a small enum),
  candidates for specialization.

Decision events carry their manifest's field sample in
``detail["fields"]``/``detail["values"]`` only when a proxy has field
observation switched on (:class:`~repro.obs.refine.RefineController`
flips ``proxy.observe_fields``), so the profiling cost stays off the
hot path until a refinement loop is actually running.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core import placeholders
from repro.core.enforcement import SERVER_MANAGED_METADATA

__all__ = [
    "FieldUsageProfiler",
    "KindUsage",
    "UsageReport",
    "manifest_field_sample",
]

#: Bounds on the per-event field sample (a crafted manifest must not
#: inflate every decision event it generates).
MAX_SAMPLE_FIELDS = 256
MAX_SAMPLE_VALUES = 64
MAX_VALUE_CHARS = 120

#: Sentinel marking a field whose observed values exceeded the
#: distinct-value bound -- too diverse to specialize.
DIVERSE = "__diverse__"


def manifest_field_sample(
    body: Mapping[str, Any],
    max_fields: int = MAX_SAMPLE_FIELDS,
    max_values: int = MAX_SAMPLE_VALUES,
) -> tuple[list[str], dict[str, list[Any]]]:
    """``(field_paths, scalar_values)`` for one write body.

    Paths are dot-joined with list indexes stripped -- the same schema
    coordinates :meth:`Validator.allowed_field_paths` uses, so observed
    and permitted sets are directly comparable.  The ``status`` subtree
    and server-managed metadata are skipped (enforcement ignores them
    too).  Scalar leaf values are recorded for placeholder
    specialization, long strings truncated.
    """
    # Iterative walk with inlined bookkeeping: this runs on every
    # allowed write while a refinement loop is observing, so it is hot
    # enough for Python call overhead (recursion + a per-leaf helper)
    # to dominate.  The explicit stack halves the cost on a typical
    # Deployment manifest.
    seen: set[str] = set()
    seen_add = seen.add
    values: dict[str, list[Any]] = {}
    values_get = values.get
    #: remaining new-path budget; decremented on add so the hot loop
    #: never calls len() per key.
    room = max_fields
    value_room = max_values
    # Every scalar occurrence is recorded (bounded): a path repeated
    # across list elements (env vars, containers) with different
    # values must surface ALL of them, or the refiner would
    # "specialize" a placeholder to the first element's value and
    # start shadow-denying the rest of the list.
    #
    # Stack entries carry an under-metadata flag computed at push time
    # (exact: a dict is under metadata iff its own key is "metadata"),
    # avoiding a per-node endswith() probe.
    stack: list[tuple[Any, str, int, bool]] = [(body, "", 0, False)]
    stack_pop = stack.pop
    stack_append = stack.append
    while stack:
        node, prefix, depth, under_metadata = stack_pop()
        if room <= 0 or depth > 32:
            continue
        if type(node) is list:
            # Reversed pushes keep the LIFO pop in document order, so
            # repeated paths accumulate their values in occurrence
            # order (the refiner treats them as a set, but the sample
            # itself is part of the event payload contract).
            for child in reversed(node):
                if type(child) is dict or type(child) is list:
                    stack_append((child, prefix, depth + 1, under_metadata))
            continue
        pending: list[tuple[Any, str, int, bool]] = []
        for key, child in node.items():
            if not prefix and key == "status":
                continue
            if under_metadata and key in SERVER_MANAGED_METADATA:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            if path not in seen:
                if room <= 0:
                    break
                seen_add(path)
                room -= 1
            if type(child) is dict or type(child) is list:
                pending.append((child, path, depth + 1, key == "metadata"))
            else:
                bucket = values_get(path)
                if bucket is None:
                    if value_room <= 0:
                        continue
                    bucket = values[path] = []
                    value_room -= 1
                if len(bucket) >= 8:
                    continue
                if type(child) is str and len(child) > MAX_VALUE_CHARS:
                    child = child[:MAX_VALUE_CHARS]
                bucket.append(child)
        if pending:
            stack.extend(reversed(pending))
    return sorted(seen), values


def _placeholder_leaves(tree: Mapping[str, Any]) -> dict[str, str]:
    """``{dot_path: placeholder_type}`` for every whole-placeholder
    leaf in one kind's allowed-configuration tree."""
    out: dict[str, str] = {}

    def walk(node: Any, prefix: str) -> None:
        if isinstance(node, dict):
            for key, child in node.items():
                walk(child, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, list):
            for child in node:
                walk(child, prefix)
        else:
            ptype = placeholders.placeholder_type(node)
            if ptype is not None and prefix not in out:
                out[prefix] = ptype

    walk(tree, "")
    return out


class _Usage:
    """Mutable per-(identity, kind) cell of the matrix."""

    __slots__ = ("requests", "verbs", "fields")

    def __init__(self) -> None:
        self.requests = 0
        self.verbs: set[str] = set()
        self.fields: set[str] = set()


@dataclass
class KindUsage:
    """Aggregated observed-vs-permitted usage for one resource kind."""

    kind: str
    requests: int
    identities: list[str]
    verbs: list[str]
    observed_fields: list[str]
    permitted_fields: list[str]
    unused_fields: list[str]          # topmost permitted-but-never-exercised
    overbroad: list[dict[str, Any]]   # over-broad placeholder flags

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "requests": self.requests,
            "identities": self.identities,
            "verbs": self.verbs,
            "observed_fields": len(self.observed_fields),
            "permitted_fields": len(self.permitted_fields),
            "unused_fields": self.unused_fields,
            "overbroad_placeholders": self.overbroad,
        }


@dataclass
class UsageReport:
    """One profiling pass: the usage matrix plus refinement flags."""

    operator: str
    rows: list[KindUsage]
    identity_matrix: list[dict[str, Any]] = field(default_factory=list)
    events_seen: int = 0
    decisions: int = 0
    audits: int = 0

    @property
    def unused_total(self) -> int:
        return sum(len(row.unused_fields) for row in self.rows)

    @property
    def overbroad_total(self) -> int:
        return sum(len(row.overbroad) for row in self.rows)

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "events_seen": self.events_seen,
            "decisions": self.decisions,
            "audits": self.audits,
            "unused_fields_total": self.unused_total,
            "overbroad_placeholders_total": self.overbroad_total,
            "kinds": [row.to_dict() for row in self.rows],
            "identities": self.identity_matrix,
        }

    def render(self) -> str:
        lines = [f"field-usage matrix for {self.operator!r}", "=" * 64]
        for row in self.rows:
            lines.append(
                f"{row.kind:24s} requests={row.requests:5d}  "
                f"observed={len(row.observed_fields):4d}/"
                f"{len(row.permitted_fields):4d} permitted  "
                f"unused={len(row.unused_fields):3d}  "
                f"overbroad={len(row.overbroad):2d}"
            )
            for path in row.unused_fields[:6]:
                lines.append(f"    never exercised: {path}")
            if len(row.unused_fields) > 6:
                lines.append(
                    f"    ... and {len(row.unused_fields) - 6} more"
                )
            for flag in row.overbroad:
                lines.append(
                    f"    over-broad {flag['path']} ({flag['placeholder']}): "
                    f"{flag['samples']} sample(s), "
                    f"values {flag['values']!r} -> {flag['suggestion']}"
                )
        lines.append("-" * 64)
        lines.append(
            f"{self.unused_total} unused permitted field(s), "
            f"{self.overbroad_total} over-broad placeholder(s) flagged"
        )
        return "\n".join(lines)


class FieldUsageProfiler:
    """EventBus subscriber building the observed-vs-permitted matrix.

    Subscribe :meth:`ingest` to a live bus (``bus.subscribe(p.ingest)``)
    or replay a recorded stream with :meth:`ingest_many`.  Only
    **allowed** decisions count as usage -- a denied manifest's fields
    are attack shape, not workload shape.  Audit events contribute the
    verb/operator side of the matrix for identities whose traffic
    reaches the API server.
    """

    def __init__(
        self,
        validator: Any | None = None,
        max_distinct_values: int = 8,
        max_tracked_fields: int = 4096,
    ):
        self._lock = threading.Lock()
        self._matrix: dict[tuple[str, str], _Usage] = {}
        #: (kind, path) -> set of observed scalar values (or DIVERSE).
        self._values: dict[tuple[str, str], Any] = {}
        self._value_samples: dict[tuple[str, str], int] = {}
        self.max_distinct_values = max_distinct_values
        self.max_tracked_fields = max_tracked_fields
        self.events_seen = 0
        self.decisions = 0
        self.audits = 0
        self.validator = validator

    def bind(self, validator: Any) -> None:
        """(Re)bind the active policy the matrix is compared against."""
        with self._lock:
            self.validator = validator

    # -- ingest ------------------------------------------------------------

    def ingest(self, event: Any) -> None:
        """Consume one security event (bus-subscriber signature)."""
        kind = event.kind
        if kind == "decision":
            self._ingest_decision(event)
        elif kind == "audit":
            self._ingest_audit(event)

    def ingest_many(self, events: Iterable[Any]) -> None:
        for event in events:
            self.ingest(event)

    def _cell(self, user: str, resource: str) -> _Usage:
        key = (user or "?", resource)
        cell = self._matrix.get(key)
        if cell is None:
            cell = self._matrix[key] = _Usage()
        return cell

    def _ingest_decision(self, event: Any) -> None:
        if event.outcome != "allow" or not event.resource:
            return
        detail = event.detail or {}
        with self._lock:
            self.events_seen += 1
            self.decisions += 1
            cell = self._cell(event.user, event.resource)
            cell.requests += 1
            if event.verb:
                cell.verbs.add(event.verb)
            fields = detail.get("fields")
            if fields:
                cell.fields.update(fields)
            values = detail.get("values")
            if values:
                self._note_values(event.resource, values)

    def _ingest_audit(self, event: Any) -> None:
        if event.outcome != "allow" or not event.resource:
            return
        with self._lock:
            self.events_seen += 1
            self.audits += 1
            cell = self._cell(event.user, event.resource)
            if event.verb:
                cell.verbs.add(event.verb)

    def _note_values(self, kind: str, values: Mapping[str, Any]) -> None:
        for path, observed in values.items():
            key = (kind, path)
            # Back-compat: a scalar is one observation, a list is the
            # per-occurrence sample from manifest_field_sample.
            occurrences = observed if isinstance(observed, list) else [observed]
            self._value_samples[key] = (
                self._value_samples.get(key, 0) + len(occurrences)
            )
            bucket = self._values.get(key)
            if bucket is DIVERSE:
                continue
            if bucket is None:
                if len(self._values) >= self.max_tracked_fields:
                    continue
                bucket = self._values[key] = set()
            for value in occurrences:
                try:
                    bucket.add(value)
                except TypeError:  # unhashable (shouldn't happen for scalars)
                    continue
            if len(bucket) > self.max_distinct_values:
                self._values[key] = DIVERSE

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _topmost(paths: set[tuple[str, ...]]) -> list[tuple[str, ...]]:
        """Keep only paths whose parent is not itself in the set, so a
        whole unused subtree reports (and prunes) as one entry."""
        return sorted(p for p in paths if p[:-1] not in paths)

    def usage(self, min_value_samples: int = 3) -> UsageReport:
        """Evaluate the matrix against the bound validator."""
        with self._lock:
            validator = self.validator
            matrix = {
                key: (cell.requests, set(cell.verbs), set(cell.fields))
                for key, cell in self._matrix.items()
            }
            value_sets = dict(self._values)
            value_samples = dict(self._value_samples)
            events_seen, decisions, audits = (
                self.events_seen, self.decisions, self.audits
            )
        operator = getattr(validator, "operator", "") if validator else ""
        kinds = sorted({kind for (_user, kind) in matrix})
        rows: list[KindUsage] = []
        identity_matrix: list[dict[str, Any]] = []
        for kind in kinds:
            observed: set[str] = set()
            verbs: set[str] = set()
            identities: list[str] = []
            requests = 0
            for (user, row_kind), (n, row_verbs, row_fields) in matrix.items():
                if row_kind != kind:
                    continue
                identities.append(user)
                requests += n
                verbs |= row_verbs
                observed |= row_fields
            permitted_tuples = (
                validator.allowed_field_paths(kind) if validator else set()
            )
            permitted = {".".join(p) for p in permitted_tuples}
            observed_tuples = {tuple(p.split(".")) for p in observed}
            unused_tuples = {
                p for p in permitted_tuples
                if ".".join(p) not in observed
                # an observed descendant keeps every ancestor "used"
                and not any(o[: len(p)] == p for o in observed_tuples)
            }
            unused = [".".join(p) for p in self._topmost(unused_tuples)]
            overbroad = self._overbroad_for(
                kind, validator, observed, value_sets, value_samples,
                min_value_samples,
            )
            rows.append(KindUsage(
                kind=kind,
                requests=requests,
                identities=sorted(set(identities)),
                verbs=sorted(verbs),
                observed_fields=sorted(observed),
                permitted_fields=sorted(permitted),
                unused_fields=unused,
                overbroad=overbroad,
            ))
            for (user, row_kind), (n, row_verbs, row_fields) in sorted(
                matrix.items()
            ):
                if row_kind != kind:
                    continue
                identity_matrix.append({
                    "identity": user,
                    "kind": kind,
                    "requests": n,
                    "verbs": sorted(row_verbs),
                    "observed_fields": len(row_fields),
                    "permitted_fields": len(permitted),
                })
        return UsageReport(
            operator=operator,
            rows=rows,
            identity_matrix=identity_matrix,
            events_seen=events_seen,
            decisions=decisions,
            audits=audits,
        )

    def _overbroad_for(
        self,
        kind: str,
        validator: Any,
        observed: set[str],
        value_sets: Mapping[tuple[str, str], Any],
        value_samples: Mapping[tuple[str, str], int],
        min_value_samples: int,
    ) -> list[dict[str, Any]]:
        """Placeholder leaves whose live traffic was far narrower than
        the placeholder admits."""
        if validator is None:
            return []
        tree = validator.kinds.get(kind)
        if tree is None:
            return []
        out: list[dict[str, Any]] = []
        for path, ptype in sorted(_placeholder_leaves(tree).items()):
            if path not in observed:
                continue  # never exercised -> the pruning signal owns it
            bucket = value_sets.get((kind, path))
            samples = value_samples.get((kind, path), 0)
            if bucket is None or bucket is DIVERSE:
                continue
            if samples < min_value_samples or not bucket:
                continue
            distinct = sorted(bucket, key=repr)
            suggestion = "constant" if len(distinct) == 1 else "enum"
            out.append({
                "path": path,
                "placeholder": ptype,
                "values": distinct,
                "samples": samples,
                "suggestion": suggestion,
            })
        return out
