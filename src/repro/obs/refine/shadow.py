"""Shadow-mode canary evaluation of a candidate policy.

The :class:`ShadowEvaluator` sits next to the validation gate in both
proxies.  For a configurable fraction of live write traffic it
evaluates the request body against the **candidate** policy revision,
side by side with the active one.  The shadow verdict **never**
affects the served decision -- the active policy answers the client;
the candidate only accumulates evidence:

- ``kubefence_shadow_evaluations_total`` counts sampled bodies;
- ``kubefence_shadow_divergence_total{direction}`` counts
  disagreements: ``tighten`` (active allow, candidate deny -- the
  candidate would newly block this traffic) and ``loosen`` (active
  deny, candidate allow -- the candidate would newly admit it);
- every shadow evaluation publishes a ``kind="shadow"`` event, which
  feeds the ``shadow-deny-rate`` SLI so the
  :class:`~repro.obs.analytics.slo.SloEngine`'s multi-window burn
  rates gate promotion the same way they gate the active deny rate.

Sampling is per-thread 1-in-N head sampling (the same deterministic
discipline as ``EventBus.sampled``): thread-local counters mean no
shared atomic on the hot path, and ``fraction=1.0`` shadows every
write (tests), ``fraction=0.125`` is the production posture the
overhead benchmark gates at <5%.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.analytics.events import NULL_EVENT_BUS, SecurityEvent

__all__ = ["ShadowEvaluator", "ShadowVerdict"]

#: Default fraction of live writes shadow-evaluated.
DEFAULT_FRACTION = 0.125
#: Minimum sampled evaluations before a promote/rollback verdict.
DEFAULT_MIN_SAMPLES = 25
#: Allowed excess of shadow deny-fraction over active deny-fraction
#: before the candidate counts as widening deny divergence.
DEFAULT_TOLERANCE = 0.02

_PROMOTE, _HOLD, _ROLLBACK = "promote", "hold", "rollback"


@dataclass
class ShadowVerdict:
    """Promotion-gate outcome for one candidate revision."""

    decision: str                      # "promote" | "hold" | "rollback"
    reasons: list[str] = field(default_factory=list)
    widens_deny_divergence: bool = False
    evaluations: int = 0
    agreements: int = 0
    tighten: int = 0
    loosen: int = 0
    shadow_deny_fraction: float = 0.0
    active_deny_fraction: float = 0.0

    @property
    def promote(self) -> bool:
        return self.decision == _PROMOTE

    def to_dict(self) -> dict[str, Any]:
        return {
            "decision": self.decision,
            "reasons": self.reasons,
            "widens_deny_divergence": self.widens_deny_divergence,
            "evaluations": self.evaluations,
            "agreements": self.agreements,
            "divergence": {"tighten": self.tighten, "loosen": self.loosen},
            "shadow_deny_fraction": round(self.shadow_deny_fraction, 6),
            "active_deny_fraction": round(self.active_deny_fraction, 6),
        }


class ShadowEvaluator:
    """Evaluate a fraction of live traffic against a candidate policy."""

    def __init__(
        self,
        candidate: Any,
        fraction: float = DEFAULT_FRACTION,
        event_bus: Any = NULL_EVENT_BUS,
        metrics: Any | None = None,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        tolerance: float = DEFAULT_TOLERANCE,
    ):
        self.candidate = candidate
        self.fraction = fraction
        # 1-in-N head sampling; fraction <= 0 disables shadowing.
        self._stride = (
            0 if fraction <= 0 else max(1, round(1.0 / min(fraction, 1.0)))
        )
        self._tls = threading.local()
        self.events = event_bus
        self.min_samples = min_samples
        self.tolerance = tolerance
        self._lock = threading.Lock()
        self.evaluations = 0
        self.agreements = 0
        self.tighten = 0
        self.loosen = 0
        self.shadow_denies = 0
        self.active_denies = 0
        self._m_evals = None
        self._m_divergence = None
        if metrics is not None:
            self._m_evals = metrics.counter(
                "kubefence_shadow_evaluations_total",
                "Live write bodies shadow-evaluated against the candidate "
                "policy revision.",
            )
            self._m_divergence = metrics.counter(
                "kubefence_shadow_divergence_total",
                "Active/candidate disagreements, by direction (tighten = "
                "active allow but candidate deny; loosen = active deny but "
                "candidate allow).",
                labels=("direction",),
            )

    # -- hot path ----------------------------------------------------------

    def sampled(self) -> bool:
        """Deterministic per-thread 1-in-N gate (first hit samples)."""
        stride = self._stride
        if stride == 0:
            return False
        if stride == 1:
            return True
        count = getattr(self._tls, "count", 0)
        self._tls.count = count + 1
        return count % stride == 0

    def observe(
        self,
        body: Any,
        active_allowed: bool,
        user: str = "",
        verb: str = "",
    ) -> None:
        """Shadow-evaluate one live write (post-gate, pre-forward).

        Must never raise and never influences the served decision.
        """
        if not self.sampled():
            return
        try:
            result = self.candidate.validate(body)
            candidate_allowed = bool(result.allowed)
        except Exception:  # noqa: BLE001 - a broken candidate must not break serving
            return
        direction = None
        if active_allowed and not candidate_allowed:
            direction = "tighten"
        elif candidate_allowed and not active_allowed:
            direction = "loosen"
        with self._lock:
            self.evaluations += 1
            if direction is None:
                self.agreements += 1
            elif direction == "tighten":
                self.tighten += 1
            else:
                self.loosen += 1
            if not candidate_allowed:
                self.shadow_denies += 1
            if not active_allowed:
                self.active_denies += 1
        if self._m_evals is not None:
            self._m_evals.inc()
            if direction is not None:
                self._m_divergence.labels(direction=direction).inc()
        bus = self.events
        if bus is not None and bus.enabled:
            detail: dict[str, Any] = {
                "candidate_revision": getattr(
                    self.candidate, "policy_revision", 0
                ),
                "active_allowed": active_allowed,
            }
            if direction is not None:
                detail["direction"] = direction
            bus.publish(SecurityEvent(
                kind="shadow",
                source="shadow-evaluator",
                ts=time.time(),
                user=user,
                verb=verb,
                resource=str((body or {}).get("kind", "")),
                outcome="allow" if candidate_allowed else "deny",
                detail=detail,
            ))

    # -- reporting / gating ------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            evaluations = self.evaluations
            return {
                "fraction": self.fraction,
                "candidate_revision": getattr(
                    self.candidate, "policy_revision", 0
                ),
                "evaluations": evaluations,
                "agreements": self.agreements,
                "divergence": {
                    "tighten": self.tighten, "loosen": self.loosen,
                },
                "shadow_denies": self.shadow_denies,
                "active_denies": self.active_denies,
            }

    def verdict(self, slo_report: Any | None = None) -> ShadowVerdict:
        """Promotion gate: compare candidate behaviour with the active
        policy (and, when given, the shadow SLI's burn rate)."""
        with self._lock:
            evaluations = self.evaluations
            agreements = self.agreements
            tighten = self.tighten
            loosen = self.loosen
            shadow_denies = self.shadow_denies
            active_denies = self.active_denies
        shadow_frac = shadow_denies / evaluations if evaluations else 0.0
        active_frac = active_denies / evaluations if evaluations else 0.0
        reasons: list[str] = []
        widens = shadow_frac > active_frac + self.tolerance
        decision = _PROMOTE
        if evaluations < self.min_samples:
            decision = _HOLD
            reasons.append(
                f"insufficient shadow samples "
                f"({evaluations} < {self.min_samples})"
            )
        elif loosen > 0:
            decision = _ROLLBACK
            reasons.append(
                f"candidate would admit {loosen} request(s) the active "
                f"policy denies (loosen divergence)"
            )
        elif widens:
            decision = _ROLLBACK
            reasons.append(
                f"candidate widens deny divergence: shadow deny fraction "
                f"{shadow_frac:.4f} vs active {active_frac:.4f} "
                f"(+{self.tolerance:.2f} tolerance)"
            )
        if decision != _HOLD and slo_report is not None:
            shadow_alerts = [
                a for a in getattr(slo_report, "alerts", [])
                if getattr(a, "sli", "") == "shadow-deny-rate"
            ]
            if shadow_alerts:
                decision = _ROLLBACK
                reasons.append(
                    "shadow-deny-rate SLO burn alert firing: "
                    + "; ".join(a.summary() for a in shadow_alerts)
                )
        if decision == _PROMOTE:
            reasons.append(
                f"{evaluations} shadow evaluations, {agreements} in "
                f"agreement, {tighten} tightened, no loosening, deny "
                f"divergence within tolerance"
            )
        return ShadowVerdict(
            decision=decision,
            reasons=reasons,
            widens_deny_divergence=widens,
            evaluations=evaluations,
            agreements=agreements,
            tighten=tighten,
            loosen=loosen,
            shadow_deny_fraction=shadow_frac,
            active_deny_fraction=active_frac,
        )
