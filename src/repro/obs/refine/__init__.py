"""Audit-driven policy refinement (profiler, refiner, shadow canary).

The closed loop over a running KubeFence proxy:

    live traffic -> FieldUsageProfiler (observed vs permitted matrix)
                 -> PolicyRefiner     (tightened candidate + diff)
                 -> ShadowEvaluator   (canary on live traffic, no effect
                                       on served decisions)
                 -> promotion gate    (divergence + SLO burn rate)
                 -> install_validator (revision bump, caches drop)

:class:`RefineController` wires all of it onto a proxy and doubles as
the ``/obs/refine`` payload.  ``repro refine`` drives the loop from
the CLI.
"""

from repro.obs.refine.controller import RefineController
from repro.obs.refine.profiler import (
    FieldUsageProfiler,
    KindUsage,
    UsageReport,
    manifest_field_sample,
)
from repro.obs.refine.refiner import (
    CandidatePolicy,
    PolicyRefiner,
    RefinementAction,
)
from repro.obs.refine.shadow import ShadowEvaluator, ShadowVerdict

__all__ = [
    "CandidatePolicy",
    "FieldUsageProfiler",
    "KindUsage",
    "PolicyRefiner",
    "RefineController",
    "RefinementAction",
    "ShadowEvaluator",
    "ShadowVerdict",
    "UsageReport",
    "manifest_field_sample",
]
