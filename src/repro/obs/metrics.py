"""Dependency-free Prometheus-style metrics (the KubeFence telemetry
substrate).

The paper's evaluation (Table IV overhead, Fig. 11 audit events) needs
to know *where* latency and denials happen along the
proxy -> validator -> API-server chain.  This module provides the
measurement substrate: a thread-safe :class:`MetricsRegistry` holding
:class:`Counter`, :class:`Gauge`, and :class:`Histogram` instruments
with label sets, rendered in the Prometheus text exposition format
(scrapeable from the ``/metrics`` endpoints that
:mod:`repro.k8s.http` and the HTTP proxy expose).

Design points:

- **No dependencies.**  Everything is stdlib; the registry is safe for
  concurrent increments from the ThreadingHTTPServer worker threads.
- **Bounded cardinality.**  Each metric rejects more than
  :data:`MAX_LABEL_SETS` distinct label combinations with a clear
  :class:`CardinalityError` -- a mislabeled denial reason must fail
  loudly instead of silently eating memory under attack traffic.
- **Fixed exponential buckets.**  Histograms default to ns-resolution
  latency buckets (1us doubling to ~2s); quantiles are estimated by
  linear interpolation inside the owning bucket, the standard
  Prometheus ``histogram_quantile`` scheme.
- **Windowed reads.**  ``snapshot()`` returns a flat
  ``{series: value}`` dict and :func:`delta` diffs two snapshots, so
  benchmarks can measure a window instead of absolute counters.
- **Escape hatch.**  ``REPRO_NO_OBS=1`` disables the layer: registries
  become no-op nulls (mirroring PR 1's ``REPRO_NO_COMPILE``), which the
  observability-overhead benchmark uses as its baseline arm.
"""

from __future__ import annotations

import logging
import os
import re
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterator

logger = logging.getLogger(__name__)

__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "DROPPED_SERIES_METRIC",
    "Gauge",
    "Histogram",
    "MAX_LABEL_SETS",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "delta",
    "new_registry",
    "obs_enabled",
    "set_exemplar_trace_provider",
]

#: Environment variable disabling the observability layer entirely.
OBS_ENV = "REPRO_NO_OBS"

#: Per-metric cap on distinct label-value combinations.
MAX_LABEL_SETS = 64

#: Self-metric counting label sets refused by the cardinality guard,
#: labeled by the offending metric.  Without it a guard trip is only
#: visible to the caller that got the CardinalityError -- the scrape
#: side would never learn that series are being dropped.
DROPPED_SERIES_METRIC = "repro_label_sets_dropped_total"

#: ns-resolution exponential latency buckets: 1us doubling to ~2.1s.
DEFAULT_LATENCY_BUCKETS_NS: tuple[float, ...] = tuple(
    1_000.0 * (2.0**i) for i in range(22)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# Exemplar capture needs the active trace id, but repro.obs.tracing
# imports this module -- so the provider is injected: tracing registers
# ``current_trace_id`` here at import time.  Until then (or with the
# tracing layer absent) exemplars are simply not recorded.
def _no_trace() -> "str | None":
    return None


_TRACE_PROVIDER: Callable[[], "str | None"] = _no_trace


def set_exemplar_trace_provider(provider: Callable[[], "str | None"]) -> None:
    """Register the callable that yields the active trace id (exemplar
    capture); called by :mod:`repro.obs.tracing` at import."""
    global _TRACE_PROVIDER
    _TRACE_PROVIDER = provider


# ``os.environ.get`` costs ~1us per call (Mapping.get -> __getitem__ ->
# decode); the underlying ``_data`` dict probe is ~30ns.  obs_enabled()
# sits on the per-request path (one trace per request), so the fast
# probe matters; writes through ``os.environ[...]``/``.pop`` keep
# ``_data`` in sync, which is how the escape hatch is toggled.
try:
    _ENV_DATA: Any = os.environ._data  # type: ignore[attr-defined]
    _OBS_KEY: Any = os.environ.encodekey(OBS_ENV)  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - non-CPython fallback
    _ENV_DATA = None
    _OBS_KEY = OBS_ENV


def obs_enabled() -> bool:
    """Whether telemetry is recorded (default on; ``REPRO_NO_OBS=1``
    is the escape hatch, mirroring ``REPRO_NO_COMPILE``)."""
    if _ENV_DATA is not None:
        return not _ENV_DATA.get(_OBS_KEY)
    return not os.environ.get(OBS_ENV)


class MetricError(ValueError):
    """Metric misuse: bad name, label mismatch, or type collision."""


class CardinalityError(MetricError):
    """A metric exceeded :data:`MAX_LABEL_SETS` distinct label sets."""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(names, values)) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class _Bound:
    """An instrument bound to one concrete label-value tuple."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "_Metric", key: tuple[str, ...]):
        self._metric = metric
        self._key = key

    def local(self) -> Any:
        """A lock-free per-thread write handle for this series (see
        :meth:`_Metric.local`)."""
        return self._metric._local_for(self._key)

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, -amount)

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)

    @property
    def value(self) -> float:
        return self._metric._value(self._key)

    def quantile(self, q: float) -> float:
        return self._metric._quantile(self._key, q)

    @property
    def sum(self) -> float:
        return self._metric._sum_of(self._key)

    @property
    def count(self) -> float:
        return self._metric._count_of(self._key)


class _Metric:
    """Common storage: one series per label-value tuple."""

    kind = "untyped"

    #: Per-kind local-handle class (thread-local accumulation cells);
    #: ``None`` means the kind has no lock-free write path.
    _local_cls: Any = None

    def __init__(self, name: str, help: str, label_names: tuple[str, ...],
                 lock: threading.RLock, max_series: int = MAX_LABEL_SETS,
                 registry: "MetricsRegistry | None" = None):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label) or label == "le":
                raise MetricError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self._registry = registry
        self._drop_warned = False
        self._lock = lock
        self._series: dict[tuple[str, ...], Any] = {}
        #: key -> list of local handles whose per-thread cells fold
        #: into the stored series at read time (scrape-time merge).
        self._locals: dict[tuple[str, ...], list[Any]] = {}
        if not self.label_names:
            self._series[()] = self._new_series()

    # -- series management -------------------------------------------------

    def _new_series(self) -> Any:
        raise NotImplementedError

    def _series_for(self, key: tuple[str, ...]) -> Any:
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self._record_dropped(key)
                raise CardinalityError(
                    f"metric {self.name!r} already has {len(self._series)} label "
                    f"sets (cap {self.max_series}); refusing to create "
                    f"{dict(zip(self.label_names, key))!r} -- label values must "
                    "be drawn from a bounded set"
                )
            series = self._new_series()
            self._series[key] = series
        return series

    def _record_dropped(self, key: tuple[str, ...]) -> None:
        """Make a cardinality-guard trip visible on the scrape side:
        count the refused series in :data:`DROPPED_SERIES_METRIC` and
        warn once per metric.  Called under the registry lock (an
        RLock, so creating the self-metric here cannot deadlock)."""
        registry = self._registry
        if registry is not None and self.name != DROPPED_SERIES_METRIC:
            registry.counter(
                DROPPED_SERIES_METRIC,
                "Label sets refused by the per-metric cardinality guard, "
                "by offending metric.",
                labels=("metric",),
            ).labels(metric=self.name).inc()
        if not self._drop_warned:
            self._drop_warned = True
            logger.warning(
                "metric %r hit its label-set cap (%d); dropping new series %r "
                "(further drops counted in %s, not logged)",
                self.name, self.max_series,
                dict(zip(self.label_names, key)), DROPPED_SERIES_METRIC,
            )

    def labels(self, **labels: str) -> _Bound:
        """The series for one concrete label-value combination."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            self._series_for(key)  # cardinality guard fires at creation
        return _Bound(self, key)

    def local(self, **labels: str) -> Any:
        """A **lock-free** write handle for one series.

        The handle accumulates into per-thread cells (one plain list
        slot per writer thread, no lock, no CAS -- the GIL makes the
        float add atomic enough) and the owning metric folds every
        cell in lazily whenever the series is *read*: ``expose()``,
        ``snapshot()``, ``value``/``sum``/``count``/``quantile``, and
        ``merge_from`` all see stored + pending-local.  This is the
        hot-path layout of the sharded data plane: worker threads
        record telemetry with zero shared-state contention and the
        ``/metrics`` scrape pays the merge.

        Caveats: ``reset()`` concurrent with active writers may lose
        in-flight increments (each cell is zeroed without stopping its
        owner), and a scrape racing a histogram observation may see
        ``sum``/``count`` momentarily skewed by one sample.  Both
        settle at quiescence; neither can corrupt state.
        """
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        return self._local_for(key)

    def _local_for(self, key: tuple[str, ...]) -> Any:
        cls = self._local_cls
        if cls is None:
            raise MetricError(
                f"{self.kind} {self.name!r} does not support local() handles"
            )
        handle = cls(self, key)
        with self._lock:
            self._series_for(key)  # cardinality guard + stored cell
            self._locals.setdefault(key, []).append(handle)
        return handle

    def _local_totals(self, key: tuple[str, ...]) -> float:
        """Sum of all pending per-thread cells for *key* (counters)."""
        handles = self._locals.get(key)
        if not handles:
            return 0.0
        return sum(cell[0] for handle in handles for cell in handle._cells)

    def _zero_locals(self) -> None:
        for handles in self._locals.values():
            for handle in handles:
                handle._zero()

    def _require_unlabeled(self) -> tuple[str, ...]:
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} has labels {list(self.label_names)}; "
                "use .labels(...)"
            )
        return ()

    # -- direct (unlabeled) API -------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._inc(self._require_unlabeled(), amount)

    def dec(self, amount: float = 1.0) -> None:
        self._inc(self._require_unlabeled(), -amount)

    def set(self, value: float) -> None:
        self._set(self._require_unlabeled(), value)

    def observe(self, value: float) -> None:
        self._observe(self._require_unlabeled(), value)

    @property
    def value(self) -> float:
        return self._value(self._require_unlabeled())

    def quantile(self, q: float) -> float:
        return self._quantile(self._require_unlabeled(), q)

    @property
    def sum(self) -> float:
        return self._sum_of(self._require_unlabeled())

    @property
    def count(self) -> float:
        return self._count_of(self._require_unlabeled())

    # -- per-kind hooks ----------------------------------------------------

    def _inc(self, key: tuple[str, ...], amount: float) -> None:
        raise MetricError(f"{self.kind} {self.name!r} does not support inc()")

    def _set(self, key: tuple[str, ...], value: float) -> None:
        raise MetricError(f"{self.kind} {self.name!r} does not support set()")

    def _observe(self, key: tuple[str, ...], value: float) -> None:
        raise MetricError(f"{self.kind} {self.name!r} does not support observe()")

    def _value(self, key: tuple[str, ...]) -> float:
        with self._lock:
            series = self._series.get(key)
            return 0.0 if series is None else float(series)

    def _quantile(self, key: tuple[str, ...], q: float) -> float:
        raise MetricError(f"{self.kind} {self.name!r} has no quantiles")

    def _sum_of(self, key: tuple[str, ...]) -> float:
        return self._value(key)

    def _count_of(self, key: tuple[str, ...]) -> float:
        raise MetricError(f"{self.kind} {self.name!r} has no sample count")

    def _reset(self) -> None:
        with self._lock:
            for key in self._series:
                self._series[key] = self._new_series()
            self._zero_locals()

    # -- export ------------------------------------------------------------

    def _samples(self) -> Iterator[tuple[str, str, float]]:
        """Yield (suffix, rendered_labels, value) under the lock."""
        for key in sorted(self._series):
            yield "", _render_labels(self.label_names, key), float(self._series[key])

    def _om_lines(self) -> Iterator[str]:
        """OpenMetrics sample lines (histograms override to attach
        exemplars); caller holds the lock."""
        for suffix, labels, value in self._samples():
            yield f"{self.name}{suffix}{labels} {_format_value(value)}"

    def expose(self, openmetrics: bool = False) -> str:
        family = self.name
        if openmetrics and self.kind == "counter" and family.endswith("_total"):
            # OpenMetrics names the *family* without the _total suffix;
            # the sample lines keep it.
            family = family[: -len("_total")]
        lines = [f"# HELP {family} {self.help}", f"# TYPE {family} {self.kind}"]
        with self._lock:
            if openmetrics:
                lines.extend(self._om_lines())
            else:
                for suffix, labels, value in self._samples():
                    lines.append(
                        f"{self.name}{suffix}{labels} {_format_value(value)}"
                    )
        return "\n".join(lines)

    def snapshot_into(self, out: dict[str, float]) -> None:
        with self._lock:
            for suffix, labels, value in self._samples():
                out[f"{self.name}{suffix}{labels}"] = value


class _LocalCounter:
    """Per-thread accumulation cells for one counter series.

    Writes touch only the calling thread's cell; the owning metric
    folds every cell in at read time (:meth:`_Metric.local`).
    """

    __slots__ = ("_metric", "_key", "_threads", "_cells")

    def __init__(self, metric: "_Metric", key: tuple[str, ...]):
        self._metric = metric
        self._key = key
        self._threads = threading.local()
        self._cells: list[list[float]] = []
        # Bind the constructing thread's cell eagerly: handles are
        # created at instrument-construction time (ProxyStats /
        # APIServer __init__), so the common writer's first inc pays
        # no lock -- only threads that join later bind lazily.
        self._bind_cell()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter {self._metric.name!r} cannot decrease")
        try:
            cell = self._threads.cell
        except AttributeError:
            cell = self._bind_cell()
        cell[0] += amount

    def _bind_cell(self) -> list[float]:
        cell = [0.0]
        with self._metric._lock:
            self._cells.append(cell)
        self._threads.cell = cell
        return cell

    def _zero(self) -> None:
        for cell in self._cells:
            cell[0] = 0.0

    # Read-side conveniences fold across *all* writers of the series.
    @property
    def value(self) -> float:
        return self._metric._value(self._key)


class _LocalHistogram:
    """Per-thread ``[bucket_counts, sum, count]`` cells for one
    histogram series, folded at read time."""

    __slots__ = ("_metric", "_key", "_bounds", "_threads", "_cells", "_exslots")

    def __init__(self, metric: "Histogram", key: tuple[str, ...]):
        self._metric = metric
        self._key = key
        self._bounds = metric.bounds
        self._threads = threading.local()
        self._cells: list[list[Any]] = []
        self._exslots = metric._exemplar_slots(key)
        self._bind_cell()  # constructing thread binds eagerly (see _LocalCounter)

    def observe(self, value: float) -> None:
        try:
            cell = self._threads.cell
        except AttributeError:
            cell = self._bind_cell()
        idx = bisect_left(self._bounds, value)
        cell[0][idx] += 1
        cell[1] += value
        cell[2] += 1
        trace_id = _TRACE_PROVIDER()
        if trace_id:
            # GIL-atomic slot assignment: latest traced observation per
            # bucket (emitted only in OpenMetrics exposition).
            self._exslots[idx] = (float(value), trace_id, time.time())

    def _bind_cell(self) -> list[Any]:
        cell = [[0] * (len(self._bounds) + 1), 0.0, 0]
        with self._metric._lock:
            self._cells.append(cell)
        self._threads.cell = cell
        return cell

    def _zero(self) -> None:
        for cell in self._cells:
            cell[0] = [0] * (len(self._bounds) + 1)
            cell[1] = 0.0
            cell[2] = 0

    @property
    def sum(self) -> float:
        return self._metric._sum_of(self._key)

    @property
    def count(self) -> float:
        return self._metric._count_of(self._key)

    def quantile(self, q: float) -> float:
        return self._metric._quantile(self._key, q)


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"
    _local_cls = _LocalCounter

    def _new_series(self) -> float:
        return 0.0

    def _inc(self, key: tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        series = self._series
        with self._lock:
            # Fast path: the series almost always exists already (bound
            # instruments create it at labels() time).
            if key in series:
                series[key] += amount
            else:
                series[key] = self._series_for(key) + amount

    def _value(self, key: tuple[str, ...]) -> float:
        with self._lock:
            series = self._series.get(key)
            stored = 0.0 if series is None else float(series)
            return stored + self._local_totals(key)

    def _samples(self) -> Iterator[tuple[str, str, float]]:
        for key in sorted(self._series):
            yield (
                "",
                _render_labels(self.label_names, key),
                float(self._series[key]) + self._local_totals(key),
            )

    def merge_from(self, other: "Counter") -> None:
        with other._lock:
            items = [
                (key, value + other._local_totals(key))
                for key, value in other._series.items()
            ]
        with self._lock:
            for key, value in items:
                self._series[key] = self._series_for(key) + value


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_series(self) -> float:
        return 0.0

    def _inc(self, key: tuple[str, ...], amount: float) -> None:
        with self._lock:
            self._series[key] = self._series_for(key) + amount

    def _set(self, key: tuple[str, ...], value: float) -> None:
        with self._lock:
            self._series_for(key)
            self._series[key] = float(value)

    def merge_from(self, other: "Gauge") -> None:
        with other._lock:
            items = list(other._series.items())
        with self._lock:
            for key, value in items:
                self._series[key] = self._series_for(key) + value


class Histogram(_Metric):
    """Cumulative histogram over fixed exponential buckets.

    Per-series state is ``[bucket_counts, sum, count]`` where
    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` minus the
    lower buckets (i.e. non-cumulative internally; cumulated on
    export, matching Prometheus ``_bucket{le=...}`` semantics).  The
    final slot is the ``+Inf`` overflow bucket.
    """

    kind = "histogram"
    _local_cls = _LocalHistogram

    def __init__(self, name: str, help: str, label_names: tuple[str, ...],
                 lock: threading.RLock, buckets: tuple[float, ...] | None = None,
                 max_series: int = MAX_LABEL_SETS,
                 registry: "MetricsRegistry | None" = None):
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS_NS))
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket bound")
        self.bounds = bounds
        #: key -> per-bucket exemplar slots: ``(value, trace_id, ts)``
        #: or None, latest traced observation per bucket.
        self._exemplars: dict[tuple[str, ...], list[Any]] = {}
        super().__init__(name, help, label_names, lock, max_series, registry)

    def _exemplar_slots(self, key: tuple[str, ...]) -> list[Any]:
        slots = self._exemplars.get(key)
        if slots is None:
            with self._lock:
                slots = self._exemplars.setdefault(
                    key, [None] * (len(self.bounds) + 1)
                )
        return slots

    def _new_series(self) -> list[Any]:
        return [[0] * (len(self.bounds) + 1), 0.0, 0]

    def _observe(self, key: tuple[str, ...], value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series_for(key)
            series[0][idx] += 1
            series[1] += value
            series[2] += 1
        trace_id = _TRACE_PROVIDER()
        if trace_id:
            self._exemplar_slots(key)[idx] = (float(value), trace_id, time.time())

    def _folded(self, key: tuple[str, ...]) -> list[Any]:
        """``[counts, sum, count]`` snapshot of stored + pending-local
        state for *key*.  Caller holds the lock."""
        series = self._series.get(key)
        if series is None:
            folded = self._new_series()
        else:
            folded = [series[0][:], series[1], series[2]]
        handles = self._locals.get(key)
        if handles:
            counts = folded[0]
            for handle in handles:
                for cell in handle._cells:
                    for idx, n in enumerate(cell[0]):
                        if n:
                            counts[idx] += n
                    folded[1] += cell[1]
                    folded[2] += cell[2]
        return folded

    def _value(self, key: tuple[str, ...]) -> float:
        return self._sum_of(key)

    def _sum_of(self, key: tuple[str, ...]) -> float:
        with self._lock:
            return float(self._folded(key)[1])

    def _count_of(self, key: tuple[str, ...]) -> float:
        with self._lock:
            return float(self._folded(key)[2])

    def _quantile(self, key: tuple[str, ...], q: float) -> float:
        """Prometheus-style estimate: locate the owning bucket by rank
        and interpolate linearly between its bounds."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} out of [0, 1]")
        with self._lock:
            counts, _total_sum, count = self._folded(key)
            if count == 0:
                return 0.0
        rank = q * count
        cumulative = 0.0
        for idx, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if idx >= len(self.bounds):  # +Inf bucket: clamp to last bound
                    return float(self.bounds[-1])
                lower = self.bounds[idx - 1] if idx else 0.0
                upper = self.bounds[idx]
                within = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * min(max(within, 0.0), 1.0)
        return float(self.bounds[-1])

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise MetricError(f"histogram {self.name!r}: bucket bounds differ")
        with other._lock:
            items = [(k, other._folded(k)) for k in other._series]
        with self._lock:
            for key, (counts, total, count) in items:
                series = self._series_for(key)
                for idx, n in enumerate(counts):
                    series[0][idx] += n
                series[1] += total
                series[2] += count

    def _samples(self) -> Iterator[tuple[str, str, float]]:
        for key in sorted(self._series):
            counts, total, count = self._folded(key)
            cumulative = 0
            for idx, bound in enumerate(self.bounds):
                cumulative += counts[idx]
                yield (
                    "_bucket",
                    _render_labels(self.label_names, key,
                                   (("le", _format_value(bound)),)),
                    float(cumulative),
                )
            yield (
                "_bucket",
                _render_labels(self.label_names, key, (("le", "+Inf"),)),
                float(count),
            )
            yield "_sum", _render_labels(self.label_names, key), float(total)
            yield "_count", _render_labels(self.label_names, key), float(count)

    @staticmethod
    def _format_exemplar(exemplar: tuple[float, str, float]) -> str:
        value, trace_id, ts = exemplar
        return (
            f' # {{trace_id="{_escape_label_value(trace_id)}"}} '
            f"{_format_value(value)} {ts:.3f}"
        )

    def _om_lines(self) -> Iterator[str]:
        """Bucket lines carry their exemplar (`` # {trace_id="..."}
        value ts``); sum/count lines are plain.  Caller holds the
        lock."""
        name = self.name
        for key in sorted(self._series):
            counts, total, count = self._folded(key)
            slots = self._exemplars.get(key)
            cumulative = 0
            for idx, bound in enumerate(self.bounds):
                cumulative += counts[idx]
                labels = _render_labels(self.label_names, key,
                                        (("le", _format_value(bound)),))
                line = f"{name}_bucket{labels} {_format_value(float(cumulative))}"
                exemplar = slots[idx] if slots else None
                if exemplar is not None:
                    line += self._format_exemplar(exemplar)
                yield line
            labels = _render_labels(self.label_names, key, (("le", "+Inf"),))
            line = f"{name}_bucket{labels} {_format_value(float(count))}"
            exemplar = slots[-1] if slots else None
            if exemplar is not None:
                line += self._format_exemplar(exemplar)
            yield line
            plain = _render_labels(self.label_names, key)
            yield f"{name}_sum{plain} {_format_value(float(total))}"
            yield f"{name}_count{plain} {_format_value(float(count))}"

    def exemplar_for(self, slowest: bool = True, **labels: str) -> \
            "tuple[float, str, float] | None":
        """The exemplar joining this histogram to a trace: with
        *slowest* (default) the highest occupied bucket's, else the
        lowest.  ``None`` when no traced observation was captured."""
        key = tuple(str(labels[n]) for n in self.label_names) if labels else ()
        slots = self._exemplars.get(key)
        if not slots:
            return None
        ordered = reversed(slots) if slowest else iter(slots)
        for exemplar in ordered:
            if exemplar is not None:
                return exemplar
        return None


class MetricsRegistry:
    """A named collection of metrics with text exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    an existing name with matching type and labels returns the same
    instrument (so façades and handlers can re-derive instruments
    cheaply); a mismatch raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    # -- instrument factories ---------------------------------------------

    def _get_or_create(self, cls: type, name: str, help: str,
                       labels: tuple[str, ...], **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(labels):
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {list(existing.label_names)}"
                    )
                if cls is Histogram and kwargs.get("buckets") is not None \
                        and tuple(sorted(kwargs["buckets"])) != existing.bounds:
                    raise MetricError(f"histogram {name!r}: bucket bounds differ")
                return existing
            metric = cls(name, help, tuple(labels), self._lock,
                         registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = (),
                max_series: int = MAX_LABEL_SETS) -> Counter:
        return self._get_or_create(Counter, name, help, labels, max_series=max_series)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = (),
              max_series: int = MAX_LABEL_SETS) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels, max_series=max_series)

    def histogram(self, name: str, help: str = "", labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None,
                  max_series: int = MAX_LABEL_SETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets, max_series=max_series
        )

    # -- collection-level operations --------------------------------------

    def collect(self) -> list[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def expose(self, openmetrics: bool = False) -> str:
        """Prometheus text exposition format (version 0.0.4), or -- with
        *openmetrics* -- OpenMetrics 1.0: ``_total``-stripped counter
        families, per-bucket exemplars, and the mandatory ``# EOF``
        terminator.  The classic output is byte-stable regardless of
        any exemplar state."""
        blocks = [metric.expose(openmetrics) for metric in self.collect()]
        text = "\n".join(blocks) + ("\n" if blocks else "")
        if openmetrics:
            text += "# EOF\n"
        return text

    def snapshot(self) -> dict[str, float]:
        """Flat ``{'name{labels}': value}`` view of every series."""
        out: dict[str, float] = {}
        for metric in self.collect():
            metric.snapshot_into(out)
        return out

    def reset(self) -> None:
        """Zero every series (label sets are kept)."""
        for metric in self.collect():
            metric._reset()

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s series into this registry (same-named metrics
        are summed; used to aggregate per-proxy stats)."""
        for metric in other.collect():
            mine = self._get_or_create(
                type(metric), metric.name, metric.help, metric.label_names,
                **({"buckets": metric.bounds} if isinstance(metric, Histogram) else {}),
            )
            mine.max_series = max(mine.max_series, metric.max_series)
            mine.merge_from(metric)


def delta(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
    """Per-series difference between two :meth:`MetricsRegistry.snapshot`
    windows (series absent from *before* count from zero)."""
    return {key: value - before.get(key, 0.0) for key, value in after.items()}


# ---------------------------------------------------------------------------
# Null objects: the REPRO_NO_OBS=1 fast path.
# ---------------------------------------------------------------------------


class _NullInstrument:
    """Accepts the full instrument API and records nothing."""

    def labels(self, **_labels: str) -> "_NullInstrument":
        return self

    def local(self, **_labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    value = 0.0
    sum = 0.0
    count = 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry stand-in when ``REPRO_NO_OBS=1``: every instrument is
    a shared no-op and exposition is empty."""

    def counter(self, *args: Any, **kwargs: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    gauge = counter
    histogram = counter

    def collect(self) -> list[Any]:
        return []

    def expose(self, openmetrics: bool = False) -> str:
        return "# EOF\n" if openmetrics else ""

    def snapshot(self) -> dict[str, float]:
        return {}

    def reset(self) -> None:
        pass

    def merge_from(self, other: Any) -> None:
        pass


NULL_REGISTRY = NullRegistry()

#: Process-global default registry (ad-hoc instrumentation, CLI dumps).
REGISTRY = MetricsRegistry()


def new_registry() -> "MetricsRegistry | NullRegistry":
    """A fresh registry, or the shared null when telemetry is off."""
    return MetricsRegistry() if obs_enabled() else NULL_REGISTRY
