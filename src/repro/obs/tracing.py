"""Request-scoped tracing via ``contextvars``.

Every request through the enforcement stack gets a **trace**: a random
16-hex-digit id plus a tree of timed **spans** naming the stages the
paper's overhead analysis cares about (``proxy.validate``,
``cache.lookup``, ``engine.match``, ``admission.chain``,
``store.commit``).  The active trace rides the execution context, so
in-process nesting (proxy -> API server -> store) needs no plumbing,
and the HTTP topology forwards the id in an ``X-Trace-Id`` header so
the proxy-side and server-side traces (and the resulting
:class:`~repro.k8s.audit.AuditEvent`) correlate.

``contextvars`` gives per-thread isolation for free: each
``ThreadingHTTPServer`` worker sees its own active trace.

Finished traces land in a bounded ring buffer
(:data:`TRACES`) exportable as JSON -- the source for the
``repro obs`` CLI snapshot and the ``/obs/traces`` debug endpoint.
With ``REPRO_NO_OBS=1`` the whole layer is a no-op.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any

from repro.obs.metrics import obs_enabled

__all__ = [
    "Span",
    "Trace",
    "TraceBuffer",
    "TRACES",
    "current_trace_id",
    "new_trace_id",
    "span",
    "trace",
]


def new_trace_id() -> str:
    """A 16-hex-digit random trace id (64 bits, W3C-trace-style).

    Uses ``random.getrandbits`` rather than ``os.urandom``: trace ids
    need uniqueness, not cryptographic strength, and the PRNG avoids a
    syscall on every request.
    """
    return f"{random.getrandbits(64):016x}"


class Span:
    """One timed stage inside a trace."""

    __slots__ = ("name", "start_ns", "end_ns", "children")

    def __init__(self, name: str, start_ns: int):
        self.name = name
        self.start_ns = start_ns
        self.end_ns = 0
        self.children: list[Span] = []

    @property
    def duration_ns(self) -> int:
        return max(self.end_ns - self.start_ns, 0)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "duration_ns": self.duration_ns}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class Trace:
    """A request's span tree plus its correlation id."""

    __slots__ = ("trace_id", "name", "start_ns", "end_ns", "spans", "_stack")

    def __init__(self, name: str, trace_id: str | None = None):
        self.trace_id = trace_id or new_trace_id()
        self.name = name
        self.start_ns = time.perf_counter_ns()
        self.end_ns = 0
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    def begin_span(self, name: str) -> Span:
        child = Span(name, time.perf_counter_ns())
        stack = self._stack
        (stack[-1].children if stack else self.spans).append(child)
        stack.append(child)
        return child

    def end_span(self, child: Span) -> None:
        child.end_ns = time.perf_counter_ns()
        stack = self._stack
        # Tolerate mismatched exits (exceptions unwinding several frames).
        while stack:
            if stack.pop() is child:
                break

    def finish(self) -> None:
        while self._stack:
            self.end_span(self._stack[-1])
        self.end_ns = time.perf_counter_ns()

    @property
    def duration_ns(self) -> int:
        end = self.end_ns or time.perf_counter_ns()
        return max(end - self.start_ns, 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ns": self.duration_ns,
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class TraceBuffer:
    """Bounded, thread-safe ring of finished traces."""

    def __init__(self, maxlen: int = 256):
        self._traces: deque[Trace] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def record(self, finished: Trace) -> None:
        with self._lock:
            self._traces.append(finished)

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._traces)

    def find(self, trace_id: str) -> Trace | None:
        with self._lock:
            for candidate in reversed(self._traces):
                if candidate.trace_id == trace_id:
                    return candidate
        return None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def to_json(self, limit: int = 32) -> str:
        return json.dumps(
            [t.to_dict() for t in self.traces()[-limit:]], sort_keys=True
        )


#: Process-global sink for finished traces.
TRACES = TraceBuffer()

_ACTIVE: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)


def current_trace_id() -> str | None:
    """The id of the active trace, if any (audit correlation)."""
    active = _ACTIVE.get()
    return active.trace_id if active is not None else None


class trace:
    """Open (or join) a request trace (class-based for hot-path speed).

    If a trace is already active on this context -- e.g. the in-process
    API server running under the proxy's trace -- the block becomes a
    nested span instead of a second trace, preserving one id per
    request end-to-end.  With ``REPRO_NO_OBS=1`` the whole block is a
    no-op yielding ``None``.
    """

    __slots__ = ("_name", "_trace_id", "_buffer", "_joined", "_child",
                 "_opened", "_token")

    def __init__(self, name: str, trace_id: str | None = None,
                 buffer: TraceBuffer | None = TRACES):
        self._name = name
        self._trace_id = trace_id
        self._buffer = buffer
        self._joined: Trace | None = None
        self._child: Span | None = None
        self._opened: Trace | None = None
        self._token = None

    def __enter__(self) -> Trace | None:
        if not obs_enabled():
            return None
        active = _ACTIVE.get()
        if active is not None:
            self._joined = active
            self._child = active.begin_span(self._name)
            return active
        opened = Trace(self._name, self._trace_id)
        self._opened = opened
        self._token = _ACTIVE.set(opened)
        return opened

    def __exit__(self, *exc: Any) -> bool:
        if self._joined is not None:
            self._joined.end_span(self._child)  # type: ignore[arg-type]
        elif self._opened is not None:
            _ACTIVE.reset(self._token)
            self._opened.finish()
            if self._buffer is not None:
                self._buffer.record(self._opened)
        return False


class span:
    """A timed stage under the active trace (no-op without one).

    The begin/end bookkeeping is inlined (rather than delegating to
    :meth:`Trace.begin_span`/:meth:`Trace.end_span`) because spans run
    several times per request -- the function-call overhead is the
    dominant cost at that frequency.
    """

    __slots__ = ("_trace", "_span")

    def __init__(self, name: str):
        active = _ACTIVE.get()
        self._trace = active
        if active is None:
            self._span = None
        else:
            child = Span(name, time.perf_counter_ns())
            stack = active._stack
            (stack[-1].children if stack else active.spans).append(child)
            stack.append(child)
            self._span = child

    def __enter__(self) -> Span | None:
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        active = self._trace
        if active is not None:
            child = self._span
            child.end_ns = time.perf_counter_ns()  # type: ignore[union-attr]
            stack = active._stack
            if stack and stack[-1] is child:
                stack.pop()
            else:  # exception unwound through nested spans
                while stack:
                    if stack.pop() is child:
                        break
        return False
