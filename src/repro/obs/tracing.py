"""Request-scoped tracing via ``contextvars``.

Every request through the enforcement stack gets a **trace**: a random
16-hex-digit id plus a tree of timed **spans** naming the stages the
paper's overhead analysis cares about (``proxy.validate``,
``cache.lookup``, ``engine.match``, ``admission.chain``,
``store.commit``).  The active trace rides the execution context, so
in-process nesting (proxy -> API server -> store) needs no plumbing,
and the HTTP topology forwards the id in an ``X-Trace-Id`` header so
the proxy-side and server-side traces (and the resulting
:class:`~repro.k8s.audit.AuditEvent`) correlate.

``contextvars`` gives per-thread isolation for free: each
``ThreadingHTTPServer`` worker sees its own active trace.

Finished traces land in a bounded ring buffer
(:data:`TRACES`) exportable as JSON -- the source for the
``repro obs`` CLI snapshot and the ``/obs/traces`` debug endpoint.
With ``REPRO_NO_OBS=1`` the whole layer is a no-op.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any

from repro.obs.metrics import obs_enabled, set_exemplar_trace_provider

__all__ = [
    "Span",
    "TRACE_SAMPLE_ENV",
    "Trace",
    "TraceBuffer",
    "TRACES",
    "current_trace_id",
    "new_trace_id",
    "span",
    "trace",
]

#: Head-sample 1-in-N request traces (default 1 = trace everything).
#: Part of the sharded data plane's telemetry teardown: at N>1 the
#: unsampled requests skip Trace/Span construction and the global
#: TRACES ring entirely (nested spans inside a *sampled* trace are
#: always kept, so sampled traces stay complete).
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

# Same fast-probe pattern as metrics.obs_enabled(): the gate runs once
# per request, so the ~1us os.environ.get is worth skipping.
try:
    _ENV_DATA: Any = os.environ._data  # type: ignore[attr-defined]
    _SAMPLE_KEY: Any = os.environ.encodekey(TRACE_SAMPLE_ENV)  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - non-CPython fallback
    _ENV_DATA = None
    _SAMPLE_KEY = TRACE_SAMPLE_ENV

#: (last raw env value, parsed N) -- re-parsed only when the env flips.
_SAMPLE_PARSED: tuple[Any, int] = (None, 1)

_SAMPLE_THREADS = threading.local()


def _trace_sample_every() -> int:
    global _SAMPLE_PARSED
    if _ENV_DATA is not None:
        raw = _ENV_DATA.get(_SAMPLE_KEY)
    else:  # pragma: no cover - non-CPython fallback
        raw = os.environ.get(TRACE_SAMPLE_ENV)
    cached_raw, value = _SAMPLE_PARSED
    if raw == cached_raw:
        return value
    try:
        value = max(1, int(raw)) if raw else 1
    except ValueError:
        value = 1
    _SAMPLE_PARSED = (raw, value)
    return value


def _trace_sampled() -> bool:
    """Per-thread deterministic 1-in-N draw (first of each window
    publishes, so low-rate threads stay represented)."""
    n = _trace_sample_every()
    if n <= 1:
        return True
    count = getattr(_SAMPLE_THREADS, "count", 0)
    _SAMPLE_THREADS.count = count + 1
    return count % n == 0


def new_trace_id() -> str:
    """A 16-hex-digit random trace id (64 bits, W3C-trace-style).

    Uses ``random.getrandbits`` rather than ``os.urandom``: trace ids
    need uniqueness, not cryptographic strength, and the PRNG avoids a
    syscall on every request.
    """
    return f"{random.getrandbits(64):016x}"


class Span:
    """One timed stage inside a trace.

    Doubles as its own context manager (``with span("..."):``): the
    span object *is* the node stored in the trace tree, so the traced
    hot path allocates exactly one object per stage -- no separate
    wrapper.  The owning-trace backref (set by :func:`span`) exists
    only to pop the open-span stack on exit; it is not serialized.
    """

    __slots__ = ("name", "start_ns", "end_ns", "children", "_trace")

    def __init__(self, name: str, start_ns: int, trace: "Trace | None" = None):
        self.name = name
        self.start_ns = start_ns
        self.end_ns = 0
        self.children: list[Span] = []
        self._trace = trace

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.end_ns = time.perf_counter_ns()
        owner = self._trace
        if owner is None:
            return False
        stack = owner._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # exception unwound through nested spans
            while stack:
                if stack.pop() is self:
                    break
        return False

    @property
    def duration_ns(self) -> int:
        return max(self.end_ns - self.start_ns, 0)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"name": self.name, "duration_ns": self.duration_ns}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class Trace:
    """A request's span tree plus its correlation id.

    Doubles as the context manager :func:`trace` returns for a newly
    opened (root) trace: ``__enter__`` installs it as the active trace
    and ``__exit__`` finishes it and records it into the destination
    buffer -- one allocation per traced request, no wrapper object.
    """

    __slots__ = (
        "trace_id", "name", "start_ns", "end_ns", "spans", "_stack",
        "_buffer", "_token",
    )

    def __init__(self, name: str, trace_id: str | None = None):
        self.trace_id = trace_id or new_trace_id()
        self.name = name
        self.start_ns = time.perf_counter_ns()
        self.end_ns = 0
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._buffer: TraceBuffer | None = None
        self._token: Any = None

    def __enter__(self) -> "Trace":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc: Any) -> bool:
        _ACTIVE.reset(self._token)
        self.finish()
        if self._buffer is not None:
            self._buffer.record(self)
        return False

    def begin_span(self, name: str) -> Span:
        child = Span(name, time.perf_counter_ns())
        stack = self._stack
        (stack[-1].children if stack else self.spans).append(child)
        stack.append(child)
        return child

    def end_span(self, child: Span) -> None:
        child.end_ns = time.perf_counter_ns()
        stack = self._stack
        # Tolerate mismatched exits (exceptions unwinding several frames).
        while stack:
            if stack.pop() is child:
                break

    def finish(self) -> None:
        while self._stack:
            self.end_span(self._stack[-1])
        self.end_ns = time.perf_counter_ns()

    @property
    def duration_ns(self) -> int:
        end = self.end_ns or time.perf_counter_ns()
        return max(end - self.start_ns, 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ns": self.duration_ns,
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class TraceBuffer:
    """Bounded, thread-safe ring of finished traces."""

    def __init__(self, maxlen: int = 256):
        self._traces: deque[Trace] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def record(self, finished: Trace) -> None:
        with self._lock:
            self._traces.append(finished)

    def traces(self) -> list[Trace]:
        with self._lock:
            return list(self._traces)

    def find(self, trace_id: str) -> Trace | None:
        with self._lock:
            for candidate in reversed(self._traces):
                if candidate.trace_id == trace_id:
                    return candidate
        return None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def to_json(self, limit: int = 32) -> str:
        return json.dumps(
            [t.to_dict() for t in self.traces()[-limit:]], sort_keys=True
        )


#: Process-global sink for finished traces.
TRACES = TraceBuffer()

_ACTIVE: ContextVar[Trace | None] = ContextVar("repro_obs_trace", default=None)


def current_trace_id() -> str | None:
    """The id of the active trace, if any (audit correlation)."""
    active = _ACTIVE.get()
    return active.trace_id if active is not None else None


# Histogram exemplar capture joins a latency bucket to the trace that
# produced it; the provider is injected to avoid a metrics -> tracing
# import cycle.
set_exemplar_trace_provider(current_trace_id)


class _NoopContext:
    """Shared do-nothing context: what an untraced request holds.

    A single module-level instance serves every disabled/unsampled
    ``trace()`` and every ``span()`` outside a trace -- the untraced
    fast path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP = _NoopContext()


class _JoinedTrace:
    """Context manager for a block nested under an existing trace."""

    __slots__ = ("_active", "_child")

    def __init__(self, active: Trace, name: str):
        self._active = active
        self._child = active.begin_span(name)

    def __enter__(self) -> Trace:
        return self._active

    def __exit__(self, *exc: Any) -> bool:
        self._active.end_span(self._child)
        return False


def trace(name: str, trace_id: str | None = None,
          buffer: TraceBuffer | None = TRACES) -> Any:
    """Open (or join) a request trace.

    If a trace is already active on this context -- e.g. the in-process
    API server running under the proxy's trace -- the block becomes a
    nested span instead of a second trace, preserving one id per
    request end-to-end (and inheriting the root's sampling decision, so
    sampled traces stay complete).  With ``REPRO_NO_OBS=1``, or when
    the 1-in-N draw (``REPRO_TRACE_SAMPLE``) skips this request, the
    block is a shared no-op yielding ``None`` -- the decision is made
    *here*, before any Trace/Span allocation, which is what keeps the
    unsampled hot path nearly free.
    """
    if not obs_enabled():
        return _NOOP
    active = _ACTIVE.get()
    if active is not None:
        return _JoinedTrace(active, name)
    # The 1-in-N draw, inlined (same logic as _trace_sampled): this
    # runs once per request, so one avoided call frame is measurable
    # in the in-process overhead gate.
    n = _trace_sample_every()
    if n > 1:
        count = getattr(_SAMPLE_THREADS, "count", 0)
        _SAMPLE_THREADS.count = count + 1
        if count % n:
            return _NOOP
    opened = Trace(name, trace_id)
    opened._buffer = buffer
    return opened


def span(name: str) -> Any:
    """A timed stage under the active trace (shared no-op without
    one -- untraced requests allocate nothing per span).

    The begin bookkeeping is inlined (rather than delegating to
    :meth:`Trace.begin_span`) and the :class:`Span` node itself is the
    context manager: spans run several times per request, so one
    allocation and no delegation is the difference that shows up in
    the in-process overhead gate.
    """
    active = _ACTIVE.get()
    if active is None:
        return _NOOP
    child = Span(name, time.perf_counter_ns(), active)
    stack = active._stack
    (stack[-1].children if stack else active.spans).append(child)
    stack.append(child)
    return child
