"""Attack forensics: per-identity session reconstruction.

The question after a denial is never just "was it blocked" -- it is
*what did that identity touch before the denial, and did anything slip
through after it*.  This module stitches the unified event stream
(audit events + proxy decisions + anomaly scores, trace-id-joined)
into per-identity sessions and, when campaign markers are present
(the Table III attack runner emits one ``kind="marker"`` event before
each malicious submission), splits them into per-attack
:class:`AttackTimeline` reports carrying:

- **first touch** -- the first event of the attack window;
- **denial point** -- the first ``deny`` decision (or the anomaly
  alert when only detection fired);
- **post-denial activity** -- any event after the denial point inside
  the same window.  Non-empty post-denial *allows* are the smoking gun
  (an attack that kept going after being "mitigated");
- **blast radius** -- the resources and policy fields the attack
  reached for (from the marker's targeted fields plus the denial's
  violations);
- **related trace ids** -- the join keys back into ``/obs/traces``
  and the audit log.

Sources: a live :class:`~repro.obs.analytics.events.EventBus`
(subscribe :meth:`ForensicsEngine.ingest`), a recorded JSONL stream
(``repro forensics --events``), or an
:class:`~repro.k8s.audit.AuditLog` via
:func:`~repro.obs.analytics.events.events_from_audit_log`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.analytics.events import SecurityEvent, load_jsonl

__all__ = [
    "AttackTimeline",
    "ForensicsEngine",
    "render_forensics_report",
]


@dataclass
class AttackTimeline:
    """One attack's reconstructed window for one identity."""

    identity: str
    attack_id: str = ""          # catalog id (E1..E8 / M1..M7) or ""
    reference: str = ""          # CVE id / guideline, from the marker
    title: str = ""
    entries: list[SecurityEvent] = field(default_factory=list)
    targeted_fields: tuple[str, ...] = ()

    # -- derived -----------------------------------------------------------

    @property
    def first_touch(self) -> SecurityEvent | None:
        return self.entries[0] if self.entries else None

    @property
    def denial(self) -> SecurityEvent | None:
        """The denial point: first deny decision, else first >=400
        audit outcome (the API server refused what the proxy missed)."""
        for event in self.entries:
            if event.kind == "decision" and event.outcome == "deny":
                return event
        for event in self.entries:
            if event.kind == "audit" and event.code >= 400:
                return event
        return None

    @property
    def mitigated(self) -> bool:
        return self.denial is not None

    @property
    def post_denial(self) -> list[SecurityEvent]:
        """Events strictly after the denial point (empty when the
        attack stopped at the denial -- the healthy shape).  Audit
        echoes of the denied request itself (same trace id) are not
        post-denial activity."""
        denial = self.denial
        if denial is None:
            return []
        index = self.entries.index(denial)
        return [
            event for event in self.entries[index + 1:]
            if not (denial.trace_id and event.trace_id == denial.trace_id)
        ]

    @property
    def anomaly_scores(self) -> list[float]:
        return [e.score for e in self.entries if e.kind == "anomaly"]

    @property
    def trace_ids(self) -> list[str]:
        """Related trace ids, first-seen order, deduplicated."""
        seen: dict[str, None] = {}
        for event in self.entries:
            if event.trace_id:
                seen.setdefault(event.trace_id, None)
        return list(seen)

    @property
    def blast_radius(self) -> dict[str, list[str]]:
        """What the attack reached for: resources touched and the
        policy fields involved (marker's targeted fields + the
        denial's violation fields)."""
        resources: dict[str, None] = {}
        fields: dict[str, None] = {}
        for path in self.targeted_fields:
            fields.setdefault(path, None)
        for event in self.entries:
            if event.resource:
                label = event.resource + (f"/{event.name}" if event.name else "")
                resources.setdefault(label, None)
            for violation in event.detail.get("violations", ()):
                fields.setdefault(str(violation), None)
        return {"resources": list(resources), "fields": list(fields)}

    def to_dict(self) -> dict[str, Any]:
        denial = self.denial
        first = self.first_touch
        return {
            "identity": self.identity,
            "attack_id": self.attack_id,
            "reference": self.reference,
            "title": self.title,
            "mitigated": self.mitigated,
            "events": len(self.entries),
            "first_touch": first.to_dict() if first else None,
            "denial": denial.to_dict() if denial else None,
            "post_denial_events": len(self.post_denial),
            "anomaly_scores": self.anomaly_scores,
            "trace_ids": self.trace_ids,
            "blast_radius": self.blast_radius,
        }


class ForensicsEngine:
    """Accumulate events; reconstruct sessions and attack timelines.

    Thread-safe on ingest (it subscribes to a live bus fed by
    ThreadingHTTPServer workers); reconstruction works on a snapshot.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[SecurityEvent] = []

    # -- ingest ------------------------------------------------------------

    def ingest(self, event: SecurityEvent) -> None:
        with self._lock:
            self._events.append(event)

    def ingest_many(self, events: Iterable[SecurityEvent]) -> int:
        count = 0
        with self._lock:
            for event in events:
                self._events.append(event)
                count += 1
        return count

    @classmethod
    def from_jsonl(cls, text: str) -> "ForensicsEngine":
        engine = cls()
        engine.ingest_many(load_jsonl(text))
        return engine

    def events(self) -> list[SecurityEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- reconstruction ----------------------------------------------------

    def sessions(self) -> dict[str, list[SecurityEvent]]:
        """Per-identity event streams, ingestion order preserved.

        Events without a user (campaign markers) are replicated into
        the identity named by the marker's ``detail["user"]`` when
        present, else kept under ``""``.
        """
        out: dict[str, list[SecurityEvent]] = {}
        for event in self.events():
            user = event.user or str(event.detail.get("user", ""))
            out.setdefault(user, []).append(event)
        return out

    def timelines(self, identity: str | None = None) -> list[AttackTimeline]:
        """Split each identity's session at campaign markers.

        Events between marker *i* and marker *i+1* belong to attack
        *i*.  Sessions without markers produce one unkeyed timeline
        (ad-hoc forensics over raw traffic) -- but only when they
        contain something attack-shaped (a denial or an anomaly), so
        benign operator sessions do not read as attacks.
        """
        timelines: list[AttackTimeline] = []
        for user, stream in sorted(self.sessions().items()):
            if identity is not None and user != identity:
                continue
            current: AttackTimeline | None = None
            saw_marker = False
            for event in stream:
                if event.kind == "marker":
                    saw_marker = True
                    if current is not None:
                        timelines.append(current)
                    current = AttackTimeline(
                        identity=user,
                        attack_id=str(event.detail.get("attack_id", "")),
                        reference=str(event.detail.get("reference", "")),
                        title=str(event.detail.get("title", "")),
                        targeted_fields=tuple(
                            event.detail.get("targeted_fields", ())
                        ),
                    )
                elif current is not None:
                    current.entries.append(event)
            if current is not None:
                timelines.append(current)
            elif not saw_marker:
                suspicious = [
                    e for e in stream
                    if (e.kind == "decision" and e.outcome == "deny")
                    or e.kind == "anomaly"
                ]
                if suspicious:
                    timelines.append(
                        AttackTimeline(identity=user, entries=list(stream))
                    )
        return timelines

    def report(self, identity: str | None = None) -> dict[str, Any]:
        timelines = self.timelines(identity)
        return {
            "identities": sorted(self.sessions()),
            "timelines": [t.to_dict() for t in timelines],
            "mitigated": sum(t.mitigated for t in timelines),
            "post_denial_activity": sum(
                1 for t in timelines if t.post_denial
            ),
        }


def render_forensics_report(timelines: list[AttackTimeline]) -> str:
    """Human-readable attack-timeline report (the ``repro forensics``
    output)."""
    lines = ["Attack forensics", "=" * 72]
    if not timelines:
        lines.append("no attack timelines reconstructed (clean stream)")
        return "\n".join(lines)
    for timeline in timelines:
        head = timeline.attack_id or "(unkeyed)"
        if timeline.reference:
            head += f" [{timeline.reference}]"
        status = "MITIGATED" if timeline.mitigated else "NOT MITIGATED"
        lines.append(f"{head:28s} identity={timeline.identity:24s} {status}")
        if timeline.title:
            lines.append(f"    {timeline.title}")
        first = timeline.first_touch
        if first is not None:
            lines.append(
                f"    first touch : {first.verb or '?'} "
                f"{first.resource or '?'}/{first.name or '?'} "
                f"(trace {first.trace_id or '-'})"
            )
        denial = timeline.denial
        if denial is not None:
            reason = denial.detail.get("reason", "")
            lines.append(
                f"    denial point: code={denial.code} "
                f"{('reason=' + reason) if reason else ''} "
                f"(trace {denial.trace_id or '-'})"
            )
        radius = timeline.blast_radius
        if radius["resources"]:
            lines.append(f"    blast radius: {', '.join(radius['resources'][:6])}")
        if radius["fields"]:
            lines.append(f"    fields      : {', '.join(radius['fields'][:4])}")
        if timeline.anomaly_scores:
            lines.append(
                f"    anomaly     : max score "
                f"{max(timeline.anomaly_scores):.2f} over "
                f"{len(timeline.anomaly_scores)} scored request(s)"
            )
        if timeline.post_denial:
            lines.append(
                f"    !! POST-DENIAL ACTIVITY: {len(timeline.post_denial)} "
                "event(s) after the denial point"
            )
    mitigated = sum(t.mitigated for t in timelines)
    hot = sum(1 for t in timelines if t.post_denial)
    lines.append("-" * 72)
    lines.append(
        f"{len(timelines)} timeline(s), {mitigated} mitigated, "
        f"{hot} with post-denial activity"
    )
    return "\n".join(lines)
