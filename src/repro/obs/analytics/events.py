"""The unified security-event stream.

One flat, schema-versioned record type (:class:`SecurityEvent`) carries
everything the analytics layer consumes, trace-id-joined across the
three producers:

- the API server's audit stage (``kind="audit"``, mirroring
  :class:`repro.k8s.audit.AuditEvent`);
- the KubeFence proxies' enforcement verdicts (``kind="decision"``,
  outcome ``allow``/``deny``/``degraded``/``error``);
- the anomaly detector (``kind="anomaly"``, carrying the score);
- campaign markers (``kind="marker"``) that the Table III attack
  runner emits around each malicious submission, so forensics can key
  timelines by attack id;
- shadow-mode canary evaluations (``kind="shadow"``) that the policy
  refinement loop emits when a candidate policy revision is evaluated
  side-by-side with the active one (see :mod:`repro.obs.refine`).

Events flow through a bounded, thread-safe :class:`EventBus`: a ring
buffer (query surface for ``/obs/events`` and the CLI) plus a
subscriber list (the SLO engine, the forensics engine, JSONL sinks).
``REPRO_NO_OBS=1`` swaps the bus for :data:`NULL_EVENT_BUS`; its
``enabled`` flag is ``False`` so publishers skip even constructing the
event -- the analytics-overhead benchmark's baseline arm.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Callable, Iterable, Mapping

from repro.obs.metrics import obs_enabled

__all__ = [
    "EVENT_KINDS",
    "EVENT_SAMPLE_ENV",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "JsonlSink",
    "NULL_EVENT_BUS",
    "NullEventBus",
    "SecurityEvent",
    "dump_jsonl",
    "events_from_audit_log",
    "load_jsonl",
    "new_event_bus",
]

#: Version stamped into every serialized event (consumers must be able
#: to reject a future, incompatible shape instead of mis-parsing it).
EVENT_SCHEMA_VERSION = 1

#: The closed set of event kinds on the stream.  ``scan`` events are
#: CVE-scanner findings (one per newly observed finding per tick);
#: ``recovery`` events announce a store rebuilt from snapshot+WAL
#: after a crash (one per recovery, published by the fronting server).
EVENT_KINDS = ("audit", "decision", "anomaly", "marker", "shadow", "scan", "recovery")

#: Decision outcomes (closed set; doubles as a metrics label domain).
DECISION_OUTCOMES = ("allow", "deny", "degraded", "error")

#: Environment variable: sample 1-in-N *routine* events (allow
#: decisions, successful audits).  Default 1 = publish everything;
#: security-relevant events (deny/degraded/error) are never sampled.
EVENT_SAMPLE_ENV = "REPRO_EVENT_SAMPLE"


def _env_sample_every() -> int:
    raw = os.environ.get(EVENT_SAMPLE_ENV, "")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


@dataclass(frozen=True, slots=True)
class SecurityEvent:
    """One record on the unified stream (flat on purpose: every field
    is queryable without knowing the producer).

    ``slots=True`` matters here: events are built on the request path
    (two per proxied call), and slotted construction keeps the
    analytics-overhead gate's per-request cost down.
    """

    kind: str                      # one of EVENT_KINDS
    source: str = ""               # "proxy" | "apiserver" | "anomaly" | "campaign"
    ts: float = 0.0                # wall-clock seconds (time.time())
    user: str = ""
    verb: str = ""
    resource: str = ""             # object kind ("Deployment") or plural
    name: str = ""
    namespace: str = ""
    outcome: str = ""              # decisions: one of DECISION_OUTCOMES
    code: int = 0                  # HTTP-ish status code, 0 when n/a
    trace_id: str = ""             # joins audit <-> decision <-> anomaly
    latency_ns: int = 0
    score: float = 0.0             # anomaly score (0 when n/a)
    detail: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r} (expected one of {EVENT_KINDS})"
            )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"schema": EVENT_SCHEMA_VERSION, "kind": self.kind}
        for key in ("source", "user", "verb", "resource", "name", "namespace",
                    "outcome", "trace_id"):
            value = getattr(self, key)
            if value:
                out[key] = value
        out["ts"] = self.ts
        if self.code:
            out["code"] = self.code
        if self.latency_ns:
            out["latency_ns"] = self.latency_ns
        if self.score:
            out["score"] = self.score
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SecurityEvent":
        schema = data.get("schema", EVENT_SCHEMA_VERSION)
        if schema != EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported event schema version {schema!r} "
                f"(this build reads version {EVENT_SCHEMA_VERSION})"
            )
        return cls(
            kind=str(data.get("kind", "")),
            source=str(data.get("source", "")),
            ts=float(data.get("ts", 0.0)),
            user=str(data.get("user", "")),
            verb=str(data.get("verb", "")),
            resource=str(data.get("resource", "")),
            name=str(data.get("name", "")),
            namespace=str(data.get("namespace", "")),
            outcome=str(data.get("outcome", "")),
            code=int(data.get("code", 0)),
            trace_id=str(data.get("trace_id", "")),
            latency_ns=int(data.get("latency_ns", 0)),
            score=float(data.get("score", 0.0)),
            detail=dict(data.get("detail") or {}),
        )


Subscriber = Callable[[SecurityEvent], None]


class EventBus:
    """Bounded, thread-safe fan-out for :class:`SecurityEvent`.

    Two consumption modes:

    - **pull** -- the newest ``maxlen`` events sit in a ring buffer,
      queryable with :meth:`events` (the ``/obs/events`` surface and
      the CLI snapshot);
    - **push** -- :meth:`subscribe` registers a callable invoked on
      every publish.  Subscribers run on the *publishing* thread
      (ThreadingHTTPServer workers included) and must therefore be
      thread-safe and fast; a raising subscriber is counted and
      detached after :data:`MAX_SUBSCRIBER_ERRORS` consecutive
      failures rather than poisoning the request path.
    """

    #: Consecutive failures before a subscriber is detached.
    MAX_SUBSCRIBER_ERRORS = 8

    #: Publishers may probe this before building an event.
    enabled = True

    def __init__(self, maxlen: int = 4096, sample_every: int | None = None):
        self._ring: deque[SecurityEvent] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._subscribers: list[Subscriber] = []
        self._errors: dict[int, int] = {}
        self.published = 0
        self.dropped_subscribers = 0
        #: 1-in-N head sampling for routine events (see :meth:`sampled`).
        self.sample_every = max(
            1, int(sample_every if sample_every is not None else _env_sample_every())
        )
        self._sample_threads = threading.local()

    # -- publishing --------------------------------------------------------

    def sampled(self) -> bool:
        """Deterministic 1-in-N head-sampling gate for **routine**
        events (allow decisions, successful audits).

        Publishers probe this *before constructing* the event, so at
        ``sample_every=N`` the hot path skips ``N-1`` of every N
        SecurityEvent builds and fan-outs entirely.  The counter is
        per publishing thread (no lock, no shared state); the first
        event of each thread's window publishes, so low-rate threads
        are still represented.  Security-relevant events -- denials,
        degraded answers, upstream errors -- must bypass this gate and
        always publish.
        """
        n = self.sample_every
        if n <= 1:
            return True
        try:
            count = self._sample_threads.count
        except AttributeError:
            count = 0
        self._sample_threads.count = count + 1
        return count % n == 0

    def publish(self, event: SecurityEvent) -> None:
        with self._lock:
            self._ring.append(event)
            self.published += 1
            # No-subscriber fast path: most request-path buses have
            # pull-mode consumers only, so skip the snapshot tuple.
            subscribers = tuple(self._subscribers) if self._subscribers else ()
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception:  # noqa: BLE001 - a sink must not break enforcement
                self._note_failure(subscriber)
            else:
                self._errors.pop(id(subscriber), None)

    def _note_failure(self, subscriber: Subscriber) -> None:
        with self._lock:
            count = self._errors.get(id(subscriber), 0) + 1
            self._errors[id(subscriber)] = count
            if count >= self.MAX_SUBSCRIBER_ERRORS:
                try:
                    self._subscribers.remove(subscriber)
                except ValueError:
                    pass
                else:
                    self.dropped_subscribers += 1
                self._errors.pop(id(subscriber), None)

    # -- subscription ------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register *subscriber*; returns an unsubscribe callable."""
        with self._lock:
            self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(subscriber)
                except ValueError:
                    pass

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # -- pull surface ------------------------------------------------------

    def events(
        self,
        limit: int | None = None,
        kind: str | None = None,
        user: str | None = None,
        trace_id: str | None = None,
    ) -> list[SecurityEvent]:
        """The newest matching events, oldest first (bounded by the
        ring and, optionally, *limit*)."""
        with self._lock:
            snapshot = list(self._ring)
        if kind is not None:
            snapshot = [e for e in snapshot if e.kind == kind]
        if user is not None:
            snapshot = [e for e in snapshot if e.user == user]
        if trace_id is not None:
            snapshot = [e for e in snapshot if e.trace_id == trace_id]
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:]
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def to_json(self, limit: int = 64, **filters: str | None) -> str:
        return json.dumps(
            {
                "schema": EVENT_SCHEMA_VERSION,
                "published": self.published,
                "events": [e.to_dict() for e in self.events(limit=limit, **filters)],
            },
            sort_keys=True,
        )


class NullEventBus:
    """The ``REPRO_NO_OBS=1`` stand-in: publishing is a no-op and the
    ``enabled`` probe lets hot paths skip event construction."""

    enabled = False
    published = 0
    dropped_subscribers = 0
    subscriber_count = 0
    sample_every = 1

    def sampled(self) -> bool:
        return False

    def publish(self, event: Any) -> None:
        pass

    def subscribe(self, subscriber: Any) -> Callable[[], None]:
        return lambda: None

    def events(self, *args: Any, **kwargs: Any) -> list[SecurityEvent]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def to_json(self, limit: int = 64, **filters: Any) -> str:
        return json.dumps(
            {"schema": EVENT_SCHEMA_VERSION, "published": 0, "events": []},
            sort_keys=True,
        )


NULL_EVENT_BUS = NullEventBus()


def new_event_bus(
    maxlen: int = 4096, sample_every: int | None = None
) -> "EventBus | NullEventBus":
    """A fresh bus, or the shared null when telemetry is off."""
    if not obs_enabled():
        return NULL_EVENT_BUS
    return EventBus(maxlen=maxlen, sample_every=sample_every)


# ---------------------------------------------------------------------------
# Sinks and serialization
# ---------------------------------------------------------------------------


class JsonlSink:
    """Structured log sink: one JSON event per line to a stream
    (stdout) or a file path.  Thread-safe; subscribe it to a bus:

    >>> bus.subscribe(JsonlSink(sys.stdout))        # doctest: +SKIP
    >>> bus.subscribe(JsonlSink.to_path("ev.jsonl"))  # doctest: +SKIP
    """

    def __init__(self, stream: IO[str]):
        self._stream = stream
        self._lock = threading.Lock()
        self.written = 0

    @classmethod
    def to_path(cls, path: Any) -> "JsonlSink":
        return cls(open(path, "a", encoding="utf-8"))

    def __call__(self, event: SecurityEvent) -> None:
        line = event.to_json()
        with self._lock:
            self._stream.write(line + "\n")
            self.written += 1

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            try:
                self._stream.flush()
            finally:
                if self._stream not in (None,) and hasattr(self._stream, "close"):
                    self._stream.close()


def dump_jsonl(events: Iterable[SecurityEvent]) -> str:
    """The on-disk stream format (one JSON event per line)."""
    return "\n".join(e.to_json() for e in events)


def load_jsonl(text: str) -> list[SecurityEvent]:
    """Parse a JSONL event stream (the ``repro forensics --events``
    input).  Blank lines are skipped; schema mismatches raise."""
    out: list[SecurityEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from exc
        out.append(SecurityEvent.from_dict(data))
    return out


def events_from_audit_log(audit_log: Any, source: str = "apiserver") -> list[SecurityEvent]:
    """Convert a :class:`repro.k8s.audit.AuditLog` (or any iterable of
    AuditEvents) into stream events -- the offline path for forensics
    over a recorded audit trail."""
    events = audit_log.events() if hasattr(audit_log, "events") else list(audit_log)
    out: list[SecurityEvent] = []
    for index, event in enumerate(events):
        out.append(
            SecurityEvent(
                kind="audit",
                source=source,
                ts=float(index),  # audit events carry no wall clock; keep order
                user=event.username,
                verb=event.verb,
                resource=event.resource,
                name=event.name or "",
                namespace=event.namespace or "",
                outcome="allow" if 200 <= event.response_code < 300 else "error",
                code=event.response_code,
                trace_id=event.trace_id or "",
                latency_ns=event.latency_ns or 0,
                detail={"request_uri": event.request_uri},
            )
        )
    return out


def now() -> float:
    """Wall-clock timestamp for produced events (one indirection so
    tests can monkeypatch a deterministic clock)."""
    return time.time()
