"""Declarative SLIs and multi-window burn-rate alerting.

Every SLI is a **good/bad classification** over the security-event
stream plus an objective (the required good fraction).  This is the
standard reduction: a latency-percentile target ("p99 of validation
latency under 1 ms") becomes "at least 99% of decisions are faster
than 1 ms", so latency, deny-rate, degraded-rate and upstream-error
SLIs all share one evaluation path.

Alerting follows the multi-window, multi-burn-rate scheme from the SRE
workbook: an alert fires when the burn rate -- the observed bad
fraction divided by the error budget ``1 - objective`` -- exceeds a
factor over **both** a short and a long window.  The canonical
production pairs (5m/1h at 14.4x for pages, 6h/3d at 6x for tickets)
are scaled down to repro time (seconds instead of hours) so a chaos
scenario can trip a page inside a test run; the factors are kept.

Samples live in per-SLI ring buffers of ``(timestamp, bad)`` pairs,
so the engine is bounded regardless of traffic volume, and every
evaluation exports its state as ``kubefence_slo_*`` gauges on the
registry it was built with.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.analytics.events import SecurityEvent

__all__ = [
    "BurnRateWindow",
    "DEFAULT_WINDOWS",
    "SliSpec",
    "SliStatus",
    "SloAlert",
    "SloEngine",
    "SloReport",
    "default_slis",
    "shadow_sli",
]

#: Default latency threshold for the validation-latency SLI (1 ms is
#: ~20x the measured compiled-engine p50, so only pathological
#: requests classify as bad).
DEFAULT_LATENCY_THRESHOLD_NS = 1_000_000


@dataclass(frozen=True)
class SliSpec:
    """One service-level indicator over the event stream.

    ``selector`` picks the events that count (the denominator);
    ``bad_when`` classifies each selected event.  ``objective`` is the
    required good fraction (0.99 -> 1% error budget).

    ``kinds`` is an optional fast-path hint: the set of event kinds the
    selector could possibly match.  When **every** SLI in an engine
    declares its kinds, ``observe`` drops events of other kinds before
    running any selector -- the bus carries audit/marker/anomaly
    traffic too, and the engine sits on the request path.  ``None``
    means "no promise" and disables the shortcut for the whole engine.
    """

    name: str
    objective: float
    selector: Callable[[SecurityEvent], bool]
    bad_when: Callable[[SecurityEvent], bool]
    description: str = ""
    kinds: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLI {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRateWindow:
    """A (short, long) window pair with its firing factor.

    Production shape: page on 14.4x over 5m *and* 1h; ticket on 6x
    over 6h *and* 3d.  The repro defaults shrink minutes/hours to
    seconds but keep the factors, so alert math transfers.
    """

    severity: str       # "page" | "ticket"
    short_s: float
    long_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError(
                f"window {self.severity!r}: need 0 < short <= long, "
                f"got {self.short_s}/{self.long_s}"
            )


#: Repro-scaled default pairs (5m/1h -> 5s/60s, 6h/3d -> 30s/180s).
DEFAULT_WINDOWS: tuple[BurnRateWindow, ...] = (
    BurnRateWindow(severity="page", short_s=5.0, long_s=60.0, factor=14.4),
    BurnRateWindow(severity="ticket", short_s=30.0, long_s=180.0, factor=6.0),
)


def _is_decision(event: SecurityEvent) -> bool:
    return event.kind == "decision"


#: Kind hint shared by the default SLIs (all decision-only).
_DECISION_KINDS = frozenset({"decision"})


def shadow_sli() -> SliSpec:
    """The shadow-deny-rate SLI over ``kind="shadow"`` canary events.

    The refinement loop (:mod:`repro.obs.refine`) publishes one shadow
    event per candidate-policy evaluation; its deny fraction is
    compared against the active ``deny-rate`` SLI before a candidate
    revision may be promoted -- a candidate burning faster than the
    active policy would widen deny divergence on live traffic.
    """
    return SliSpec(
        name="shadow-deny-rate",
        objective=0.95,
        selector=lambda e: e.kind == "shadow",
        kinds=frozenset({"shadow"}),
        bad_when=lambda e: e.outcome == "deny",
        description="candidate-policy denials during shadow-mode canary "
                    "evaluation (promotion gate: compare against deny-rate)",
    )


def default_slis(
    latency_threshold_ns: int = DEFAULT_LATENCY_THRESHOLD_NS,
) -> tuple[SliSpec, ...]:
    """The four decision SLIs the paper's serving story cares about,
    plus the shadow-deny-rate canary SLI (zero events until a shadow
    evaluation is running; its kind gate keeps it off the decision
    path)."""
    return (
        SliSpec(
            name="validation-latency",
            objective=0.99,
            selector=lambda e: _is_decision(e) and e.latency_ns > 0,
            kinds=_DECISION_KINDS,
            bad_when=lambda e: e.latency_ns > latency_threshold_ns,
            description=(
                f"decisions slower than {latency_threshold_ns} ns are bad "
                "(p99-under-threshold reduction)"
            ),
        ),
        SliSpec(
            name="deny-rate",
            objective=0.95,
            selector=_is_decision,
            kinds=_DECISION_KINDS,
            bad_when=lambda e: e.outcome == "deny",
            description="policy denials on the request stream (benign "
                        "traffic should rarely be denied)",
        ),
        SliSpec(
            name="degraded-rate",
            objective=0.99,
            selector=_is_decision,
            kinds=_DECISION_KINDS,
            bad_when=lambda e: e.outcome == "degraded",
            description="requests answered in degraded mode (stale read "
                        "or fail-closed refusal)",
        ),
        SliSpec(
            name="upstream-error-rate",
            objective=0.99,
            selector=_is_decision,
            kinds=_DECISION_KINDS,
            bad_when=lambda e: e.outcome in ("degraded", "error") or e.code >= 500,
            description="upstream failures reaching the client (5xx "
                        "pass-through or degraded answers)",
        ),
        shadow_sli(),
    )


@dataclass(frozen=True)
class SloAlert:
    """One firing burn-rate alert."""

    sli: str
    severity: str
    factor: float
    short_burn: float
    long_burn: float
    short_s: float
    long_s: float

    def summary(self) -> str:
        return (
            f"[{self.severity}] {self.sli}: burn {self.short_burn:.1f}x/"
            f"{self.long_burn:.1f}x over {self.short_s:.0f}s/{self.long_s:.0f}s "
            f"(threshold {self.factor:.1f}x)"
        )


@dataclass
class SliStatus:
    """Evaluation snapshot for one SLI."""

    name: str
    objective: float
    events: int
    bad: int
    burn_rates: dict[str, float] = field(default_factory=dict)  # "5s" -> burn
    alerts: list[SloAlert] = field(default_factory=list)

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.events if self.events else 0.0

    @property
    def error_budget_remaining(self) -> float:
        """Fraction of the (all-time) error budget left, clamped at 0."""
        budget = 1.0 - self.objective
        return max(0.0, 1.0 - self.bad_fraction / budget) if budget else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "events": self.events,
            "bad": self.bad,
            "bad_fraction": round(self.bad_fraction, 6),
            "error_budget_remaining": round(self.error_budget_remaining, 6),
            "burn_rates": {k: round(v, 3) for k, v in self.burn_rates.items()},
            "alerts": [a.summary() for a in self.alerts],
        }


@dataclass
class SloReport:
    """One evaluation pass over every SLI."""

    statuses: list[SliStatus]

    @property
    def alerts(self) -> list[SloAlert]:
        return [a for s in self.statuses for a in s.alerts]

    @property
    def firing(self) -> bool:
        return bool(self.alerts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "firing": self.firing,
            "slis": [s.to_dict() for s in self.statuses],
        }

    def render(self) -> str:
        lines = ["SLO report", "=" * 64]
        for status in self.statuses:
            burns = "  ".join(
                f"{w}:{b:6.1f}x" for w, b in sorted(status.burn_rates.items())
            )
            lines.append(
                f"{status.name:22s} obj={status.objective:.3f}  "
                f"events={status.events:6d}  bad={status.bad:5d} "
                f"({100 * status.bad_fraction:5.2f}%)  {burns}"
            )
            for alert in status.alerts:
                lines.append(f"  !! {alert.summary()}")
        lines.append("-" * 64)
        lines.append(
            f"{len(self.alerts)} alert(s) firing" if self.firing
            else "all SLOs within budget (no alerts firing)"
        )
        return "\n".join(lines)


class _SliState:
    """Ring of (ts, bad) samples plus all-time totals for one SLI."""

    __slots__ = ("spec", "samples", "events", "bad")

    def __init__(self, spec: SliSpec, max_samples: int):
        self.spec = spec
        self.samples: deque[tuple[float, bool]] = deque(maxlen=max_samples)
        self.events = 0
        self.bad = 0


class SloEngine:
    """Consume events, maintain sliding windows, evaluate burn rates.

    Subscribe :meth:`observe` to an :class:`~repro.obs.analytics.
    events.EventBus`; call :meth:`evaluate` whenever alert state is
    needed (the ``/obs/slo`` surface and ``repro slo`` evaluate on
    read -- there is no background thread to leak).

    ``min_events`` guards the short window against deciding off a
    handful of samples; ``clock`` is injectable for deterministic
    tests (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        slis: tuple[SliSpec, ...] | None = None,
        registry: Any | None = None,
        windows: tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 16384,
        min_events: int = 10,
    ):
        self._lock = threading.Lock()
        self._clock = clock
        self._windows = tuple(windows)
        self._min_events = min_events
        self._states = [
            _SliState(spec, max_samples) for spec in (slis or default_slis())
        ]
        # Fast-path kind gate: valid only when every SLI promises the
        # kinds it can match (see SliSpec.kinds).
        hints = [state.spec.kinds for state in self._states]
        self._kind_gate: frozenset[str] | None = (
            frozenset().union(*hints)
            if hints and all(h is not None for h in hints)
            else None
        )
        self._g_burn = self._g_alert = self._g_budget = None
        if registry is not None:
            self._g_burn = registry.gauge(
                "kubefence_slo_burn_rate",
                "Error-budget burn rate per SLI and window (1.0 = burning "
                "exactly the budget).",
                labels=("sli", "window"),
            )
            self._g_alert = registry.gauge(
                "kubefence_slo_alert_active",
                "1 while the multi-window burn-rate alert fires.",
                labels=("sli", "severity"),
            )
            self._g_budget = registry.gauge(
                "kubefence_slo_error_budget_remaining",
                "Remaining fraction of the all-time error budget per SLI.",
                labels=("sli",),
            )

    @property
    def sli_names(self) -> list[str]:
        return [state.spec.name for state in self._states]

    # -- ingest ------------------------------------------------------------

    def observe(self, event: SecurityEvent) -> None:
        """Classify one event into every matching SLI (bus subscriber)."""
        gate = self._kind_gate
        if gate is not None and event.kind not in gate:
            return
        now = self._clock()
        with self._lock:
            for state in self._states:
                spec = state.spec
                if not spec.selector(event):
                    continue
                bad = bool(spec.bad_when(event))
                state.samples.append((now, bad))
                state.events += 1
                state.bad += bad

    # -- evaluation --------------------------------------------------------

    @staticmethod
    def _window_counts(
        samples: deque[tuple[float, bool]], cutoff: float
    ) -> tuple[int, int]:
        total = bad = 0
        for ts, is_bad in reversed(samples):
            if ts < cutoff:
                break
            total += 1
            bad += is_bad
        return total, bad

    def evaluate(self) -> SloReport:
        now = self._clock()
        statuses: list[SliStatus] = []
        with self._lock:
            snapshot = [
                (state.spec, list(state.samples), state.events, state.bad)
                for state in self._states
            ]
        for spec, samples, events, bad in snapshot:
            status = SliStatus(
                name=spec.name, objective=spec.objective, events=events, bad=bad
            )
            ring = deque(samples)
            budget = spec.error_budget
            burn_by_window: dict[float, tuple[float, int]] = {}
            for window in self._windows:
                for seconds in (window.short_s, window.long_s):
                    if seconds in burn_by_window:
                        continue
                    total, window_bad = self._window_counts(ring, now - seconds)
                    fraction = window_bad / total if total else 0.0
                    burn_by_window[seconds] = (fraction / budget, total)
            for seconds, (burn, _total) in sorted(burn_by_window.items()):
                status.burn_rates[f"{seconds:g}s"] = burn
            for window in self._windows:
                short_burn, short_n = burn_by_window[window.short_s]
                long_burn, _long_n = burn_by_window[window.long_s]
                if (short_n >= self._min_events
                        and short_burn > window.factor
                        and long_burn > window.factor):
                    status.alerts.append(
                        SloAlert(
                            sli=spec.name,
                            severity=window.severity,
                            factor=window.factor,
                            short_burn=short_burn,
                            long_burn=long_burn,
                            short_s=window.short_s,
                            long_s=window.long_s,
                        )
                    )
            statuses.append(status)
        self._export(statuses)
        return SloReport(statuses=statuses)

    def _export(self, statuses: list[SliStatus]) -> None:
        """Mirror evaluation state into the ``kubefence_slo_*`` gauges."""
        if self._g_burn is None:
            return
        for status in statuses:
            for window, burn in status.burn_rates.items():
                self._g_burn.labels(sli=status.name, window=window).set(burn)
            firing = {a.severity for a in status.alerts}
            for window in self._windows:
                self._g_alert.labels(
                    sli=status.name, severity=window.severity
                ).set(1.0 if window.severity in firing else 0.0)
            self._g_budget.labels(sli=status.name).set(
                status.error_budget_remaining
            )
