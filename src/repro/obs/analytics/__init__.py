"""KubeFence security analytics: streaming events, SLOs, forensics.

The telemetry layer (:mod:`repro.obs`) answers *where latency goes*;
this package turns the audit/decision stream into *answers*:

- :mod:`repro.obs.analytics.events` -- a unified, trace-correlated
  :class:`SecurityEvent` stream through a bounded, thread-safe
  :class:`EventBus` with schema-versioned JSONL sinks.  Publishers:
  the API server's audit stage, both KubeFence proxies' allow/deny/
  degraded decisions, and the anomaly detector's alerts.
- :mod:`repro.obs.analytics.slo` -- declarative SLIs (validation
  latency, deny-rate, degraded-rate, upstream-error-rate) over
  ring-buffer sliding windows, with multi-window burn-rate alerting
  and ``kubefence_slo_*`` gauges on the existing registry.
- :mod:`repro.obs.analytics.forensics` -- per-identity session
  reconstruction that stitches audit events + denials + anomaly
  scores into attack timelines (first-touch, blast radius, denial
  point, related trace ids), keyed by the Table III campaign.

``REPRO_NO_OBS=1`` collapses the whole pipeline into no-ops:
:func:`new_event_bus` returns the shared :data:`NULL_EVENT_BUS`, whose
``enabled`` flag lets publishers skip event construction entirely.
"""

from repro.obs.analytics.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    EventBus,
    JsonlSink,
    NULL_EVENT_BUS,
    NullEventBus,
    SecurityEvent,
    dump_jsonl,
    events_from_audit_log,
    load_jsonl,
    new_event_bus,
)
from repro.obs.analytics.forensics import (
    AttackTimeline,
    ForensicsEngine,
    render_forensics_report,
)
from repro.obs.analytics.slo import (
    BurnRateWindow,
    DEFAULT_WINDOWS,
    SliSpec,
    SliStatus,
    SloAlert,
    SloEngine,
    default_slis,
)

__all__ = [
    "AttackTimeline",
    "BurnRateWindow",
    "DEFAULT_WINDOWS",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "ForensicsEngine",
    "JsonlSink",
    "NULL_EVENT_BUS",
    "NullEventBus",
    "SecurityEvent",
    "SliSpec",
    "SliStatus",
    "SloAlert",
    "SloEngine",
    "default_slis",
    "dump_jsonl",
    "events_from_audit_log",
    "load_jsonl",
    "new_event_bus",
    "render_forensics_report",
]
