"""The lint rule catalog.

Each rule inspects one manifest and yields ``(path, message)`` pairs.
Severity levels: ``error`` (exploitable now), ``warning`` (weakens the
posture), ``info`` (hygiene).  The catalog mirrors the checks the
NSA/CISA Kubernetes Hardening Guide and the Pod Security Standards
codify -- the same sources the paper's security locks come from, which
is why linting *before* policy generation removes exactly the unsafe
defaults KubeFence would otherwise have to override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.k8s.gvk import registry
from repro.yamlutil import get_path

Findings = Iterator[tuple[str, str]]
Check = Callable[[dict[str, Any]], Findings]


@dataclass(frozen=True)
class LintRule:
    rule_id: str
    severity: str  # "error" | "warning" | "info"
    title: str
    check: Check


def _pod_spec(manifest: dict[str, Any]) -> tuple[str, dict[str, Any]] | None:
    kind = manifest.get("kind", "")
    if kind not in registry:
        return None
    path = registry.by_kind(kind).pod_spec_path
    if path is None:
        return None
    spec = get_path(manifest, path, None)
    return (path, spec) if isinstance(spec, dict) else None


def _containers(manifest: dict[str, Any]) -> Iterator[tuple[str, dict[str, Any]]]:
    located = _pod_spec(manifest)
    if located is None:
        return
    prefix, spec = located
    for group in ("containers", "initContainers"):
        for index, container in enumerate(spec.get(group) or []):
            if isinstance(container, dict):
                yield f"{prefix}.{group}[{index}]", container


# -- host namespaces --------------------------------------------------------


def _check_host_namespaces(manifest: dict[str, Any]) -> Findings:
    located = _pod_spec(manifest)
    if located is None:
        return
    prefix, spec = located
    for flag in ("hostNetwork", "hostPID", "hostIPC"):
        if spec.get(flag) is True:
            yield f"{prefix}.{flag}", f"{flag} shares a host namespace with the pod"


def _check_host_path(manifest: dict[str, Any]) -> Findings:
    located = _pod_spec(manifest)
    if located is None:
        return
    prefix, spec = located
    for index, volume in enumerate(spec.get("volumes") or []):
        if isinstance(volume, dict) and "hostPath" in volume:
            yield (
                f"{prefix}.volumes[{index}].hostPath",
                "hostPath volumes expose the node filesystem",
            )


# -- container security context ----------------------------------------------


def _check_privileged(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        if get_path(container, "securityContext.privileged", None) is True:
            yield f"{path}.securityContext.privileged", "privileged container"


def _check_run_as_non_root(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        value = get_path(container, "securityContext.runAsNonRoot", None)
        if value is False:
            yield f"{path}.securityContext.runAsNonRoot", "container runs as root"
        elif value is None:
            yield (
                f"{path}.securityContext.runAsNonRoot",
                "runAsNonRoot not set (defaults to root-capable)",
            )


def _check_privilege_escalation(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        value = get_path(container, "securityContext.allowPrivilegeEscalation", None)
        if value is not False:
            yield (
                f"{path}.securityContext.allowPrivilegeEscalation",
                "allowPrivilegeEscalation not disabled",
            )


def _check_read_only_root(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        if get_path(container, "securityContext.readOnlyRootFilesystem", None) is not True:
            yield (
                f"{path}.securityContext.readOnlyRootFilesystem",
                "root filesystem is writable",
            )


def _check_added_capabilities(manifest: dict[str, Any]) -> Findings:
    dangerous = {"SYS_ADMIN", "NET_ADMIN", "NET_RAW", "SYS_PTRACE", "ALL"}
    for path, container in _containers(manifest):
        added = get_path(container, "securityContext.capabilities.add", None) or []
        risky = sorted(set(map(str, added)) & dangerous)
        if risky:
            yield (
                f"{path}.securityContext.capabilities.add",
                f"dangerous capabilities added: {', '.join(risky)}",
            )
        elif added:
            yield (
                f"{path}.securityContext.capabilities.add",
                f"capabilities added: {', '.join(map(str, added))}",
            )


def _check_selinux_options(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        for key in ("user", "role"):
            if get_path(container, f"securityContext.seLinuxOptions.{key}", None):
                yield (
                    f"{path}.securityContext.seLinuxOptions.{key}",
                    f"custom SELinux {key} weakens mandatory access control",
                )


# -- resources & probes ----------------------------------------------------------


def _check_resource_limits(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        if not get_path(container, "resources.limits", None):
            yield f"{path}.resources.limits", "no resource limits (DoS amplification)"


def _check_probes(manifest: dict[str, Any]) -> Findings:
    if manifest.get("kind") not in ("Deployment", "StatefulSet", "DaemonSet"):
        return
    located = _pod_spec(manifest)
    if located is None:
        return
    prefix, spec = located
    for index, container in enumerate(spec.get("containers") or []):
        if not isinstance(container, dict):
            continue
        if "readinessProbe" not in container and "livenessProbe" not in container:
            yield (
                f"{prefix}.containers[{index}]",
                "no liveness/readiness probe configured",
            )


# -- image hygiene -------------------------------------------------------------


def _check_image_tags(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        image = container.get("image")
        if not isinstance(image, str):
            continue
        if ":" not in image.rsplit("/", 1)[-1]:
            yield f"{path}.image", f"image {image!r} has no tag (implicit :latest)"
        elif image.endswith(":latest"):
            yield f"{path}.image", f"image {image!r} uses the mutable :latest tag"


# -- service account -----------------------------------------------------------


def _check_automount_token(manifest: dict[str, Any]) -> Findings:
    located = _pod_spec(manifest)
    if located is not None:
        prefix, spec = located
        if spec.get("automountServiceAccountToken") is not False:
            yield (
                f"{prefix}.automountServiceAccountToken",
                "service account token automounted into the pod",
            )
    if manifest.get("kind") == "ServiceAccount":
        if manifest.get("automountServiceAccountToken") is not False:
            yield (
                "automountServiceAccountToken",
                "ServiceAccount automounts its token by default",
            )


def _check_external_ips(manifest: dict[str, Any]) -> Findings:
    if manifest.get("kind") == "Service" and get_path(manifest, "spec.externalIPs", None):
        yield "spec.externalIPs", "externalIPs enable traffic interception (CVE-2020-8554)"


def _check_subpath(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        for index, mount in enumerate(container.get("volumeMounts") or []):
            if isinstance(mount, dict) and mount.get("subPath"):
                yield (
                    f"{path}.volumeMounts[{index}].subPath",
                    "subPath mounts have a history of host-escape CVEs",
                )


def _check_seccomp_profile(manifest: dict[str, Any]) -> Findings:
    for path, container in _containers(manifest):
        profile_type = get_path(container, "securityContext.seccompProfile.type", None)
        localhost = get_path(
            container, "securityContext.seccompProfile.localhostProfile", None
        )
        if profile_type == "Unconfined":
            yield (
                f"{path}.securityContext.seccompProfile.type",
                "seccomp disabled (Unconfined)",
            )
        if localhost is not None:
            yield (
                f"{path}.securityContext.seccompProfile.localhostProfile",
                "localhost seccomp profiles can bypass confinement (CVE-2023-2431)",
            )


ALL_RULES: tuple[LintRule, ...] = (
    LintRule("KF001", "error", "host namespace sharing", _check_host_namespaces),
    LintRule("KF002", "error", "privileged container", _check_privileged),
    LintRule("KF003", "error", "hostPath volume", _check_host_path),
    LintRule("KF004", "warning", "container may run as root", _check_run_as_non_root),
    LintRule("KF005", "warning", "privilege escalation allowed", _check_privilege_escalation),
    LintRule("KF006", "warning", "writable root filesystem", _check_read_only_root),
    LintRule("KF007", "error", "added Linux capabilities", _check_added_capabilities),
    LintRule("KF008", "warning", "custom SELinux options", _check_selinux_options),
    LintRule("KF009", "warning", "missing resource limits", _check_resource_limits),
    LintRule("KF010", "info", "missing health probes", _check_probes),
    LintRule("KF011", "warning", "unpinned image tag", _check_image_tags),
    LintRule("KF012", "info", "service account token automount", _check_automount_token),
    LintRule("KF013", "error", "Service externalIPs", _check_external_ips),
    LintRule("KF014", "warning", "subPath volume mount", _check_subpath),
    LintRule("KF015", "warning", "weak seccomp configuration", _check_seccomp_profile),
)
