"""Static analysis of manifests and charts (the KubeLinter/Checkov role).

The paper positions static checkers as *complementary* to KubeFence
(Sec. VII-A, Sec. VIII): they catch misconfigurations pre-deployment
but "operate pre-deployment, leaving systems exposed to runtime
threats".  This package implements that complementary tool so the
repository covers the full workflow the paper recommends -- lint the
chart, then generate and enforce the policy:

- :mod:`repro.lint.rules` -- the rule catalog (security-context,
  host-namespace, image-hygiene, probe and resource checks, aligned
  with the NSA/CISA hardening guide and Pod Security Standards);
- :mod:`repro.lint.engine` -- runs rules over manifests, rendered
  charts, or kustomize builds, producing a structured report.
"""

from repro.lint.engine import LintFinding, LintReport, lint_chart, lint_manifests
from repro.lint.rules import ALL_RULES, LintRule

__all__ = [
    "ALL_RULES",
    "LintFinding",
    "LintReport",
    "LintRule",
    "lint_chart",
    "lint_manifests",
]
