"""The lint engine: run rules over manifests, charts, or overlays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.helm.chart import Chart, render_chart
from repro.lint.rules import ALL_RULES, LintRule

_SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


@dataclass(frozen=True)
class LintFinding:
    """One rule hit on one manifest."""

    rule_id: str
    severity: str
    kind: str
    name: str
    path: str
    message: str

    def line(self) -> str:
        return (
            f"[{self.severity.upper():7s}] {self.rule_id} "
            f"{self.kind}/{self.name} {self.path}: {self.message}"
        )


@dataclass
class LintReport:
    findings: list[LintFinding] = field(default_factory=list)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def render(self) -> str:
        if not self.findings:
            return "no lint findings"
        ordered = sorted(
            self.findings,
            key=lambda f: (_SEVERITY_ORDER[f.severity], f.rule_id, f.kind, f.path),
        )
        lines = [finding.line() for finding in ordered]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.findings) - len(self.errors) - len(self.warnings)} info"
        )
        return "\n".join(lines)


def lint_manifests(
    manifests: Iterable[dict[str, Any]],
    rules: tuple[LintRule, ...] = ALL_RULES,
    ignore: frozenset[str] = frozenset(),
) -> LintReport:
    """Run *rules* over every manifest."""
    report = LintReport()
    for manifest in manifests:
        if not isinstance(manifest, dict) or not manifest.get("kind"):
            continue
        kind = manifest.get("kind", "")
        name = manifest.get("metadata", {}).get("name", "")
        for rule in rules:
            if rule.rule_id in ignore:
                continue
            for path, message in rule.check(manifest):
                report.findings.append(
                    LintFinding(
                        rule_id=rule.rule_id,
                        severity=rule.severity,
                        kind=kind,
                        name=name,
                        path=path,
                        message=message,
                    )
                )
    return report


def lint_chart(
    chart: Chart,
    overrides: dict[str, Any] | None = None,
    rules: tuple[LintRule, ...] = ALL_RULES,
    ignore: frozenset[str] = frozenset(),
) -> LintReport:
    """Render the chart (the configuration actually deployed) and lint
    the result -- the paper's 'before policy generation' workflow."""
    return lint_manifests(render_chart(chart, overrides=overrides), rules, ignore)
