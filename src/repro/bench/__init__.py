"""Performance measurement substrate.

:mod:`repro.bench.loadgen` is the closed-loop throughput harness
(``repro loadtest``); :func:`environment_metadata` stamps every
``BENCH_*.json`` with enough machine context to compare the perf
trajectory across runs and hosts.
"""

from __future__ import annotations

import os
import platform
from typing import Any

__all__ = ["environment_metadata"]


def environment_metadata() -> dict[str, Any]:
    """Host facts recorded into every benchmark result file: numbers
    from different machines (or Python builds) must never be compared
    as if they were the same baseline."""
    try:
        affinity: int | None = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        affinity = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "cpu_affinity": affinity,
    }
