"""Closed-loop multi-identity load generator (``repro loadtest``).

The single-request microbenchmarks (``benchmarks/compare_bench.py``)
measure *latency* of one thread doing one thing; they cannot see lock
convoys.  This harness measures the enforcement data plane the way the
paper's Table IV topology stresses it: N worker threads, each bound to
an identity, drive a :class:`~repro.core.proxy.KubeFenceProxy` in a
closed loop (next request issued the moment the previous one returns)
against an echo upstream stub -- so the proxy's validate/cache/
telemetry path is the measured bottleneck, not a simulated cluster.

Two arms, same machine, same workload:

- **sharded** -- the default data plane: sharded decision cache
  (:mod:`repro.core.shards`), lock-free per-thread metric cells
  (:meth:`repro.obs.metrics._Metric.local`), and 1-in-N head sampling
  of routine security events;
- **legacy** -- ``REPRO_NO_SHARDS=1``: the pre-sharding layout (one
  global-lock cache, every metric write under the registry lock,
  every event published).

Each arm gets a warmup window (cache fill, thread start, allocator
steady-state) before the measurement window; throughput is requests
completed inside the window, latency is per-request wall time from
``submit`` call to return (p50/p99 over the merged samples).  Results
go to ``benchmarks/results/BENCH_throughput.json`` with
:func:`~repro.bench.environment_metadata` attached.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.bench import environment_metadata
from repro.core.shards import SHARDS_ENV
from repro.k8s.apiserver import ApiRequest, ApiResponse, User
from repro.obs.tracing import TRACE_SAMPLE_ENV

__all__ = [
    "ArmResult",
    "LoadConfig",
    "run_arm",
    "run_loadtest",
]

_OK_BODY = {"kind": "Status", "status": "Success"}


@dataclass(frozen=True)
class LoadConfig:
    """One loadtest run (both arms share it verbatim)."""

    operator: str = "nginx"
    #: Closed-loop worker threads (concurrent in-flight requests).
    workers: int = 8
    #: Distinct identities, round-robined across workers -- several
    #: workers share an identity, as operator replicas would.
    identities: int = 4
    #: Fraction of requests that are writes (validated bodies); the
    #: rest are GETs that exercise only the forwarding path.
    write_ratio: float = 0.8
    #: Distinct manifest bodies in the write mix.  Small on purpose:
    #: a steady operator reconciling resubmits the same few objects,
    #: which is exactly the decision-cache-hit regime where lock
    #: contention (not validation CPU) dominates.
    distinct_bodies: int = 4
    warmup_s: float = 0.75
    duration_s: float = 3.0
    #: Routine-event head sampling for the sharded arm (the legacy
    #: arm publishes every event, as the pre-sharding plane did).
    sample_every: int = 8
    #: Request-trace head sampling for the sharded arm (the legacy
    #: arm traces every request, as the pre-sharding plane did).
    trace_sample_every: int = 8

    @classmethod
    def smoke(cls) -> "LoadConfig":
        """CI-sized run: seconds, not minutes."""
        return cls(workers=4, warmup_s=0.25, duration_s=0.75)


@dataclass
class ArmResult:
    """One arm's saturated steady-state numbers."""

    arm: str
    requests: int
    duration_s: float
    throughput_rps: float
    p50_us: float
    p99_us: float
    denied: int
    cache_hits: int
    cache_misses: int
    events_published: int
    workers: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


class _EchoUpstream:
    """Answers every request instantly (no store, no audit): the proxy
    data plane is the only thing between two timestamps."""

    def handle(self, request: ApiRequest) -> ApiResponse:
        return ApiResponse(200, body=request.body if request.body is not None else _OK_BODY)


class _RunState:
    """Shared worker flags; plain attributes read GIL-atomically on
    the hot loop (no lock, no Event.is_set() call overhead)."""

    __slots__ = ("recording", "stop")

    def __init__(self) -> None:
        self.recording = False
        self.stop = False


def _write_manifests(operator: str, count: int) -> list[dict[str, Any]]:
    """The *count* smallest chart manifests (by JSON size): real
    policy-allowed bodies, but small enough that the shared
    ``canonical_body_key`` serialization cost does not drown the
    cache/telemetry contention being measured."""
    from repro.helm.chart import render_chart
    from repro.operators import get_chart

    manifests = sorted(
        render_chart(get_chart(operator)), key=lambda m: len(json.dumps(m))
    )
    if not manifests:
        raise ValueError(f"operator {operator!r} rendered no manifests")
    return [m for m in manifests[: max(1, count)]]


def _request_script(
    config: LoadConfig, manifests: list[dict[str, Any]], identity: User
) -> list[ApiRequest]:
    """A deterministic per-worker request cycle honouring the
    read/write mix -- prebuilt so the measured loop allocates
    nothing but the timestamps."""
    writes = [
        ApiRequest.from_manifest(manifest, identity, verb="update")
        for manifest in manifests
    ]
    template = writes[0]
    read = ApiRequest(
        verb="get",
        kind=template.kind,
        user=identity,
        namespace=template.namespace,
        name=template.name or "loadgen",
    )
    script: list[ApiRequest] = []
    slots = 10
    write_slots = max(0, min(slots, round(config.write_ratio * slots)))
    cursor = 0
    for slot in range(slots):
        if slot < write_slots:
            script.append(writes[cursor % len(writes)])
            cursor += 1
        else:
            script.append(read)
    return script


def _build_proxy(config: LoadConfig, validator: Any, sharded: bool) -> Any:
    from repro.core.proxy import KubeFenceProxy
    from repro.obs.analytics.events import EventBus

    bus = EventBus(sample_every=config.sample_every if sharded else 1)
    return KubeFenceProxy(_EchoUpstream(), validator, event_bus=bus)


def _worker_loop(
    proxy: Any,
    script: list[ApiRequest],
    state: _RunState,
    index: int,
    counts: list[int],
    latencies: list[list[int]],
) -> None:
    submit = proxy.submit
    perf = time.perf_counter_ns
    recorded = 0
    samples = latencies[index]
    i = 0
    n = len(script)
    while not state.stop:
        request = script[i]
        i += 1
        if i == n:
            i = 0
        started = perf()
        submit(request)
        elapsed = perf() - started
        if state.recording:
            recorded += 1
            samples.append(elapsed)
    counts[index] = recorded


def _percentile(ordered: list[int], q: float) -> float:
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return float(ordered[index])


def run_arm(config: LoadConfig, validator: Any, sharded: bool) -> ArmResult:
    """Run one arm to saturation and report steady-state numbers.

    The arm is selected via ``REPRO_NO_SHARDS`` around *construction*
    only -- the flag binds cache, metric handles, and frontend at
    build time, so the measured loop runs with the env untouched.
    ``REPRO_TRACE_SAMPLE`` is the exception: tracing reads it per
    request, so the sharded arm holds it for the whole run (it is part
    of that arm's data-plane configuration, like event sampling).
    """
    previous = os.environ.pop(SHARDS_ENV, None)
    if not sharded:
        os.environ[SHARDS_ENV] = "1"
    try:
        proxy = _build_proxy(config, validator, sharded)
    finally:
        if previous is not None:
            os.environ[SHARDS_ENV] = previous
        elif not sharded:
            os.environ.pop(SHARDS_ENV, None)

    trace_previous = os.environ.pop(TRACE_SAMPLE_ENV, None)
    if sharded and config.trace_sample_every > 1:
        os.environ[TRACE_SAMPLE_ENV] = str(config.trace_sample_every)

    manifests = _write_manifests(config.operator, config.distinct_bodies)
    identities = [
        User(f"loadgen-{i}", ("system:serviceaccounts", "system:authenticated"))
        for i in range(max(1, config.identities))
    ]
    state = _RunState()
    counts = [0] * config.workers
    latencies: list[list[int]] = [[] for _ in range(config.workers)]
    threads = []
    try:
        for index in range(config.workers):
            script = _request_script(
                config, manifests, identities[index % len(identities)]
            )
            thread = threading.Thread(
                target=_worker_loop,
                args=(proxy, script, state, index, counts, latencies),
                name=f"loadgen-{index}",
                daemon=True,
            )
            thread.start()
            threads.append(thread)

        time.sleep(config.warmup_s)
        state.recording = True
        window_started = time.perf_counter()
        time.sleep(config.duration_s)
        state.recording = False
        window = time.perf_counter() - window_started
        state.stop = True
        for thread in threads:
            thread.join(timeout=10)
    finally:
        state.stop = True
        if trace_previous is not None:
            os.environ[TRACE_SAMPLE_ENV] = trace_previous
        else:
            os.environ.pop(TRACE_SAMPLE_ENV, None)

    merged = sorted(sample for worker in latencies for sample in worker)
    requests = sum(counts)
    stats = proxy.stats
    return ArmResult(
        arm="sharded" if sharded else "legacy",
        requests=requests,
        duration_s=round(window, 4),
        throughput_rps=round(requests / window, 1) if window else 0.0,
        p50_us=round(_percentile(merged, 0.50) / 1000.0, 2),
        p99_us=round(_percentile(merged, 0.99) / 1000.0, 2),
        denied=stats.requests_denied,
        cache_hits=stats.cache_hits,
        cache_misses=stats.cache_misses,
        events_published=getattr(proxy.events, "published", 0),
        workers=config.workers,
    )


def run_loadtest(config: LoadConfig | None = None, validator: Any | None = None) -> dict[str, Any]:
    """Both arms on the same machine and workload; the comparison
    document written to ``BENCH_throughput.json``.

    The sharded arm runs first and the legacy arm second, so any
    second-run interpreter/allocator warmth accrues to the *legacy*
    arm -- the reported speedup is conservative.
    """
    config = config or LoadConfig()
    if validator is None:
        from repro.core.pipeline import generate_policy
        from repro.operators import get_chart

        validator = generate_policy(get_chart(config.operator))

    sharded = run_arm(config, validator, sharded=True)
    legacy = run_arm(config, validator, sharded=False)
    speedup = (
        sharded.throughput_rps / legacy.throughput_rps
        if legacy.throughput_rps
        else 0.0
    )
    p99_ratio = sharded.p99_us / legacy.p99_us if legacy.p99_us else 0.0
    return {
        "benchmark": "throughput_loadtest",
        "description": (
            "Closed-loop saturated throughput of the enforcement data "
            "plane: sharded (default) vs legacy (REPRO_NO_SHARDS=1) "
            "on identical workload and hardware."
        ),
        "config": asdict(config),
        "environment": environment_metadata(),
        "arms": {"sharded": sharded.to_dict(), "legacy": legacy.to_dict()},
        "speedup": round(speedup, 3),
        "p99_ratio": round(p99_ratio, 3),
    }
