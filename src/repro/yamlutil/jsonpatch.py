"""RFC 6902 JSON Patch over dict/list trees.

Kustomize's ``patchesJson6902`` and the Kubernetes API's
``application/json-patch+json`` content type both use this format.
Implements the six operations (add, remove, replace, move, copy, test)
with JSON-Pointer addressing (RFC 6901), including the ``-`` append
index and ``~0``/``~1`` escapes.
"""

from __future__ import annotations

from typing import Any

from repro.yamlutil.tree import deep_copy


class JsonPatchError(ValueError):
    """Invalid pointer, failed test, or malformed operation."""


def parse_pointer(pointer: str) -> list[str]:
    """Split an RFC 6901 pointer into unescaped reference tokens."""
    if pointer == "":
        return []
    if not pointer.startswith("/"):
        raise JsonPatchError(f"pointer must start with '/': {pointer!r}")
    return [
        token.replace("~1", "/").replace("~0", "~")
        for token in pointer[1:].split("/")
    ]


def _resolve_parent(tree: Any, tokens: list[str]) -> tuple[Any, str]:
    """Walk to the parent of the addressed location."""
    node = tree
    for token in tokens[:-1]:
        node = _step(node, token)
    return node, tokens[-1]


def _step(node: Any, token: str) -> Any:
    if isinstance(node, dict):
        if token not in node:
            raise JsonPatchError(f"member {token!r} not found")
        return node[token]
    if isinstance(node, list):
        index = _list_index(node, token, allow_append=False)
        return node[index]
    raise JsonPatchError(f"cannot index scalar with {token!r}")


def _list_index(node: list, token: str, allow_append: bool) -> int:
    if token == "-":
        if allow_append:
            return len(node)
        raise JsonPatchError("'-' index only valid for add")
    try:
        index = int(token)
    except ValueError:
        raise JsonPatchError(f"bad array index {token!r}") from None
    limit = len(node) + (1 if allow_append else 0)
    if not 0 <= index < limit:
        raise JsonPatchError(f"array index {index} out of range")
    return index


def get_pointer(tree: Any, pointer: str) -> Any:
    """Read the value addressed by *pointer*."""
    node = tree
    for token in parse_pointer(pointer):
        node = _step(node, token)
    return node


def _op_add(tree: Any, tokens: list[str], value: Any) -> Any:
    if not tokens:
        return deep_copy(value)  # whole-document replace
    parent, last = _resolve_parent(tree, tokens)
    if isinstance(parent, dict):
        parent[last] = deep_copy(value)
    elif isinstance(parent, list):
        parent.insert(_list_index(parent, last, allow_append=True), deep_copy(value))
    else:
        raise JsonPatchError(f"cannot add into scalar at {last!r}")
    return tree


def _op_remove(tree: Any, tokens: list[str]) -> Any:
    if not tokens:
        raise JsonPatchError("cannot remove the whole document")
    parent, last = _resolve_parent(tree, tokens)
    if isinstance(parent, dict):
        if last not in parent:
            raise JsonPatchError(f"member {last!r} not found")
        del parent[last]
    elif isinstance(parent, list):
        del parent[_list_index(parent, last, allow_append=False)]
    else:
        raise JsonPatchError(f"cannot remove from scalar at {last!r}")
    return tree


def apply_patch(document: Any, operations: list[dict[str, Any]]) -> Any:
    """Apply a JSON Patch; returns a new document (input untouched).

    Raises :class:`JsonPatchError` on any failure, leaving no partial
    state visible to the caller.
    """
    tree = deep_copy(document)
    for operation in operations:
        op = operation.get("op")
        path = operation.get("path")
        if op is None or path is None:
            raise JsonPatchError(f"operation needs op and path: {operation!r}")
        tokens = parse_pointer(path)
        if op == "add":
            tree = _op_add(tree, tokens, operation.get("value"))
        elif op == "remove":
            tree = _op_remove(tree, tokens)
        elif op == "replace":
            get_pointer(tree, path)  # must exist
            tree = _op_remove(tree, tokens) if tokens else tree
            tree = _op_add(tree, tokens, operation.get("value"))
        elif op == "move":
            from_tokens = parse_pointer(operation.get("from", ""))
            value = get_pointer(tree, operation.get("from", ""))
            tree = _op_remove(tree, from_tokens)
            tree = _op_add(tree, tokens, value)
        elif op == "copy":
            value = get_pointer(tree, operation.get("from", ""))
            tree = _op_add(tree, tokens, value)
        elif op == "test":
            actual = get_pointer(tree, path)
            if actual != operation.get("value"):
                raise JsonPatchError(
                    f"test failed at {path!r}: {actual!r} != {operation.get('value')!r}"
                )
        else:
            raise JsonPatchError(f"unknown op {op!r}")
    return tree
