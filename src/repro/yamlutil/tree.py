"""Structural tree helpers: copies, node iteration, diff, containment."""

from __future__ import annotations

from typing import Any, Iterator

from repro.yamlutil.paths import FieldPath


def deep_copy(tree: Any) -> Any:
    """Deep-copy a dict/list/scalar tree (faster than copy.deepcopy
    for the plain-data trees used throughout this project)."""
    if isinstance(tree, dict):
        return {k: deep_copy(v) for k, v in tree.items()}
    if isinstance(tree, list):
        return [deep_copy(v) for v in tree]
    return tree


def iter_nodes(tree: Any, _prefix: FieldPath = FieldPath()) -> Iterator[tuple[FieldPath, Any]]:
    """Yield ``(path, node)`` for *every* node, interior and leaf,
    in depth-first pre-order.  The root is yielded with an empty path."""
    yield _prefix, tree
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from iter_nodes(value, _prefix.child(key))
    elif isinstance(tree, list):
        for i, value in enumerate(tree):
            yield from iter_nodes(value, _prefix.child(i))


def structural_diff(left: Any, right: Any) -> list[tuple[FieldPath, Any, Any]]:
    """Return ``(path, left_value, right_value)`` triples where the two
    trees differ.  A missing side is reported as the sentinel string
    ``"<absent>"``."""
    out: list[tuple[FieldPath, Any, Any]] = []
    _diff(left, right, FieldPath(), out)
    return out


_ABSENT = "<absent>"


def _diff(left: Any, right: Any, path: FieldPath, out: list) -> None:
    if isinstance(left, dict) and isinstance(right, dict):
        for key in sorted(set(left) | set(right), key=str):
            if key not in left:
                out.append((path.child(key), _ABSENT, right[key]))
            elif key not in right:
                out.append((path.child(key), left[key], _ABSENT))
            else:
                _diff(left[key], right[key], path.child(key), out)
    elif isinstance(left, list) and isinstance(right, list):
        for i in range(max(len(left), len(right))):
            if i >= len(left):
                out.append((path.child(i), _ABSENT, right[i]))
            elif i >= len(right):
                out.append((path.child(i), left[i], _ABSENT))
            else:
                _diff(left[i], right[i], path.child(i), out)
    elif left != right:
        out.append((path, left, right))


def subtree_contains(haystack: Any, needle: Any) -> bool:
    """True when every field present in *needle* exists in *haystack*
    with an equal value (dicts compared as subsets, recursively; lists
    compared element-wise as prefixes)."""
    if isinstance(needle, dict):
        if not isinstance(haystack, dict):
            return False
        return all(
            key in haystack and subtree_contains(haystack[key], value)
            for key, value in needle.items()
        )
    if isinstance(needle, list):
        if not isinstance(haystack, list) or len(haystack) < len(needle):
            return False
        return all(subtree_contains(h, n) for h, n in zip(haystack, needle))
    return haystack == needle
