"""Helm-style deep merge of values structures.

Helm merges a chart's default ``values.yaml`` with user-supplied
overrides: maps merge key-by-key recursively, while scalars and lists
from the override *replace* the defaults wholesale.  Setting a key to
``None`` in the override deletes it from the result, mirroring Helm's
null-deletion semantics.
"""

from __future__ import annotations

from typing import Any


def deep_merge(base: Any, override: Any, delete_on_none: bool = True) -> Any:
    """Merge *override* on top of *base*, returning a new structure.

    Neither argument is mutated.  ``dict`` values merge recursively;
    anything else in *override* replaces the corresponding *base*
    value.  When *delete_on_none* is true, a ``None`` override value
    removes the key entirely (Helm semantics).
    """
    if isinstance(base, dict) and isinstance(override, dict):
        merged: dict[Any, Any] = {k: _copy(v) for k, v in base.items()}
        for key, value in override.items():
            if value is None and delete_on_none:
                merged.pop(key, None)
            elif key in merged:
                merged[key] = deep_merge(merged[key], value, delete_on_none)
            else:
                merged[key] = _copy(value)
        return merged
    return _copy(override)


def _copy(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _copy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_copy(v) for v in value]
    return value
