"""Dotted field paths over nested dict/list structures.

Kubernetes manifests, Helm values files, and KubeFence validators are
all deeply nested trees of dicts, lists, and scalars.  A
:class:`FieldPath` names one location inside such a tree, e.g.::

    spec.template.spec.containers[0].securityContext.runAsNonRoot

Paths are immutable and hashable so they can be used as dict keys and
set members (the attack-surface analysis counts *sets* of paths).
"""

from __future__ import annotations

import re
from typing import Any, Iterator

# One path segment: a key name optionally followed by [i][j]... indexes.
# The key may be absent for index-only segments (a list at the root).
_SEGMENT_RE = re.compile(r"^(?P<key>[^.\[\]]+)?(?P<idx>(\[\d+\])+|)$")
_INDEX_RE = re.compile(r"\[(\d+)\]")


class FieldPath:
    """An immutable path into a nested dict/list structure.

    Internally a tuple of parts, where each part is either a ``str``
    (dict key) or an ``int`` (list index).
    """

    __slots__ = ("_parts",)

    def __init__(self, parts: tuple[str | int, ...] = ()):
        self._parts = tuple(parts)

    @classmethod
    def parse(cls, text: str) -> "FieldPath":
        """Parse a dotted path like ``spec.containers[0].image``.

        Raises :class:`ValueError` on malformed input.
        """
        if text == "":
            return cls(())
        parts: list[str | int] = []
        for segment in text.split("."):
            match = _SEGMENT_RE.match(segment)
            if match is None or (not match.group("key") and not match.group("idx")):
                raise ValueError(f"malformed path segment {segment!r} in {text!r}")
            if match.group("key"):
                parts.append(match.group("key"))
            for idx in _INDEX_RE.findall(match.group("idx")):
                parts.append(int(idx))
        return cls(tuple(parts))

    @property
    def parts(self) -> tuple[str | int, ...]:
        return self._parts

    @property
    def keys_only(self) -> tuple[str, ...]:
        """The path with list indexes stripped (structural identity).

        ``containers[0].image`` and ``containers[3].image`` denote the
        same *schema field*; the attack-surface analysis counts schema
        fields, so it compares ``keys_only`` forms.
        """
        return tuple(p for p in self._parts if isinstance(p, str))

    def child(self, part: str | int) -> "FieldPath":
        return FieldPath(self._parts + (part,))

    def parent(self) -> "FieldPath":
        if not self._parts:
            raise ValueError("root path has no parent")
        return FieldPath(self._parts[:-1])

    def startswith(self, other: "FieldPath") -> bool:
        return self._parts[: len(other._parts)] == other._parts

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[str | int]:
        return iter(self._parts)

    def __hash__(self) -> int:
        return hash(self._parts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldPath):
            return self._parts == other._parts
        return NotImplemented

    def __lt__(self, other: "FieldPath") -> bool:
        return self._canonical() < other._canonical()

    def _canonical(self) -> tuple[tuple[int, str], ...]:
        # Mixed str/int tuples do not compare; normalise for ordering.
        return tuple(
            (0, f"{p:012d}") if isinstance(p, int) else (1, p) for p in self._parts
        )

    def __str__(self) -> str:
        out: list[str] = []
        for part in self._parts:
            if isinstance(part, int):
                out.append(f"[{part}]")
            elif out:
                out.append("." + part)
            else:
                out.append(part)
        return "".join(out)

    def __repr__(self) -> str:
        return f"FieldPath({str(self)!r})"


def _as_path(path: "FieldPath | str") -> FieldPath:
    if isinstance(path, FieldPath):
        return path
    return FieldPath.parse(path)


_MISSING = object()


def get_path(tree: Any, path: "FieldPath | str", default: Any = _MISSING) -> Any:
    """Return the value at *path* inside *tree*.

    Raises :class:`KeyError` / :class:`IndexError` when the path does
    not exist and no *default* was given.
    """
    node = tree
    for part in _as_path(path):
        try:
            if isinstance(part, int):
                if not isinstance(node, list):
                    raise KeyError(part)
                node = node[part]
            else:
                if not isinstance(node, dict):
                    raise KeyError(part)
                node = node[part]
        except (KeyError, IndexError):
            if default is _MISSING:
                raise
            return default
    return node


def set_path(tree: Any, path: "FieldPath | str", value: Any) -> Any:
    """Set *value* at *path*, creating intermediate dicts/lists.

    Intermediate dicts are created for string parts; lists are extended
    with ``{}`` placeholders for integer parts.  Returns *tree* for
    chaining.
    """
    parts = _as_path(path).parts
    if not parts:
        raise ValueError("cannot set the root of a tree")
    node = tree
    for i, part in enumerate(parts[:-1]):
        nxt = parts[i + 1]
        if isinstance(part, int):
            if not isinstance(node, list):
                raise TypeError(f"expected list at {parts[:i]}, got {type(node)}")
            while len(node) <= part:
                node.append([] if isinstance(nxt, int) else {})
            if node[part] is None:
                node[part] = [] if isinstance(nxt, int) else {}
            node = node[part]
        else:
            if not isinstance(node, dict):
                raise TypeError(f"expected dict at {parts[:i]}, got {type(node)}")
            if part not in node or node[part] is None:
                node[part] = [] if isinstance(nxt, int) else {}
            node = node[part]
    last = parts[-1]
    if isinstance(last, int):
        if not isinstance(node, list):
            raise TypeError(f"expected list at {parts[:-1]}, got {type(node)}")
        while len(node) <= last:
            node.append(None)
        node[last] = value
    else:
        if not isinstance(node, dict):
            raise TypeError(f"expected dict at {parts[:-1]}, got {type(node)}")
        node[last] = value
    return tree


def delete_path(tree: Any, path: "FieldPath | str") -> bool:
    """Delete the value at *path*.  Returns True if something was removed."""
    parts = _as_path(path).parts
    if not parts:
        raise ValueError("cannot delete the root of a tree")
    try:
        node = get_path(tree, FieldPath(parts[:-1]))
    except (KeyError, IndexError):
        return False
    last = parts[-1]
    if isinstance(last, int):
        if isinstance(node, list) and 0 <= last < len(node):
            del node[last]
            return True
        return False
    if isinstance(node, dict) and last in node:
        del node[last]
        return True
    return False


def walk_leaves(tree: Any, _prefix: FieldPath = FieldPath()) -> Iterator[tuple[FieldPath, Any]]:
    """Yield ``(path, value)`` for every leaf (non-dict, non-list) node.

    Empty dicts and empty lists are themselves yielded as leaves so
    that structure-only fields (e.g. ``emptyDir: {}``) are not lost.
    """
    if isinstance(tree, dict):
        if not tree:
            yield _prefix, tree
            return
        for key, value in tree.items():
            yield from walk_leaves(value, _prefix.child(key))
    elif isinstance(tree, list):
        if not tree:
            yield _prefix, tree
            return
        for i, value in enumerate(tree):
            yield from walk_leaves(value, _prefix.child(i))
    else:
        yield _prefix, tree
