"""Generic YAML/tree utilities shared by every subsystem.

This package provides the low-level plumbing that the Kubernetes
substrate, the Helm engine, and the KubeFence core all build on:

- :mod:`repro.yamlutil.paths` -- dotted field paths with list-index
  support, plus get/set/walk helpers over nested dict/list structures.
- :mod:`repro.yamlutil.merge` -- Helm-style deep merging of values
  structures (maps merge recursively, scalars and lists replace).
- :mod:`repro.yamlutil.tree` -- structural helpers: leaf enumeration,
  deep copies, structural diff, and subtree containment checks.
"""

from repro.yamlutil.merge import deep_merge
from repro.yamlutil.paths import (
    FieldPath,
    delete_path,
    get_path,
    set_path,
    walk_leaves,
)
from repro.yamlutil.tree import (
    deep_copy,
    iter_nodes,
    structural_diff,
    subtree_contains,
)

__all__ = [
    "FieldPath",
    "get_path",
    "set_path",
    "delete_path",
    "walk_leaves",
    "deep_merge",
    "deep_copy",
    "iter_nodes",
    "structural_diff",
    "subtree_contains",
]
