"""Seeded generation of schema-valid Kubernetes manifests.

The generator walks a kind's :class:`~repro.k8s.schema.FieldSpec` tree
and draws values by type: enums pick from their options, ints/ports
draw bounded integers, quantities draw realistic resource strings, and
object fields are included with a density probability (so generated
manifests vary structurally, not just in values).  Required identity
fields (kind, apiVersion, metadata.name, container name/image) are
always present so every output is a deployable object.

Determinism: same seed, same corpus -- a fuzzing campaign is a
reproducible experiment.
"""

from __future__ import annotations

import random
import string
from typing import Any

from repro.k8s.gvk import registry
from repro.k8s.schema import FieldSpec, SchemaCatalog, catalog as default_catalog

#: Fields always emitted when their parent is emitted.
_ALWAYS = frozenset({"name", "image", "containers", "metadata", "mountPath"})

_QUANTITIES = ("100m", "250m", "500m", "1", "2", "64Mi", "128Mi", "512Mi", "1Gi")


class ManifestFuzzer:
    """Draws schema-valid manifests for one or more kinds."""

    def __init__(
        self,
        seed: int = 0,
        density: float = 0.15,
        max_list_items: int = 2,
        schemas: SchemaCatalog | None = None,
    ):
        self.rng = random.Random(seed)
        self.density = density
        self.max_list_items = max_list_items
        self.schemas = schemas if schemas is not None else default_catalog
        self._counter = 0

    # -- public API ---------------------------------------------------------

    def manifest(self, kind: str) -> dict[str, Any]:
        """One random manifest of *kind* (always structurally valid)."""
        root = self.schemas.schema(kind)
        self._counter += 1
        body = self._object(root, depth=0)
        body["kind"] = kind
        body["apiVersion"] = registry.by_kind(kind).gvk.api_version if kind in registry else "v1"
        metadata = body.setdefault("metadata", {})
        if not isinstance(metadata, dict):
            metadata = body["metadata"] = {}
        metadata["name"] = f"fuzz-{kind.lower()}-{self._counter:05d}"
        metadata["namespace"] = "default"
        metadata.pop("generateName", None)
        metadata.pop("ownerReferences", None)
        metadata.pop("finalizers", None)
        self._repair_workload(body, kind)
        return body

    def corpus(self, kind: str, count: int) -> list[dict[str, Any]]:
        return [self.manifest(kind) for _ in range(count)]

    # -- drawing -------------------------------------------------------------

    def _include(self, name: str) -> bool:
        return name in _ALWAYS or self.rng.random() < self.density

    def _object(self, spec: FieldSpec, depth: int) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name, child in spec.children.items():
            if name == "status" or not self._include(name):
                continue
            value = self._value(child, depth + 1)
            if value is not None:
                out[name] = value
        return out

    def _value(self, spec: FieldSpec, depth: int) -> Any:
        if depth > 12:
            return None
        ftype = spec.ftype
        if ftype == "object":
            drawn = self._object(spec, depth)
            return drawn if drawn else None
        if ftype == "array":
            return self._array(spec, depth)
        if ftype == "enum":
            return self.rng.choice(spec.enum)
        if ftype == "string":
            return self._string(spec.name)
        if ftype == "int":
            return self.rng.randint(0, 10)
        if ftype == "bool":
            return self.rng.random() < 0.5
        if ftype == "port":
            return self.rng.randint(1, 65535)
        if ftype == "ip":
            return ".".join(str(self.rng.randint(0, 255)) for _ in range(4))
        if ftype == "quantity":
            return self.rng.choice(_QUANTITIES)
        if ftype == "map":
            return {self._string("key"): self._string("value")}
        return None

    def _array(self, spec: FieldSpec, depth: int) -> list | None:
        assert spec.items is not None
        count = self.rng.randint(1, self.max_list_items)
        if spec.items.ftype == "object" and spec.items.children:
            items = [self._object(spec.items, depth) for _ in range(count)]
            items = [i for i in items if i]
            return items or None
        items_spec = FieldSpec(spec.name, spec.items.ftype, enum=spec.items.enum)
        return [self._value(items_spec, depth) for _ in range(count)]

    def _string(self, hint: str) -> str:
        base = "".join(self.rng.choices(string.ascii_lowercase, k=6))
        return f"{hint[:8]}-{base}" if hint else base

    # -- repair --------------------------------------------------------------

    def _repair_workload(self, body: dict[str, Any], kind: str) -> None:
        """Guarantee the minimal shape controllers expect: a pod spec
        with at least one named container with an image."""
        if kind not in registry:
            return
        pod_path = registry.by_kind(kind).pod_spec_path
        if pod_path is None:
            return
        from repro.yamlutil import get_path, set_path

        pod_spec = get_path(body, pod_path, None)
        if not isinstance(pod_spec, dict):
            set_path(body, pod_path, {})
            pod_spec = get_path(body, pod_path)
        containers = pod_spec.get("containers")
        if not isinstance(containers, list) or not containers:
            pod_spec["containers"] = [{}]
            containers = pod_spec["containers"]
        for index, container in enumerate(containers):
            if not isinstance(container, dict):
                containers[index] = container = {}
            container.setdefault("name", f"c{index}")
            container.setdefault("image", f"registry.example.com/fuzz:{index}")
