"""Structure-aware manifest fuzzing (paper Sec. VIII).

For the attack surface KubeFence cannot close -- interfaces legitimate
workloads genuinely use -- the paper suggests "more thorough testing,
such as fuzzing, to identify vulnerabilities in the residual attack
surface" (citing structure-aware K8s object fuzzing).  This package
implements that tool against the schema catalog:

- :mod:`repro.fuzz.generator` -- seeded generation of schema-valid
  manifests directly from the FieldSpec trees (every generated object
  passes server-side structural validation by construction);
- :mod:`repro.fuzz.campaign` -- drive generated manifests at a
  policy-protected cluster and report what the policy admits, what the
  exploit engine triggers, and therefore where residual risk lives.
"""

from repro.fuzz.campaign import FuzzCampaignResult, run_fuzz_campaign
from repro.fuzz.generator import ManifestFuzzer

__all__ = ["FuzzCampaignResult", "ManifestFuzzer", "run_fuzz_campaign"]
