"""Fuzzing campaigns against a policy-protected cluster.

Drives a corpus of schema-valid manifests at the KubeFence proxy and
measures the residual attack surface empirically:

- **denied** -- the policy filtered the manifest (the common case:
  random schema-valid objects use fields the workload never uses);
- **admitted** -- the manifest fit the workload policy;
- **exploit-triggering** -- admitted manifests that fired a CVE trigger
  in the exploit engine: the empirical residual risk.

The same corpus is also run against an unprotected cluster, so the
report quantifies how much of the schema-valid exploit space the policy
removed (the fuzzing analogue of Table I's static field counting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.enforcement import Validator
from repro.core.proxy import KubeFenceProxy
from repro.fuzz.generator import ManifestFuzzer
from repro.k8s.apiserver import ApiRequest, Cluster, User
from repro.k8s.vulndb import ExploitEngine


@dataclass
class FuzzCampaignResult:
    operator: str
    total: int = 0
    admitted: int = 0
    denied: int = 0
    server_rejected: int = 0
    exploits_protected: dict[str, int] = field(default_factory=dict)
    exploits_unprotected: dict[str, int] = field(default_factory=dict)

    @property
    def denial_rate(self) -> float:
        return self.denied / self.total if self.total else 0.0

    @property
    def residual_exploit_count(self) -> int:
        return sum(self.exploits_protected.values())

    def render(self) -> str:
        lines = [
            f"fuzz campaign against {self.operator!r} policy: {self.total} manifests",
            f"  denied by policy      : {self.denied} ({100 * self.denial_rate:.1f}%)",
            f"  admitted              : {self.admitted}",
            f"  server-side rejected  : {self.server_rejected}",
            f"  exploits (unprotected): {sum(self.exploits_unprotected.values())} "
            f"across {len(self.exploits_unprotected)} CVEs",
            f"  exploits (protected)  : {self.residual_exploit_count} "
            f"across {len(self.exploits_protected)} CVEs",
        ]
        for cve, count in sorted(self.exploits_protected.items()):
            lines.append(f"    residual: {cve} x{count}")
        return "\n".join(lines)


def run_fuzz_campaign(
    validator: Validator,
    kinds: list[str],
    count_per_kind: int = 50,
    seed: int = 0,
) -> FuzzCampaignResult:
    """Fuzz *kinds* against *validator* and an unprotected baseline."""
    fuzzer = ManifestFuzzer(seed=seed)
    corpus: list[dict[str, Any]] = []
    for kind in kinds:
        corpus.extend(fuzzer.corpus(kind, count_per_kind))

    result = FuzzCampaignResult(operator=validator.operator, total=len(corpus))

    protected_cluster = Cluster()
    protected_engine = ExploitEngine()
    protected_cluster.api.register_admission_plugin(protected_engine)
    proxy = KubeFenceProxy(protected_cluster.api, validator)

    unprotected_cluster = Cluster()
    unprotected_engine = ExploitEngine()
    unprotected_cluster.api.register_admission_plugin(unprotected_engine)

    user = User("fuzzer")
    for manifest in corpus:
        unprotected_engine.clear()
        unprotected_cluster.apply(manifest, user=User.admin())
        for event in unprotected_engine.events:
            result.exploits_unprotected[event.cve_id] = (
                result.exploits_unprotected.get(event.cve_id, 0) + 1
            )

        protected_engine.clear()
        response = proxy.submit(ApiRequest.from_manifest(manifest, user, "create"))
        if response.code == 403:
            result.denied += 1
        elif response.ok:
            result.admitted += 1
            for event in protected_engine.events:
                result.exploits_protected[event.cve_id] = (
                    result.exploits_protected.get(event.cve_id, 0) + 1
                )
        else:
            result.server_rejected += 1
    return result
