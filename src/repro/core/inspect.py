"""Validator inspection and drift analysis.

Operating KubeFence day to day means answering two questions the paper
leaves to tooling:

- *what does this policy actually allow?* -- :func:`summarize` distils
  a validator into per-kind field counts, placeholder/enums/constant
  composition, and the active security locks;
- *what changed when the chart was upgraded?* -- :func:`diff_validators`
  compares two validators field by field and classifies each change as
  an **opening** (new field/value allowed: attack surface grows) or a
  **restriction** (field/value no longer allowed: legitimate traffic
  may break), which is exactly the review an admin performs before
  rolling a regenerated policy out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core import placeholders as ph
from repro.core.enforcement import Validator


@dataclass
class KindSummary:
    """Composition of one kind's allowed-configuration tree."""

    kind: str
    fields: int = 0
    constants: int = 0
    placeholders: int = 0
    patterns: int = 0
    enums: int = 0

    def line(self) -> str:
        return (
            f"{self.kind:24s} {self.fields:4d} fields "
            f"({self.constants} const, {self.placeholders} typed, "
            f"{self.patterns} pattern, {self.enums} enum)"
        )


@dataclass
class ValidatorSummary:
    operator: str
    kinds: list[KindSummary] = field(default_factory=list)
    locks: int = 0

    def render(self) -> str:
        lines = [f"validator for {self.operator!r}: "
                 f"{len(self.kinds)} kinds, {self.locks} security locks"]
        lines += ["  " + k.line() for k in self.kinds]
        return "\n".join(lines)


def _classify_scalar(value: Any, summary: KindSummary) -> None:
    if ph.placeholder_type(value) is not None:
        summary.placeholders += 1
    elif ph.has_embedded(value):
        summary.patterns += 1
    else:
        summary.constants += 1


def _walk_kind(node: Any, summary: KindSummary, in_union: bool = False) -> None:
    if isinstance(node, dict):
        for value in node.values():
            summary.fields += 1
            _walk_kind(value, summary)
    elif isinstance(node, list):
        scalars = [v for v in node if not isinstance(v, (dict, list))]
        if len(scalars) == len(node) and len(node) > 1:
            summary.enums += 1
            return
        for element in node:
            _walk_kind(element, summary, in_union=True)
    else:
        _classify_scalar(node, summary)


def summarize(validator: Validator) -> ValidatorSummary:
    """Distil a validator into reviewable numbers."""
    summary = ValidatorSummary(operator=validator.operator, locks=len(validator.locks))
    for kind in sorted(validator.kinds):
        kind_summary = KindSummary(kind=kind)
        _walk_kind(validator.kinds[kind], kind_summary)
        summary.kinds.append(kind_summary)
    return summary


# ---------------------------------------------------------------------------
# Drift
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DriftEntry:
    """One policy change between two validator versions."""

    kind: str
    path: str
    change: str  # "opened" | "restricted" | "value-changed"
    detail: str


@dataclass
class PolicyDrift:
    operator: str
    openings: list[DriftEntry] = field(default_factory=list)
    restrictions: list[DriftEntry] = field(default_factory=list)
    value_changes: list[DriftEntry] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (self.openings or self.restrictions or self.value_changes)

    def render(self) -> str:
        if self.is_empty:
            return f"no policy drift for {self.operator!r}"
        lines = [f"policy drift for {self.operator!r}:"]
        for title, entries in (
            ("OPENINGS (attack surface grows)", self.openings),
            ("RESTRICTIONS (may break legitimate traffic)", self.restrictions),
            ("VALUE CHANGES", self.value_changes),
        ):
            if entries:
                lines.append(f"  {title}:")
                lines += [f"    {e.kind}: {e.path} -- {e.detail}" for e in entries]
        return "\n".join(lines)


def _field_map(tree: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten a kind tree into path -> allowed-value (lists folded)."""
    out: dict[str, Any] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else key
            out[path] = value
            out.update(_field_map(value, path))
    elif isinstance(tree, list):
        for element in tree:
            if isinstance(element, dict):
                # Named elements (containers, ports, env) keep their
                # identity so same-named fields of siblings don't mask
                # each other in the comparison.
                name = element.get("name")
                element_prefix = (
                    f"{prefix}[{name}]" if isinstance(name, str) else prefix
                )
                out.update(_field_map(element, element_prefix))
            elif isinstance(element, list):
                out.update(_field_map(element, prefix))
    return out


def diff_validators(old: Validator, new: Validator) -> PolicyDrift:
    """Classify the changes from *old* to *new*."""
    drift = PolicyDrift(operator=new.operator or old.operator)
    for kind in sorted(set(old.kinds) | set(new.kinds)):
        if kind not in old.kinds:
            drift.openings.append(
                DriftEntry(kind, "(kind)", "opened", "kind newly allowed")
            )
            continue
        if kind not in new.kinds:
            drift.restrictions.append(
                DriftEntry(kind, "(kind)", "restricted", "kind no longer allowed")
            )
            continue
        old_fields = _field_map(old.kinds[kind])
        new_fields = _field_map(new.kinds[kind])
        for path in sorted(set(old_fields) | set(new_fields)):
            if path not in old_fields:
                drift.openings.append(
                    DriftEntry(kind, path, "opened", "field newly allowed")
                )
            elif path not in new_fields:
                drift.restrictions.append(
                    DriftEntry(kind, path, "restricted", "field no longer allowed")
                )
            else:
                old_value, new_value = old_fields[path], new_fields[path]
                if old_value == new_value or isinstance(new_value, (dict,)):
                    continue
                if isinstance(old_value, (dict, list)) or isinstance(new_value, (dict, list)):
                    continue
                if _is_widening(old_value, new_value):
                    drift.openings.append(
                        DriftEntry(kind, path, "opened",
                                   f"widened {old_value!r} -> {new_value!r}")
                    )
                elif _is_widening(new_value, old_value):
                    drift.restrictions.append(
                        DriftEntry(kind, path, "restricted",
                                   f"narrowed {old_value!r} -> {new_value!r}")
                    )
                else:
                    drift.value_changes.append(
                        DriftEntry(kind, path, "value-changed",
                                   f"{old_value!r} -> {new_value!r}")
                    )
    return drift


def _is_widening(old_value: Any, new_value: Any) -> bool:
    """True when every value allowed by *old_value* is allowed by
    *new_value* (constant -> matching placeholder, etc.)."""
    new_type = ph.placeholder_type(new_value)
    if new_type is None:
        return False
    old_type = ph.placeholder_type(old_value)
    if old_type is not None:
        return old_type == new_type or (old_type == "port" and new_type == "int")
    return ph.matches(old_value, new_value)
