"""Phase 3: rendering of manifests from values variants.

Each values variant is combined with the chart templates (the ``helm
template`` equivalent).  Placeholders flow through rendering as plain
strings; the only special handling is **placeholder-propagating
arithmetic**: template expressions like ``{{ add 1 .Values.replicas }}``
must yield an ``int`` placeholder rather than treating ``⟨int⟩`` as 0,
otherwise the validator would wrongly pin a computed field to a
constant and block legitimate overrides.

The release name is rendered as the sentinel ``RELEASE-NAME`` (as
``helm template`` does); the validator generator later converts any
string containing the sentinel into a name *pattern*.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core import placeholders
from repro.helm.chart import Chart, render_chart
from repro.helm.functions import build_function_map

#: helm template's default release name.
RELEASE_SENTINEL = "RELEASE-NAME"

_ARITHMETIC = ("add", "add1", "sub", "mul", "div", "mod", "max", "min", "int", "int64")


def _placeholder_aware(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args: Any) -> Any:
        if any(
            placeholders.has_embedded(a) or placeholders.is_placeholder(a) for a in args
        ):
            return placeholders.make("int")
        return fn(*args)

    return wrapped


def placeholder_function_overrides() -> dict[str, Callable[..., Any]]:
    """Arithmetic functions that propagate placeholders instead of
    coercing them to zero."""
    base = build_function_map()
    return {name: _placeholder_aware(base[name]) for name in _ARITHMETIC}


def render_variant(
    chart: Chart, variant: dict[str, Any], namespace: str = "default"
) -> list[dict[str, Any]]:
    """Render one values variant into manifests."""
    return render_chart(
        chart,
        values=variant,
        release_name=RELEASE_SENTINEL,
        namespace=namespace,
        function_overrides=placeholder_function_overrides(),
    )


def render_all_variants(
    chart: Chart, variants: list[dict[str, Any]], namespace: str = "default"
) -> list[dict[str, Any]]:
    """Render every variant; returns the concatenated manifest list."""
    manifests: list[dict[str, Any]] = []
    for variant in variants:
        manifests.extend(render_variant(chart, variant, namespace=namespace))
    return manifests
