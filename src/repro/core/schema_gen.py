"""Phase 1: generation of the values schema (Fig. 7).

Transforms a chart's default values into a generalized *values schema*:

1. static scalars are replaced by typed placeholders (regex-based type
   inference: bool, int, port, IP, quantity, string);
2. enumerative fields (``# @enum:`` annotations in the values file) are
   recorded with their full option lists for the exploration phase;
3. security-critical fields are locked to safe constants, and fields in
   the trusted-constant list (image registry/repository) keep their
   chart defaults instead of becoming placeholders;
4. lists are generalized: a list of scalars becomes a single-element
   list holding the element placeholder, and a list of objects becomes
   a single-element list holding the merged, placeholder-ized object
   (the paper's ``[list]`` generalization, kept structured so that
   templates can still ``range`` over it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core import placeholders
from repro.core.security import VALUE_KEY_LOCKS, VALUE_SAFE_CONSTANTS
from repro.helm.chart import Chart
from repro.yamlutil import deep_merge


@dataclass
class ValuesSchema:
    """The generalized values structure plus its enum registry."""

    schema: dict[str, Any]
    enums: dict[str, list[Any]] = field(default_factory=dict)
    locked_paths: list[str] = field(default_factory=list)

    def max_enum_length(self) -> int:
        return max((len(v) for v in self.enums.values()), default=0)


def generate_values_schema(
    chart: Chart,
    explore_booleans: bool = False,
    extra_enums: dict[str, list[Any]] | None = None,
) -> ValuesSchema:
    """Build the values schema for *chart*.

    With ``explore_booleans=True``, boolean fields are additionally
    registered as two-valued enums so that the exploration phase covers
    both branches of boolean conditionals (an extension over the
    paper's bool placeholder, evaluated as an ablation).
    """
    enums: dict[str, list[Any]] = dict(chart.enum_annotations())
    if extra_enums:
        enums.update(extra_enums)
    locked: list[str] = []

    def transform(node: Any, path: str, key: str) -> Any:
        if path in enums:
            # Enum fields keep their default; the explorer substitutes
            # each valid option in turn.
            return node
        if isinstance(node, dict):
            return {k: transform(v, f"{path}.{k}" if path else k, k) for k, v in node.items()}
        if isinstance(node, list):
            return _generalize_list(node, path, key, transform)
        if key in VALUE_SAFE_CONSTANTS:
            locked.append(path)
            return VALUE_SAFE_CONSTANTS[key]
        if key in VALUE_KEY_LOCKS and isinstance(node, str):
            locked.append(path)
            return node
        if node is None:
            return None
        if isinstance(node, bool):
            if explore_booleans:
                # Order matters: [default, flipped] keeps variant 0 the
                # pure-default configuration, so structure gated by one
                # boolean is rendered with every *other* value at its
                # default (correlated flips are not enumerated; that
                # residual imprecision is the ablation's finding).
                enums.setdefault(path, [node, not node])
                return node
            return placeholders.make("bool")
        return placeholders.infer_placeholder(key, node)

    schema = transform(chart.values, "", "")
    # Subchart defaults are part of the configuration space too: their
    # values live under the dependency key (Helm convention), so users
    # can override them -- generalize them exactly like parent values.
    # Parent-declared entries win (they are the chart author's intent).
    for dep_name, subchart in chart.dependencies.items():
        for path, options in subchart.enum_annotations().items():
            enums.setdefault(f"{dep_name}.{path}", options)
        sub_schema = transform(subchart.values, dep_name, dep_name)
        parent_entry = schema.get(dep_name)
        if isinstance(sub_schema, dict):
            schema[dep_name] = deep_merge(
                sub_schema, parent_entry if isinstance(parent_entry, dict) else {}
            )
    return ValuesSchema(schema=schema, enums=enums, locked_paths=sorted(locked))


def _generalize_list(items: list, path: str, key: str, transform: Any) -> list:
    """Generalize a values list to one representative element."""
    if not items:
        return []
    if all(isinstance(item, dict) for item in items):
        merged: dict = {}
        for item in items:
            merged = deep_merge(merged, item, delete_on_none=False)
        return [transform(merged, f"{path}[]", key)]
    # Scalar (or mixed) list: one placeholder of the first element's type.
    return [placeholders.infer_placeholder(key, items[0])]
