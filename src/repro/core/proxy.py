"""The KubeFence enforcement proxy (Sec. V-B).

Deployed between clients and the API server (mitmproxy in the paper's
testbed), the proxy intercepts every API request, validates write
payloads against the workload's validator, and either forwards the
request or answers with an HTTP 403 containing the offending fields.
Denials are logged with the field and reason for auditing and
forensics.

Complete mediation: in the paper the API server only accepts
certificate-authenticated connections from the proxy.  Here the proxy
*is* the only transport handed to clients in the protected
configuration, which yields the same property in-process; the HTTP
deployment (:mod:`repro.k8s.http` + :class:`HttpKubeFenceProxy`)
reproduces the real network topology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.enforcement import ValidationResult, Validator
from repro.k8s.apiserver import APIServer, ApiRequest, ApiResponse
from repro.k8s.errors import ApiError

#: Verbs whose payload is validated.
_WRITE_VERBS = frozenset({"create", "update", "patch"})


@dataclass(frozen=True)
class DenialRecord:
    """One blocked request, for auditing and forensic analysis."""

    username: str
    verb: str
    kind: str
    name: str
    violations: tuple[str, ...]


@dataclass
class ProxyStats:
    """Runtime counters (overhead analysis, Table IV)."""

    requests_total: int = 0
    requests_validated: int = 0
    requests_denied: int = 0
    validation_seconds: float = 0.0


class KubeFenceProxy:
    """In-process enforcement proxy implementing the client Transport."""

    def __init__(self, api: APIServer, validator: Validator):
        self.api = api
        self.validator = validator
        self.denials: list[DenialRecord] = []
        self.stats = ProxyStats()

    def submit(self, request: ApiRequest) -> ApiResponse:
        """Intercept, validate, and forward or deny."""
        self.stats.requests_total += 1
        if request.verb in _WRITE_VERBS and isinstance(request.body, dict):
            started = time.perf_counter()
            result = self.validator.validate(request.body)
            self.stats.validation_seconds += time.perf_counter() - started
            self.stats.requests_validated += 1
            if not result.allowed:
                return self._deny(request, result)
        return self.api.handle(request)

    def _deny(self, request: ApiRequest, result: ValidationResult) -> ApiResponse:
        self.stats.requests_denied += 1
        name = ""
        if request.body:
            name = request.body.get("metadata", {}).get("name", "")
        record = DenialRecord(
            username=request.user.username,
            verb=request.verb,
            kind=request.kind,
            name=name or (request.name or ""),
            violations=tuple(str(v) for v in result.violations),
        )
        self.denials.append(record)
        error = ApiError.forbidden(
            f"KubeFence policy for workload {self.validator.operator!r} denied "
            f"{request.verb} of {request.kind}/{record.name}: {result.summary()}",
            violations=[str(v) for v in result.violations],
        )
        return ApiResponse.from_error(error)


class HttpKubeFenceProxy:
    """The proxy as a real HTTP reverse proxy (stdlib only).

    Mirrors the paper's mitmproxy deployment: clients speak HTTP to the
    proxy, which validates write bodies and forwards allowed requests
    to the upstream API server over HTTP.
    """

    def __init__(self, upstream_base_url: str, validator: Validator,
                 host: str = "127.0.0.1", port: int = 0):
        import json
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
        from urllib import request as urllib_request
        from urllib.error import HTTPError

        proxy = self
        self.validator = validator
        self.upstream = upstream_base_url.rstrip("/")
        self.denials: list[DenialRecord] = []
        self.stats = ProxyStats()

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def _reply(self, code: int, payload: dict | list) -> None:
                body = json.dumps(payload).encode()
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _forward(self, method: str, body: bytes | None) -> None:
                req = urllib_request.Request(
                    proxy.upstream + self.path,
                    data=body,
                    method=method,
                    headers={
                        "Content-Type": "application/json",
                        "X-Remote-User": self.headers.get("X-Remote-User", ""),
                        "X-Remote-Groups": self.headers.get("X-Remote-Groups", ""),
                    },
                )
                try:
                    with urllib_request.urlopen(req) as resp:
                        self._reply(resp.status, json.loads(resp.read() or b"{}"))
                except HTTPError as err:
                    self._reply(err.code, json.loads(err.read() or b"{}"))

            def _handle(self, method: str) -> None:
                proxy.stats.requests_total += 1
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else None
                if method in ("POST", "PUT", "PATCH") and raw:
                    try:
                        manifest = json.loads(raw)
                    except (ValueError, RecursionError):
                        self._reply(
                            400,
                            {"kind": "Status", "status": "Failure", "code": 400,
                             "reason": "BadRequest",
                             "message": "request body is not valid JSON"},
                        )
                        return
                    if not isinstance(manifest, dict):
                        self._reply(
                            400,
                            {"kind": "Status", "status": "Failure", "code": 400,
                             "reason": "BadRequest",
                             "message": "request body must be a JSON object"},
                        )
                        return
                    started = time.perf_counter()
                    result = proxy.validator.validate(manifest)
                    proxy.stats.validation_seconds += time.perf_counter() - started
                    proxy.stats.requests_validated += 1
                    if not result.allowed:
                        proxy.stats.requests_denied += 1
                        proxy.denials.append(
                            DenialRecord(
                                username=self.headers.get("X-Remote-User", ""),
                                verb=method.lower(),
                                kind=manifest.get("kind", ""),
                                name=manifest.get("metadata", {}).get("name", ""),
                                violations=tuple(str(v) for v in result.violations),
                            )
                        )
                        self._reply(
                            403,
                            {
                                "kind": "Status",
                                "apiVersion": "v1",
                                "status": "Failure",
                                "reason": "Forbidden",
                                "code": 403,
                                "message": "KubeFence policy denied the request: "
                                + result.summary(),
                            },
                        )
                        return
                self._forward(method, raw)

            def do_GET(self) -> None:
                self._handle("GET")

            def do_POST(self) -> None:
                self._handle("POST")

            def do_PUT(self) -> None:
                self._handle("PUT")

            def do_PATCH(self) -> None:
                self._handle("PATCH")

            def do_DELETE(self) -> None:
                self._handle("DELETE")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Any = None
        self._threading = threading

    @property
    def base_url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "HttpKubeFenceProxy":
        self._thread = self._threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "HttpKubeFenceProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class MultiPolicyProxy:
    """One proxy mediating several workloads (multi-tenant clusters).

    Each client identity is bound to its workload's validator; requests
    from identities with no bound policy are rejected outright
    (default-deny, per the least-privilege principle).  This models the
    paper's deployment at cluster scale: one mitmproxy instance, one
    policy per operator.
    """

    def __init__(self, api: APIServer, validators: dict[str, Validator],
                 read_through: bool = True):
        self.api = api
        self._proxies = {
            username: KubeFenceProxy(api, validator)
            for username, validator in validators.items()
        }
        self.read_through = read_through
        self.unbound_denials: list[DenialRecord] = []

    def bind(self, username: str, validator: Validator) -> None:
        """Attach a (new) workload policy to an identity."""
        self._proxies[username] = KubeFenceProxy(self.api, validator)

    def proxy_for(self, username: str) -> "KubeFenceProxy | None":
        return self._proxies.get(username)

    @property
    def denials(self) -> list[DenialRecord]:
        out = list(self.unbound_denials)
        for proxy in self._proxies.values():
            out.extend(proxy.denials)
        return out

    def submit(self, request: ApiRequest) -> ApiResponse:
        proxy = self._proxies.get(request.user.username)
        if proxy is not None:
            return proxy.submit(request)
        if self.read_through and request.verb in ("get", "list", "watch"):
            return self.api.handle(request)
        name = ""
        if request.body:
            name = request.body.get("metadata", {}).get("name", "")
        self.unbound_denials.append(
            DenialRecord(
                username=request.user.username,
                verb=request.verb,
                kind=request.kind,
                name=name or (request.name or ""),
                violations=("no policy bound to this identity",),
            )
        )
        return ApiResponse.from_error(
            ApiError.forbidden(
                f"KubeFence: no workload policy bound to identity "
                f"{request.user.username!r} (default deny)"
            )
        )
