"""The KubeFence enforcement proxy (Sec. V-B).

Deployed between clients and the API server (mitmproxy in the paper's
testbed), the proxy intercepts every API request, validates write
payloads against the workload's validator, and either forwards the
request or answers with an HTTP 403 containing the offending fields.
Denials are logged with the field and reason for auditing and
forensics.

Complete mediation: in the paper the API server only accepts
certificate-authenticated connections from the proxy.  Here the proxy
*is* the only transport handed to clients in the protected
configuration, which yields the same property in-process; the HTTP
deployment (:mod:`repro.k8s.http` + :class:`HttpKubeFenceProxy`)
reproduces the real network topology.

Performance: validation runs on the compiled engine
(:mod:`repro.core.compiled`) and sits behind a per-proxy
:class:`~repro.core.compiled.DecisionCache` -- a bounded LRU keyed on a
canonical hash of the write body, invalidated whenever the bound
validator (or its :attr:`policy_revision`) changes.  Controllers that
resubmit identical manifests (the reconcile-loop steady state) skip
validation entirely.

Observability: every request runs under a :mod:`repro.obs` trace
(spans ``proxy.validate``, ``cache.lookup``, ``engine.match`` here;
``admission.chain``/``store.commit`` downstream in the API server), and
:class:`ProxyStats` is a thin façade over a per-proxy
:class:`~repro.obs.MetricsRegistry` -- the HTTP proxy serves it at
``GET /metrics`` in Prometheus text format.  Denials are labeled by
``operator``/``kind``/``reason`` so Table III mitigation runs can be
read straight off a scrape.  ``REPRO_NO_OBS=1`` disables the layer.

Resilience: the upstream hop runs under the :mod:`repro.resilience`
guard -- retry with decorrelated-jitter backoff, a per-request
deadline, and a circuit breaker.  When the upstream is unavailable the
proxy degrades **fail-closed** (refuse with 503) or, optionally,
**fail-static** (serve recent cached reads only); a would-be denial is
never converted into an allow, because the validation gate runs
locally before any forwarding.  Every retry, breaker transition, and
degraded answer is a ``kubefence_*`` metric; the chaos harness
(:mod:`repro.faults`, ``repro chaos``) exercises all of it
deterministically.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import http.client
import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.compiled import DecisionCache, canonical_body_key
from repro.core.enforcement import ValidationResult, Validator
from repro.core.shards import (
    ShardedDecisionCache,
    fast_body_key,
    new_decision_cache,
    shards_enabled,
)
from repro.k8s.apiserver import APIServer, ApiRequest, ApiResponse
from repro.k8s.errors import ApiError
from repro.obs import (
    PROFILER,
    TimeSeriesRing,
    current_trace_id,
    new_phase_clock,
    new_registry,
    obs_endpoint,
    span,
    trace,
)
from repro.obs.analytics.events import SecurityEvent, new_event_bus
from repro.obs.refine.profiler import manifest_field_sample
from repro.yamlutil import deep_copy
from repro.resilience import (
    BREAKER_STATE_CODES,
    CircuitOpenError,
    DEFAULT_RESILIENCE,
    DeadlineExceeded,
    RETRYABLE_STATUS_CODES,
    ResilienceConfig,
    StaleReadCache,
    UpstreamGuard,
    UpstreamUnavailable,
    stale_read_key,
)

#: Verbs whose payload is validated.
_WRITE_VERBS = frozenset({"create", "update", "patch"})

#: HTTP methods safe to re-execute after a transport error.  A reset
#: or truncated read mid-write leaves it unknown whether the upstream
#: already applied the request, so non-idempotent methods only retry
#: on failure *results* (5xx responses, which imply non-processing) --
#: see HttpKubeFenceProxy's upstream_call.
_IDEMPOTENT_METHODS = frozenset({"GET", "HEAD"})

#: Ring-buffer size for per-request validation latency samples.
_MAX_LATENCY_SAMPLES = 8192

#: Default decision-cache capacity (entries, i.e. distinct bodies).
DEFAULT_DECISION_CACHE_SIZE = 1024


@dataclass(frozen=True)
class DenialRecord:
    """One blocked request, for auditing and forensic analysis."""

    username: str
    verb: str
    kind: str
    name: str
    violations: tuple[str, ...]


#: (substring of the first violation's reason, bounded metric label).
_DENIAL_REASONS: tuple[tuple[str, str], ...] = (
    ("not used by this workload", "kind-not-used"),
    ("missing kind", "missing-kind"),
    ("exceeds maximum depth", "depth-limit"),
    ("field not allowed", "field-not-allowed"),
    ("no allowed configuration matches", "list-entry-mismatch"),
    ("required by security policy", "security-lock"),
    ("expected an object", "shape-mismatch"),
)


def denial_reason(violations: Iterable[Any]) -> str:
    """Map free-text violations to a *bounded* reason label (the
    metrics cardinality guard requires a closed set)."""
    for violation in violations:
        text = str(getattr(violation, "reason", violation))
        for needle, label in _DENIAL_REASONS:
            if needle in text:
                return label
        return "value-not-allowed"
    return "other"


class ProxyStats:
    """Runtime counters (overhead analysis, Table IV).

    Since the observability layer landed this is a thin façade over a
    per-proxy :class:`~repro.obs.MetricsRegistry`: every counter the
    old dataclass carried is now a named metric (``kubefence_*``)
    scrapeable from ``/metrics``, while the attribute API
    (``stats.cache_hits`` etc.) is preserved for callers.  Latency is
    recorded twice: into a labeled Prometheus histogram
    (``kubefence_validation_latency_ns{outcome="hit"|"miss"}``) and
    into bounded sample rings for exact percentile math.

    Cache **hits** record their (cheap) lookup latency as their own
    sample instead of being silently dropped -- otherwise the Table IV
    mean-latency math over ``requests_validated`` would be skewed
    toward the miss cost.
    """

    def __init__(self, registry: Any | None = None):
        reg = registry if registry is not None else new_registry()
        self.registry = reg
        # Sharded data plane: hot instruments write through lock-free
        # per-thread cells (folded at scrape time); REPRO_NO_SHARDS=1
        # keeps every write under the registry lock as before.
        self._sharded = shards_enabled()
        requests = reg.counter(
            "kubefence_requests_total", "API requests intercepted by the proxy."
        )
        self._requests = self._bind(requests)
        validated = reg.counter(
            "kubefence_requests_validated_total",
            "Write requests whose body was checked against the policy.",
        )
        self._validated = self._bind(validated)
        self._denied = reg.counter(
            "kubefence_requests_denied_total", "Requests blocked by the policy."
        )
        self._denials = reg.counter(
            "kubefence_denials_total",
            "Denials by workload operator, resource kind, and reason category.",
            labels=("operator", "kind", "reason"),
            max_series=256,
        )
        self._cache_hits = self._bind(reg.counter(
            "kubefence_cache_hits_total", "Decision-cache hits (validation skipped)."
        ))
        self._cache_misses = self._bind(reg.counter(
            "kubefence_cache_misses_total", "Decision-cache misses."
        ))
        self._conn_opened = reg.counter(
            "kubefence_connections_opened_total",
            "Upstream keep-alive connections opened (HTTP proxy).",
        )
        self._conn_reused = reg.counter(
            "kubefence_connections_reused_total",
            "Upstream keep-alive connection reuses (HTTP proxy).",
        )
        # -- resilience layer (docs/RESILIENCE.md) -------------------------
        self._retries = reg.counter(
            "kubefence_retries_total",
            "Upstream retries performed by the resilience layer.",
        )
        self._breaker_state = reg.gauge(
            "kubefence_breaker_state",
            "Upstream circuit-breaker state (0=closed, 1=open, 2=half-open).",
        )
        self._breaker_transitions = reg.counter(
            "kubefence_breaker_transitions_total",
            "Circuit-breaker transitions, by target state.",
            labels=("state",),
        )
        self._degraded = reg.counter(
            "kubefence_degraded_requests_total",
            "Requests answered in degraded mode while the upstream was "
            "unavailable, by outcome (refused = fail-closed 503, "
            "stale-read = fail-static cached GET).",
            labels=("mode",),
        )
        self._upstream_errors = reg.counter(
            "kubefence_upstream_errors_total",
            "Upstream failures observed by the forwarding path, by kind.",
            labels=("kind",),
            max_series=16,
        )
        self._latency = reg.histogram(
            "kubefence_validation_latency_ns",
            "Validation-gate latency per write request, by cache outcome.",
            labels=("outcome",),
        )
        # Pre-bound hot series: labels() resolution off the request path.
        self._latency_hit = self._bind(self._latency, outcome="hit")
        self._latency_miss = self._bind(self._latency, outcome="miss")
        self._http = reg.counter(
            "http_requests_total",
            "HTTP requests served, by method and status code.",
            labels=("method", "code"),
            max_series=128,
        )
        self._http_bound: dict[tuple[str, str], Any] = {}
        self._denial_bound: dict[tuple[str, str, str], Any] = {}
        # Per-request phase attribution (kubefence_phase_ns_total):
        # a bound-``inc`` per phase, the null clock when telemetry is
        # off (phases.enabled gates any extra clock reads).
        self.phases = new_phase_clock(reg, sharded=self._sharded)
        #: per-request validation latency samples (ns), bounded rings:
        #: full validations (cache misses) and cache-hit lookups.
        self.validation_ns_samples: list[int] = []
        self.cache_hit_ns_samples: list[int] = []
        self._sample_cursor = 0
        self._hit_cursor = 0
        # Hot-path shortcut: these run unconditionally on every
        # request, so skip the wrapper frame (see comment above
        # the def-forms).
        self.count_request = self._requests.inc
        self.count_validated = self._validated.inc

    def _bind(self, metric: Any, **labels: str) -> Any:
        """A write handle for one series: lock-free per-thread cells on
        the sharded data plane (:meth:`_Metric.local`), the classic
        pre-bound locked series under ``REPRO_NO_SHARDS=1``."""
        if self._sharded:
            return metric.local(**labels)
        return metric.labels(**labels) if labels else metric

    # -- mutation (proxy internals only) -----------------------------------
    # The unconditional once-per-request counters are rebound to the
    # write handle's own ``inc`` at the end of __init__ (one call
    # frame less on the hot path); the def-forms below keep the
    # methods documented and are what subclasses would override.

    def count_request(self) -> None:
        self._requests.inc()

    def count_validated(self) -> None:
        self._validated.inc()

    def count_denial(self, operator: str, kind: str, reason: str) -> None:
        self._denied.inc()
        # Precomputed {operator,kind,reason} handles: repeat denials
        # (the interesting, attack-shaped case) skip labels() parsing
        # and -- on the sharded plane -- the registry lock entirely.
        key = (operator or "?", kind or "?", reason or "other")
        bound = self._denial_bound.get(key)
        if bound is None:
            bound = self._bind(
                self._denials, operator=key[0], kind=key[1], reason=key[2]
            )
            self._denial_bound[key] = bound
        bound.inc()

    def count_cache(self, hit: bool) -> None:
        (self._cache_hits if hit else self._cache_misses).inc()

    def count_connection(self, reused: bool) -> None:
        (self._conn_reused if reused else self._conn_opened).inc()

    def count_retry(self) -> None:
        self._retries.inc()

    def count_degraded(self, mode: str) -> None:
        self._degraded.labels(mode=mode).inc()

    def count_upstream_error(self, kind: str) -> None:
        self._upstream_errors.labels(kind=kind).inc()

    def record_breaker_transition(self, new_state: str) -> None:
        self._breaker_state.set(BREAKER_STATE_CODES.get(new_state, -1))
        self._breaker_transitions.labels(state=new_state).inc()

    def count_http_request(self, method: str, code: Any) -> None:
        key = (str(method or "?"), str(getattr(code, "value", code)))
        bound = self._http_bound.get(key)
        if bound is None:
            bound = self._bind(self._http, method=key[0], code=key[1])
            self._http_bound[key] = bound
        bound.inc()

    @staticmethod
    def _ring_append(samples: list[int], cursor: int, value: int) -> int:
        if len(samples) < _MAX_LATENCY_SAMPLES:
            samples.append(value)
        else:
            samples[cursor % _MAX_LATENCY_SAMPLES] = value
        return cursor + 1

    def record_validation_ns(self, elapsed_ns: int, cache_hit: bool = False) -> None:
        # Phase attribution rides the clock reads the gate already
        # takes: a cache hit's whole cost is the probe, a miss's is
        # the compiled validation (its probe share, when a cache is
        # bound, is stamped separately by ValidationGate.check).
        if cache_hit:
            self.phases.cache_probe(elapsed_ns)
            self._latency_hit.observe(elapsed_ns)
            self._hit_cursor = self._ring_append(
                self.cache_hit_ns_samples, self._hit_cursor, elapsed_ns
            )
        else:
            self.phases.validation(elapsed_ns)
            self._latency_miss.observe(elapsed_ns)
            self._sample_cursor = self._ring_append(
                self.validation_ns_samples, self._sample_cursor, elapsed_ns
            )

    # -- read API (unchanged names) ----------------------------------------

    @property
    def requests_total(self) -> int:
        return int(self._requests.value)

    @property
    def requests_validated(self) -> int:
        return int(self._validated.value)

    @property
    def requests_denied(self) -> int:
        return int(self._denied.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value)

    @property
    def connections_opened(self) -> int:
        return int(self._conn_opened.value)

    @property
    def connections_reused(self) -> int:
        return int(self._conn_reused.value)

    @property
    def retries_total(self) -> int:
        return int(self._retries.value)

    @property
    def degraded_total(self) -> int:
        snapshot_into = getattr(self._degraded, "snapshot_into", None)
        if snapshot_into is None:  # REPRO_NO_OBS null instrument
            return 0
        snapshot: dict[str, float] = {}
        snapshot_into(snapshot)
        return int(sum(snapshot.values()))

    @property
    def validation_seconds(self) -> float:
        """Total wall time spent in the validation gate (hits + misses)."""
        return (self._latency_hit.sum + self._latency_miss.sum) / 1e9

    @property
    def validation_ns_mean(self) -> float:
        """Mean gate latency over *all* validated requests -- hits
        contribute their lookup cost, so this is the honest Table IV
        mean rather than the miss-only figure."""
        hit, miss = self._latency_hit, self._latency_miss
        observed = hit.count + miss.count
        return (hit.sum + miss.sum) / observed if observed else 0.0

    @staticmethod
    def _percentile(samples: list[int], q: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return float(ordered[index])

    def _percentile_ns(self, q: float) -> float:
        return self._percentile(self.validation_ns_samples, q)

    @property
    def validation_ns_p50(self) -> float:
        return self._percentile_ns(0.50)

    @property
    def validation_ns_p99(self) -> float:
        return self._percentile_ns(0.99)

    @property
    def cache_hit_ns_p50(self) -> float:
        return self._percentile(self.cache_hit_ns_samples, 0.50)

    @property
    def cache_hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    # -- windows and aggregation -------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Flat ``{series: value}`` view; diff two snapshots with
        :func:`repro.obs.delta` to measure a window instead of
        absolute counters."""
        return self.registry.snapshot()

    def reset(self) -> None:
        """Zero every counter/histogram and drop the sample rings."""
        self.registry.reset()
        self.validation_ns_samples.clear()
        self.cache_hit_ns_samples.clear()
        self._sample_cursor = 0
        self._hit_cursor = 0

    def merge(self, other: "ProxyStats") -> None:
        """Fold *other*'s counters into this instance (aggregation
        across repetitions/proxies for the overhead tables)."""
        self.registry.merge_from(other.registry)
        room = _MAX_LATENCY_SAMPLES - len(self.validation_ns_samples)
        if room > 0:
            self.validation_ns_samples.extend(other.validation_ns_samples[:room])
        room = _MAX_LATENCY_SAMPLES - len(self.cache_hit_ns_samples)
        if room > 0:
            self.cache_hit_ns_samples.extend(other.cache_hit_ns_samples[:room])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProxyStats(requests_total={self.requests_total}, "
            f"requests_validated={self.requests_validated}, "
            f"requests_denied={self.requests_denied}, "
            f"cache_hits={self.cache_hits}, cache_misses={self.cache_misses})"
        )


def upstream_failure_kind(failure: Any) -> str:
    """Bounded ``kind`` label for an upstream failure observation --
    either a transport exception or a retryable 5xx result (the
    metrics cardinality guard requires a closed set)."""
    if not isinstance(failure, BaseException):
        return "5xx"  # a retryable-status response object/tuple
    if isinstance(failure, http.client.IncompleteRead):
        return "partial-response"
    if isinstance(failure, TimeoutError):
        return "timeout"
    if isinstance(failure, ConnectionResetError):
        return "connection-reset"
    if isinstance(failure, ConnectionError):
        return "connection"
    if isinstance(failure, http.client.HTTPException):
        return "protocol"
    if isinstance(failure, OSError):
        return "os-error"
    return "other"


class ValidationGate:
    """Validate-with-cache, shared by both proxy transports.

    Owns the engine choice (``auto`` follows ``Validator.validate``'s
    compiled-by-default behavior, ``compiled``/``interpreted`` force
    one engine -- the benchmark harness uses the forced modes) and the
    decision cache with its revision-aware invalidation.
    """

    def __init__(
        self,
        validator: Validator,
        stats: ProxyStats,
        cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
        engine: str = "auto",
    ):
        if engine not in ("auto", "compiled", "interpreted"):
            raise ValueError(f"unknown validation engine {engine!r}")
        self.stats = stats
        self.engine = engine
        # Sharded by default (lock-free read fast path, per-shard write
        # locks); REPRO_NO_SHARDS=1 selects the legacy single cache.
        self.cache: ShardedDecisionCache | DecisionCache | None = (
            new_decision_cache(cache_size) if cache_size else None
        )
        # The sharded cache fingerprints bodies with marshal (C-speed,
        # order-sensitive, collision-free); the legacy cache keeps its
        # canonical-JSON key byte-for-byte.
        self._body_key = (
            fast_body_key
            if isinstance(self.cache, ShardedDecisionCache)
            else canonical_body_key
        )
        self.validator = validator
        self._bind(validator)

    def _bind(self, validator: Validator) -> None:
        self.validator = validator
        if self.engine == "compiled":
            self._validate = validator.compiled().validate
        elif self.engine == "interpreted":
            self._validate = validator.validate_interpreted
        else:
            self._validate = validator.validate

    def install(self, validator: Validator) -> None:
        """Swap in a new policy; all cached decisions are dropped."""
        self._bind(validator)
        if self.cache is not None:
            self.cache.clear()

    def _revision(self) -> tuple[int, int]:
        return (id(self.validator), self.validator.policy_revision)

    def check(self, body: dict[str, Any]) -> ValidationResult:
        """Validate *body*, consulting the decision cache first.

        Every validated request records a latency sample: cache hits
        record their lookup cost (``outcome="hit"``), misses the full
        engine walk (``outcome="miss"``) -- so mean-latency math over
        ``requests_validated`` is not skewed toward the miss cost.
        """
        stats = self.stats
        stats.count_validated()
        cache = self.cache
        key = None
        if cache is not None:
            lookup_started = time.perf_counter_ns()
            with span("cache.lookup"):
                key = self._body_key(body)
                cached = (
                    cache.get(key, self._revision()) if key is not None else None
                )
            if cached is not None:
                stats.count_cache(hit=True)
                stats.record_validation_ns(
                    time.perf_counter_ns() - lookup_started, cache_hit=True
                )
                return cached
            if key is not None:
                stats.count_cache(hit=False)
        started = time.perf_counter_ns()
        if cache is not None:
            # The probed-miss path already holds both clock reads; the
            # probe share costs one subtraction, not a new clock read.
            stats.phases.cache_probe(started - lookup_started)
        with span("engine.match"):
            result = self._validate(body)
        stats.record_validation_ns(time.perf_counter_ns() - started)
        if key is not None and cache is not None:
            cache.put(key, result, self._revision())
        return result


class KubeFenceProxy:
    """In-process enforcement proxy implementing the client Transport.

    With a :class:`~repro.resilience.ResilienceConfig` the upstream
    hop runs under retry + circuit breaking + a per-request deadline;
    when the upstream is unavailable the proxy **fails closed**:
    validated writes are refused with 503 while denials keep being
    issued locally (the validation gate needs no upstream).  With
    ``degraded_mode="fail-static"`` successful ``get`` responses are
    additionally kept in an identity-keyed :class:`StaleReadCache`, so
    reads survive an outage for the same user that originally fetched
    them (writes still refuse; see docs/RESILIENCE.md).  The default
    (``resilience=None``) leaves the upstream call untouched -- zero
    added work on the fault-free benchmark path.
    """

    def __init__(
        self,
        api: APIServer,
        validator: Validator,
        cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
        engine: str = "auto",
        resilience: ResilienceConfig | None = None,
        event_bus: Any | None = None,
    ):
        self.api = api
        self.denials: list[DenialRecord] = []
        self.stats = ProxyStats()
        self.gate = ValidationGate(validator, self.stats, cache_size, engine)
        self.resilience = resilience
        #: security-analytics stream; NULL under REPRO_NO_OBS=1 (the
        #: ``enabled`` probe keeps event construction off the fast path).
        self.events = event_bus if event_bus is not None else new_event_bus()
        #: shadow-mode canary evaluator (a RefineController installs
        #: one via start_shadow); never affects served decisions.
        self.shadow: Any | None = None
        #: when True, published allow decisions carry their manifest
        #: field sample in detail["fields"]/["values"] (profiler food;
        #: off by default so the extraction cost stays off the hot path).
        self.observe_fields = False
        #: the /obs/refine controller, when a refinement loop is wired.
        self.refine: Any | None = None
        #: the /obs/scan CVE scanner, when one is wired.
        self.scanner: Any | None = None
        self.breaker = None
        self._guard: UpstreamGuard | None = None
        self._read_cache: StaleReadCache | None = None
        if resilience is not None:
            stats = self.stats
            self.breaker = resilience.make_breaker(
                on_transition=lambda _old, new: stats.record_breaker_transition(new)
            )
            self._guard = UpstreamGuard(
                resilience.retry,
                self.breaker,
                # TimeoutError/ConnectionError are OSError subclasses.
                retry_on=(OSError,),
                on_retry=lambda _attempt, _delay: stats.count_retry(),
                on_failure=lambda failure: stats.count_upstream_error(
                    upstream_failure_kind(failure)
                ),
            )
            if resilience.degraded_mode == "fail-static":
                self._read_cache = StaleReadCache(resilience.read_cache_size)

    @property
    def validator(self) -> Validator:
        return self.gate.validator

    def install_validator(self, validator: Validator) -> None:
        """Bind a new policy (e.g. after chart upgrade); invalidates
        the decision cache."""
        self.gate.install(validator)

    def submit(self, request: ApiRequest) -> ApiResponse:
        """Intercept, validate, and forward or deny -- all under one
        request trace (the API server joins it, so the audit event
        carries the same trace id)."""
        with trace("proxy.request"):
            self.stats.count_request()
            bus = self.events
            started = time.perf_counter_ns() if bus.enabled else 0
            if request.verb in _WRITE_VERBS and isinstance(request.body, dict):
                with span("proxy.validate"):
                    result = self.gate.check(request.body)
                shadow = self.shadow
                if shadow is not None:
                    shadow.observe(
                        request.body, result.allowed,
                        user=request.user.username, verb=request.verb,
                    )
                if not result.allowed:
                    response = self._deny(request, result)
                    if bus.enabled:
                        self._publish_decision(
                            request, "deny", response.code,
                            latency_ns=time.perf_counter_ns() - started,
                            detail={
                                "reason": denial_reason(result.violations),
                                "violations": [str(v) for v in result.violations],
                            },
                        )
                    return response
            note: dict[str, str] | None = {} if bus.enabled else None
            response = self._forward(request, note)
            if bus.enabled:
                assert note is not None
                outcome = note.get("outcome") or (
                    "allow" if response.ok else "error"
                )
                # Routine allows are head-sampled (REPRO_EVENT_SAMPLE);
                # anything security-relevant always publishes.
                if outcome != "allow" or bus.sampled():
                    detail = {"mode": note["mode"]} if "mode" in note else {}
                    self._publish_decision(
                        request, outcome, response.code,
                        latency_ns=time.perf_counter_ns() - started,
                        detail=detail,
                    )
            return response

    def _publish_decision(
        self,
        request: ApiRequest,
        outcome: str,
        code: int,
        latency_ns: int = 0,
        detail: dict[str, Any] | None = None,
    ) -> None:
        """One enforcement verdict onto the security-event stream."""
        name = request.name or ""
        if not name and isinstance(request.body, dict):
            name = request.body.get("metadata", {}).get("name", "")
        if (
            self.observe_fields
            and outcome == "allow"
            and request.verb in _WRITE_VERBS
            and isinstance(request.body, dict)
        ):
            fields, values = manifest_field_sample(request.body)
            detail = dict(detail or {})
            detail["fields"] = fields
            detail["values"] = values
        self.events.publish(SecurityEvent(
            kind="decision",
            source="proxy",
            ts=time.time(),
            user=request.user.username,
            verb=request.verb,
            resource=request.kind,
            name=name,
            namespace=request.namespace or "",
            outcome=outcome,
            code=code,
            trace_id=current_trace_id() or "",
            latency_ns=latency_ns,
            detail=detail or {},
        ))

    def _forward(
        self, request: ApiRequest, note: dict[str, str] | None = None
    ) -> ApiResponse:
        """The upstream hop, guarded when resilience is configured.

        A retryable upstream 5xx that survives the whole schedule is
        passed through (the upstream's own answer is information);
        breaker refusals and exhausted transports become a local 503
        -- never a silent allow.
        """
        if self._guard is None:
            return self.api.handle(request)
        assert self.resilience is not None
        try:
            # In-process transport retries are replay-safe for every
            # verb: the chaos wrapper (FaultyAPIServer) raises its
            # injected resets/timeouts *instead of* handling, never
            # after a write was applied.  The HTTP proxy cannot assume
            # that about a real wire and restricts transport retries
            # to idempotent methods.
            response = self._guard.call(
                lambda: self.api.handle(request),
                deadline=self.resilience.deadline(),
                is_failure=lambda resp: resp.code in RETRYABLE_STATUS_CODES,
            )
        except CircuitOpenError as err:
            self.stats.count_upstream_error("breaker-open")
            return self._degrade(request, err, note)
        except (UpstreamUnavailable, DeadlineExceeded) as err:
            return self._degrade(request, err, note)
        if (self._read_cache is not None and request.verb == "get"
                and response.code == 200 and response.body is not None):
            self._read_cache.put(
                self._stale_key(request), deep_copy(response.body)
            )
        return response

    def _stale_key(self, request: ApiRequest) -> str:
        """Stale-cache key scoped to the authenticated identity: the
        upstream authorizes reads per user, so a cached 200 is only
        valid for the identity it was originally served to."""
        return stale_read_key(
            request.user.username,
            ",".join(request.user.groups),
            f"{request.kind}/{request.namespace or ''}/{request.name or ''}",
        )

    def _degrade(
        self,
        request: ApiRequest,
        err: Exception,
        note: dict[str, str] | None = None,
    ) -> ApiResponse:
        """The upstream is unavailable.  ``fail-static`` may serve a
        same-identity stale read; everything else is refused with 503
        -- a would-be denial is never converted into an allow (denials
        already happened before forwarding).  *note*, when present, is
        annotated with the degraded outcome so the caller publishes an
        honest decision event."""
        if self._read_cache is not None and request.verb == "get":
            assert self.resilience is not None
            cached = self._read_cache.get(
                self._stale_key(request), self.resilience.read_cache_ttl
            )
            if cached is not None:
                _age, payload = cached
                self.stats.count_degraded("stale-read")
                if note is not None:
                    note["outcome"] = "degraded"
                    note["mode"] = "stale-read"
                return ApiResponse(code=200, body=deep_copy(payload))
        return self._refuse(err, note)

    def _refuse(
        self, err: Exception, note: dict[str, str] | None = None
    ) -> ApiResponse:
        """Fail closed: the upstream is unavailable, so the request is
        refused locally with 503 (see docs/RESILIENCE.md)."""
        self.stats.count_degraded("refused")
        if note is not None:
            note["outcome"] = "degraded"
            note["mode"] = "refused"
        return ApiResponse.from_error(ApiError(
            503, "ServiceUnavailable",
            f"KubeFence: upstream API server unavailable; failing closed ({err})",
        ))

    def _deny(self, request: ApiRequest, result: ValidationResult) -> ApiResponse:
        name = ""
        if request.body:
            name = request.body.get("metadata", {}).get("name", "")
        self.stats.count_denial(
            operator=self.validator.operator,
            kind=request.kind,
            reason=denial_reason(result.violations),
        )
        record = DenialRecord(
            username=request.user.username,
            verb=request.verb,
            kind=request.kind,
            name=name or (request.name or ""),
            violations=tuple(str(v) for v in result.violations),
        )
        self.denials.append(record)
        error = ApiError.forbidden(
            f"KubeFence policy for workload {self.validator.operator!r} denied "
            f"{request.verb} of {request.kind}/{record.name}: {result.summary()}",
            violations=[str(v) for v in result.violations],
        )
        return ApiResponse.from_error(error)


class HttpKubeFenceProxy:
    """The proxy as a real HTTP reverse proxy (stdlib only).

    Mirrors the paper's mitmproxy deployment: clients speak HTTP to the
    proxy, which validates write bodies and forwards allowed requests
    to the upstream API server over HTTP.

    Forwarding uses a pooled keep-alive ``http.client.HTTPConnection``
    per worker thread (the proxy and the mini API server both speak
    HTTP/1.1), so the upstream hop does not pay a TCP handshake per
    request; ``ProxyStats.connections_opened/reused`` surface the pool
    behavior.

    Observability surfaces: ``GET /metrics`` (Prometheus text),
    ``/healthz``/``/readyz``, and ``/obs/traces``; each proxied request
    runs under a trace whose id is forwarded upstream in the
    ``X-Trace-Id`` header, so the API server's audit log correlates.
    """

    def __init__(self, upstream_base_url: str, validator: Validator,
                 host: str = "127.0.0.1", port: int = 0,
                 cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
                 engine: str = "auto",
                 resilience: ResilienceConfig | None = None,
                 event_bus: Any | None = None,
                 slo: Any | None = None):
        import json
        import threading
        from http.server import BaseHTTPRequestHandler
        from urllib.parse import urlsplit

        from repro.k8s.http import new_http_server

        proxy = self
        self.upstream = upstream_base_url.rstrip("/")
        self.denials: list[DenialRecord] = []
        self.stats = ProxyStats()
        self.gate = ValidationGate(validator, self.stats, cache_size, engine)
        #: security-analytics stream (served at /obs/events); NULL
        #: under REPRO_NO_OBS=1.
        self.events = event_bus if event_bus is not None else new_event_bus()
        #: SLO engine (served at /obs/slo): by default one per proxy,
        #: subscribed to the bus, exporting kubefence_slo_* gauges on
        #: the proxy registry.  Pass ``slo=`` to share an engine.
        self.slo = slo
        if self.slo is None and self.events.enabled:
            from repro.obs.analytics.slo import SloEngine

            self.slo = SloEngine(registry=self.stats.registry)
            self.events.subscribe(self.slo.observe)
        #: shadow-mode canary evaluator (RefineController.start_shadow).
        self.shadow: Any | None = None
        #: when True, allow decisions carry their manifest field sample.
        self.observe_fields = False
        #: the /obs/refine controller, when a refinement loop is wired.
        self.refine: Any | None = None
        #: the /obs/scan CVE scanner, when one is wired.
        self.scanner: Any | None = None
        #: in-process metrics ring (served at /obs/timeseries, the
        #: ``repro top`` data source); ticking starts with the server.
        self.timeseries = TimeSeriesRing(self.stats.registry)
        self.resilience = res = (
            resilience if resilience is not None else DEFAULT_RESILIENCE
        )
        stats = self.stats
        self.breaker = res.make_breaker(
            on_transition=lambda _old, new: stats.record_breaker_transition(new)
        )
        self._guard = UpstreamGuard(
            res.retry,
            self.breaker,
            # IncompleteRead (truncated upstream reply) is an
            # HTTPException; timeouts and resets are OSErrors.
            retry_on=(http.client.HTTPException, OSError),
            on_retry=lambda _attempt, _delay: stats.count_retry(),
            on_failure=lambda failure: stats.count_upstream_error(
                upstream_failure_kind(failure)
            ),
        )
        self._read_cache: StaleReadCache | None = (
            StaleReadCache(res.read_cache_size)
            if res.degraded_mode == "fail-static" else None
        )

        split = urlsplit(self.upstream)
        upstream_host = split.hostname or "127.0.0.1"
        upstream_port = split.port or 80
        pool = threading.local()

        def upstream_connection(timeout: float) -> "http.client.HTTPConnection":
            conn = getattr(pool, "conn", None)
            if conn is None:
                conn = http.client.HTTPConnection(
                    upstream_host, upstream_port, timeout=timeout
                )
                pool.conn = conn
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
            proxy.stats.count_connection(reused=conn.sock is not None)
            return conn

        def drop_connection() -> None:
            conn = getattr(pool, "conn", None)
            if conn is not None:
                conn.close()
                pool.conn = None

        def upstream_call(
            method: str, path: str, body: bytes | None, headers: dict[str, str]
        ) -> tuple[int, bytes]:
            """One guarded upstream round trip: breaker admission,
            retry with decorrelated backoff, per-attempt socket
            timeouts clamped to the per-request deadline.

            Transport-level retries (reset, timeout, truncated read)
            are restricted to idempotent methods: an IncompleteRead
            after a POST may mean the upstream already applied the
            create, and replaying it would apply the write twice.
            Non-idempotent methods still retry on retryable 5xx
            *results* -- those imply the request was not processed.
            """
            deadline = res.deadline()

            def attempt() -> tuple[int, bytes]:
                timeout = res.request_timeout
                if deadline is not None:
                    timeout = max(0.05, deadline.clamp(timeout))
                conn = upstream_connection(timeout)
                try:
                    with span("proxy.forward"):
                        conn.request(method, path, body=body, headers=headers)
                        resp = conn.getresponse()
                        data = resp.read()
                except BaseException:
                    # Stale pooled socket, reset, timeout, truncated
                    # read: the connection state is unknown -- drop it.
                    drop_connection()
                    raise
                return resp.status, data

            return proxy._guard.call(
                attempt,
                deadline=deadline,
                is_failure=lambda r: r[0] in RETRYABLE_STATUS_CODES,
                retry_transport_errors=method in _IDEMPOTENT_METHODS,
            )

        self._upstream_call = upstream_call

        class Handler(BaseHTTPRequestHandler):
            #: HTTP/1.1 enables keep-alive on the client-facing side
            #: too (all replies carry Content-Length).
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def log_request(self, code: Any = "-", size: Any = "-") -> None:
                # Access "log": a labeled counter instead of stderr.
                proxy.stats.count_http_request(getattr(self, "command", "?"), code)

            def _reply(self, code: int, payload: dict | list,
                       extra_headers: tuple[tuple[str, str], ...] = ()) -> None:
                phases = proxy.stats.phases
                started = time.perf_counter_ns() if phases.enabled else 0
                body = json.dumps(payload).encode()
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in extra_headers:
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)
                if started:
                    phases.serialization(time.perf_counter_ns() - started)

            def _serve_obs(self, head: bool = False) -> bool:
                served = obs_endpoint(
                    self.path,
                    proxy.stats.registry,
                    component="kubefence-proxy",
                    ready_checks={"policy-bound": lambda: proxy.validator is not None},
                    event_bus=proxy.events if proxy.events.enabled else None,
                    slo=proxy.slo,
                    refine=proxy.refine,
                    scanner=proxy.scanner,
                    profiler=PROFILER,
                    timeseries=proxy.timeseries,
                    accept=self.headers.get("Accept", ""),
                )
                if served is None:
                    return False
                status, content_type, body = served
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                if not head:
                    self.wfile.write(body)
                return True

            def _publish_decision(self, outcome: str, code: int,
                                  resource: str = "", name: str = "",
                                  detail: dict[str, Any] | None = None) -> None:
                """One verdict onto the proxy's security-event stream."""
                bus = proxy.events
                if not bus.enabled:
                    return
                phases = proxy.stats.phases
                publish_started = (
                    time.perf_counter_ns() if phases.enabled else 0
                )
                if outcome == "allow" and not bus.sampled():
                    return  # routine allows are head-sampled
                started = getattr(self, "_started_ns", 0)
                sample = getattr(self, "_field_sample", None)
                if sample is not None and outcome == "allow":
                    fields, values = sample
                    detail = dict(detail or {})
                    detail["fields"] = fields
                    detail["values"] = values
                bus.publish(SecurityEvent(
                    kind="decision",
                    source="proxy",
                    ts=time.time(),
                    user=self.headers.get("X-Remote-User", ""),
                    verb=(getattr(self, "command", "") or "").lower(),
                    resource=resource,
                    name=name,
                    outcome=outcome,
                    code=code,
                    trace_id=current_trace_id() or "",
                    latency_ns=(
                        time.perf_counter_ns() - started if started else 0
                    ),
                    detail={"path": self.path, **(detail or {})},
                ))
                if publish_started:
                    phases.telemetry(
                        time.perf_counter_ns() - publish_started
                    )

            def _forward(self, method: str, body: bytes | None,
                         resource: str = "", name: str = "") -> None:
                phases = proxy.stats.phases
                started = time.perf_counter_ns() if phases.enabled else 0
                headers = {
                    "Content-Type": "application/json",
                    "X-Remote-User": self.headers.get("X-Remote-User", ""),
                    "X-Remote-Groups": self.headers.get("X-Remote-Groups", ""),
                    "X-Trace-Id": current_trace_id() or "",
                }
                if started:
                    # The proxy's authn share: extracting and re-asserting
                    # the caller identity headers the upstream trusts.
                    sent = time.perf_counter_ns()
                    phases.authn(sent - started)
                try:
                    status, data = proxy._upstream_call(
                        method, self.path, body, headers
                    )
                    if started:
                        phases.upstream(time.perf_counter_ns() - sent)
                except CircuitOpenError as err:
                    proxy.stats.count_upstream_error("breaker-open")
                    self._degraded_reply(method, err, resource, name)
                    return
                except (UpstreamUnavailable, DeadlineExceeded) as err:
                    self._degraded_reply(method, err, resource, name)
                    return
                try:
                    payload = json.loads(data or b"{}")
                except ValueError:
                    proxy.stats.count_upstream_error("bad-payload")
                    self._publish_decision("error", 502, resource, name,
                                           detail={"reason": "bad-payload"})
                    self._reply(
                        502,
                        {"kind": "Status", "status": "Failure", "code": 502,
                         "reason": "BadGateway",
                         "message": "upstream returned an unparseable body"},
                    )
                    return
                if (method == "GET" and status == 200
                        and proxy._read_cache is not None):
                    proxy._read_cache.put(self._stale_key(), payload)
                self._publish_decision(
                    "allow" if 200 <= status < 300 else "error",
                    status, resource, name,
                )
                self._reply(status, payload)

            def _stale_key(self) -> str:
                """Stale-cache key scoped to the authenticated identity.

                The upstream authorizes per user (X-Remote-User /
                X-Remote-Groups -> RBAC), so a cached 200 is only valid
                for the identity that originally received it.  Keying
                by path alone would serve one user's cached read to
                another during an outage -- turning an upstream RBAC
                denial into an allow.
                """
                return stale_read_key(
                    self.headers.get("X-Remote-User", ""),
                    self.headers.get("X-Remote-Groups", ""),
                    self.path,
                )

            def _degraded_reply(self, method: str, err: Exception,
                                resource: str = "", name: str = "") -> None:
                """The upstream is down.  fail-static may serve reads
                from the stale cache; everything else is refused with
                503 -- a would-be denial is never converted into an
                allow (denials already happened before forwarding, and
                stale reads are only served to the same authenticated
                identity that originally fetched them)."""
                if method == "GET" and proxy._read_cache is not None:
                    cached = proxy._read_cache.get(
                        self._stale_key(), proxy.resilience.read_cache_ttl
                    )
                    if cached is not None:
                        age, payload = cached
                        proxy.stats.count_degraded("stale-read")
                        self._publish_decision(
                            "degraded", 200, resource, name,
                            detail={"mode": "stale-read"},
                        )
                        self._reply(200, payload, extra_headers=(
                            ("X-KubeFence-Degraded", f"stale-read; age={age:.1f}s"),
                        ))
                        return
                proxy.stats.count_degraded("refused")
                self._publish_decision(
                    "degraded", 503, resource, name,
                    detail={"mode": "refused"},
                )
                self._reply(
                    503,
                    {"kind": "Status", "status": "Failure", "code": 503,
                     "reason": "ServiceUnavailable",
                     "message": "KubeFence: upstream API server unavailable; "
                                f"failing closed ({err})"},
                )

            def _handle(self, method: str) -> None:
                incoming = self.headers.get("X-Trace-Id") or None
                phases = proxy.stats.phases
                if not phases.enabled:
                    with trace("proxy.request", trace_id=incoming):
                        self._handle_traced(method)
                    return
                # Wall-clock denominator for the phase breakdown: the
                # phase shares below divide into this total.  Stamped
                # inside the trace bracket so tracer bookkeeping (span
                # record under the buffer lock, which a concurrent
                # /obs/traces reader can hold) stays out of the
                # denominator instead of reading as unattributed time.
                with trace("proxy.request", trace_id=incoming):
                    wall_started = time.perf_counter_ns()
                    self._handle_traced(method)
                    phases.wall(time.perf_counter_ns() - wall_started)

            def _handle_traced(self, method: str) -> None:
                proxy.stats.count_request()
                self._started_ns = (
                    time.perf_counter_ns() if proxy.events.enabled else 0
                )
                self._field_sample = None
                resource = name = ""
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else None
                if method in ("POST", "PUT", "PATCH") and raw:
                    phases = proxy.stats.phases
                    parse_started = (
                        time.perf_counter_ns() if phases.enabled else 0
                    )
                    try:
                        manifest = json.loads(raw)
                    except (ValueError, RecursionError):
                        self._reply(
                            400,
                            {"kind": "Status", "status": "Failure", "code": 400,
                             "reason": "BadRequest",
                             "message": "request body is not valid JSON"},
                        )
                        return
                    if not isinstance(manifest, dict):
                        self._reply(
                            400,
                            {"kind": "Status", "status": "Failure", "code": 400,
                             "reason": "BadRequest",
                             "message": "request body must be a JSON object"},
                        )
                        return
                    resource = manifest.get("kind", "")
                    name = manifest.get("metadata", {}).get("name", "")
                    if parse_started:
                        phases.serialization(
                            time.perf_counter_ns() - parse_started
                        )
                    with span("proxy.validate"):
                        result = proxy.gate.check(manifest)
                    shadow = proxy.shadow
                    if shadow is not None:
                        shadow.observe(
                            manifest, result.allowed,
                            user=self.headers.get("X-Remote-User", ""),
                            verb=method.lower(),
                        )
                    if proxy.observe_fields and result.allowed:
                        self._field_sample = manifest_field_sample(manifest)
                    if not result.allowed:
                        reason = denial_reason(result.violations)
                        proxy.stats.count_denial(
                            operator=proxy.validator.operator,
                            kind=resource,
                            reason=reason,
                        )
                        proxy.denials.append(
                            DenialRecord(
                                username=self.headers.get("X-Remote-User", ""),
                                verb=method.lower(),
                                kind=resource,
                                name=name,
                                violations=tuple(str(v) for v in result.violations),
                            )
                        )
                        self._publish_decision(
                            "deny", 403, resource, name,
                            detail={
                                "reason": reason,
                                "violations": [
                                    str(v) for v in result.violations
                                ],
                            },
                        )
                        self._reply(
                            403,
                            {
                                "kind": "Status",
                                "apiVersion": "v1",
                                "status": "Failure",
                                "reason": "Forbidden",
                                "code": 403,
                                "message": "KubeFence policy denied the request: "
                                + result.summary(),
                            },
                        )
                        return
                self._forward(method, raw, resource, name)

            def do_GET(self) -> None:
                if self._serve_obs():
                    return
                self._handle("GET")

            def do_HEAD(self) -> None:
                # HEAD on the observability surfaces: full headers
                # (correct Content-Length), no body.  API paths are
                # proxied as GETs by clients; HEAD is obs-only here.
                if self._serve_obs(head=True):
                    return
                self.send_response(405)
                self.send_header("Allow", "GET, POST, PUT, PATCH, DELETE")
                self.send_header("Content-Length", "0")
                self.end_headers()

            def do_POST(self) -> None:
                self._handle("POST")

            def do_PUT(self) -> None:
                self._handle("PUT")

            def do_PATCH(self) -> None:
                self._handle("PATCH")

            def do_DELETE(self) -> None:
                self._handle("DELETE")

        self._httpd = new_http_server((host, port), Handler)
        self._thread: Any = None
        self._threading = threading

    @property
    def validator(self) -> Validator:
        return self.gate.validator

    def install_validator(self, validator: Validator) -> None:
        """Bind a new policy; invalidates the decision cache."""
        self.gate.install(validator)

    @property
    def base_url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "HttpKubeFenceProxy":
        # Refcounted: the profiler thread is shared process-wide and
        # stops with the last component that acquired it.
        PROFILER.acquire()
        self.timeseries.start()
        self._thread = self._threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():  # pragma: no cover - hang guard
                raise RuntimeError(
                    "HttpKubeFenceProxy serve thread failed to stop within 5s"
                )
            self._thread = None
            self.timeseries.stop()
            PROFILER.release()

    def __enter__(self) -> "HttpKubeFenceProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class MultiPolicyProxy:
    """One proxy mediating several workloads (multi-tenant clusters).

    Each client identity is bound to its workload's validator; requests
    from identities with no bound policy are rejected outright
    (default-deny, per the least-privilege principle).  This models the
    paper's deployment at cluster scale: one mitmproxy instance, one
    policy per operator.
    """

    def __init__(self, api: APIServer, validators: dict[str, Validator],
                 read_through: bool = True,
                 resilience: ResilienceConfig | None = None,
                 event_bus: Any | None = None):
        self.api = api
        self.resilience = resilience
        #: one shared stream across all per-identity proxies, so the
        #: forensics layer sees the whole multi-tenant cluster.
        self.events = event_bus if event_bus is not None else new_event_bus()
        self._proxies = {
            username: KubeFenceProxy(
                api, validator, resilience=resilience, event_bus=self.events
            )
            for username, validator in validators.items()
        }
        self.read_through = read_through
        self.unbound_denials: list[DenialRecord] = []

    def bind(self, username: str, validator: Validator) -> None:
        """Attach a (new) workload policy to an identity."""
        existing = self._proxies.get(username)
        if existing is not None:
            existing.install_validator(validator)
        else:
            self._proxies[username] = KubeFenceProxy(
                self.api, validator, resilience=self.resilience,
                event_bus=self.events,
            )

    def proxy_for(self, username: str) -> "KubeFenceProxy | None":
        return self._proxies.get(username)

    @property
    def denials(self) -> list[DenialRecord]:
        out = list(self.unbound_denials)
        for proxy in self._proxies.values():
            out.extend(proxy.denials)
        return out

    def stats_totals(self) -> ProxyStats:
        """Aggregate per-identity proxy stats into one façade (the
        cluster-wide scrape view)."""
        totals = ProxyStats()
        for proxy in self._proxies.values():
            totals.merge(proxy.stats)
        return totals

    def submit(self, request: ApiRequest) -> ApiResponse:
        proxy = self._proxies.get(request.user.username)
        if proxy is not None:
            return proxy.submit(request)
        if self.read_through and request.verb in ("get", "list", "watch"):
            return self.api.handle(request)
        name = ""
        if request.body:
            name = request.body.get("metadata", {}).get("name", "")
        self.unbound_denials.append(
            DenialRecord(
                username=request.user.username,
                verb=request.verb,
                kind=request.kind,
                name=name or (request.name or ""),
                violations=("no policy bound to this identity",),
            )
        )
        return ApiResponse.from_error(
            ApiError.forbidden(
                f"KubeFence: no workload policy bound to identity "
                f"{request.user.username!r} (default deny)"
            )
        )
