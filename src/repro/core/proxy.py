"""The KubeFence enforcement proxy (Sec. V-B).

Deployed between clients and the API server (mitmproxy in the paper's
testbed), the proxy intercepts every API request, validates write
payloads against the workload's validator, and either forwards the
request or answers with an HTTP 403 containing the offending fields.
Denials are logged with the field and reason for auditing and
forensics.

Complete mediation: in the paper the API server only accepts
certificate-authenticated connections from the proxy.  Here the proxy
*is* the only transport handed to clients in the protected
configuration, which yields the same property in-process; the HTTP
deployment (:mod:`repro.k8s.http` + :class:`HttpKubeFenceProxy`)
reproduces the real network topology.

Performance: validation runs on the compiled engine
(:mod:`repro.core.compiled`) and sits behind a per-proxy
:class:`~repro.core.compiled.DecisionCache` -- a bounded LRU keyed on a
canonical hash of the write body, invalidated whenever the bound
validator (or its :attr:`policy_revision`) changes.  Controllers that
resubmit identical manifests (the reconcile-loop steady state) skip
validation entirely.  Per-request validation latency is sampled into
``ProxyStats`` so Table IV can report p50/p99 alongside the means.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.compiled import DecisionCache, canonical_body_key
from repro.core.enforcement import ValidationResult, Validator
from repro.k8s.apiserver import APIServer, ApiRequest, ApiResponse
from repro.k8s.errors import ApiError

#: Verbs whose payload is validated.
_WRITE_VERBS = frozenset({"create", "update", "patch"})

#: Ring-buffer size for per-request validation latency samples.
_MAX_LATENCY_SAMPLES = 8192

#: Default decision-cache capacity (entries, i.e. distinct bodies).
DEFAULT_DECISION_CACHE_SIZE = 1024


@dataclass(frozen=True)
class DenialRecord:
    """One blocked request, for auditing and forensic analysis."""

    username: str
    verb: str
    kind: str
    name: str
    violations: tuple[str, ...]


@dataclass
class ProxyStats:
    """Runtime counters (overhead analysis, Table IV)."""

    requests_total: int = 0
    requests_validated: int = 0
    requests_denied: int = 0
    validation_seconds: float = 0.0
    #: decision-cache outcomes (hits skip validation entirely).
    cache_hits: int = 0
    cache_misses: int = 0
    #: upstream keep-alive pooling (HTTP proxy only).
    connections_opened: int = 0
    connections_reused: int = 0
    #: per-request validation latency samples (ns), bounded ring buffer.
    validation_ns_samples: list = field(default_factory=list, repr=False)
    _sample_cursor: int = field(default=0, repr=False)

    def record_validation_ns(self, elapsed_ns: int) -> None:
        self.validation_seconds += elapsed_ns / 1e9
        samples = self.validation_ns_samples
        if len(samples) < _MAX_LATENCY_SAMPLES:
            samples.append(elapsed_ns)
        else:
            samples[self._sample_cursor % _MAX_LATENCY_SAMPLES] = elapsed_ns
        self._sample_cursor += 1

    def _percentile_ns(self, q: float) -> float:
        samples = self.validation_ns_samples
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return float(ordered[index])

    @property
    def validation_ns_p50(self) -> float:
        return self._percentile_ns(0.50)

    @property
    def validation_ns_p99(self) -> float:
        return self._percentile_ns(0.99)

    @property
    def cache_hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    def merge(self, other: "ProxyStats") -> None:
        """Fold *other*'s counters into this instance (aggregation
        across repetitions/proxies for the overhead tables)."""
        self.requests_total += other.requests_total
        self.requests_validated += other.requests_validated
        self.requests_denied += other.requests_denied
        self.validation_seconds += other.validation_seconds
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.connections_opened += other.connections_opened
        self.connections_reused += other.connections_reused
        room = _MAX_LATENCY_SAMPLES - len(self.validation_ns_samples)
        if room > 0:
            self.validation_ns_samples.extend(other.validation_ns_samples[:room])


class ValidationGate:
    """Validate-with-cache, shared by both proxy transports.

    Owns the engine choice (``auto`` follows ``Validator.validate``'s
    compiled-by-default behavior, ``compiled``/``interpreted`` force
    one engine -- the benchmark harness uses the forced modes) and the
    decision cache with its revision-aware invalidation.
    """

    def __init__(
        self,
        validator: Validator,
        stats: ProxyStats,
        cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
        engine: str = "auto",
    ):
        if engine not in ("auto", "compiled", "interpreted"):
            raise ValueError(f"unknown validation engine {engine!r}")
        self.stats = stats
        self.engine = engine
        self.cache: DecisionCache | None = (
            DecisionCache(cache_size) if cache_size else None
        )
        self.validator = validator
        self._bind(validator)

    def _bind(self, validator: Validator) -> None:
        self.validator = validator
        if self.engine == "compiled":
            self._validate = validator.compiled().validate
        elif self.engine == "interpreted":
            self._validate = validator.validate_interpreted
        else:
            self._validate = validator.validate

    def install(self, validator: Validator) -> None:
        """Swap in a new policy; all cached decisions are dropped."""
        self._bind(validator)
        if self.cache is not None:
            self.cache.clear()

    def _revision(self) -> tuple[int, int]:
        return (id(self.validator), self.validator.policy_revision)

    def check(self, body: dict[str, Any]) -> ValidationResult:
        """Validate *body*, consulting the decision cache first."""
        stats = self.stats
        stats.requests_validated += 1
        cache = self.cache
        key = None
        if cache is not None:
            key = canonical_body_key(body)
            if key is not None:
                revision = self._revision()
                cached = cache.get(key, revision)
                if cached is not None:
                    stats.cache_hits += 1
                    return cached
                stats.cache_misses += 1
        started = time.perf_counter_ns()
        result = self._validate(body)
        stats.record_validation_ns(time.perf_counter_ns() - started)
        if key is not None and cache is not None:
            cache.put(key, result, self._revision())
        return result


class KubeFenceProxy:
    """In-process enforcement proxy implementing the client Transport."""

    def __init__(
        self,
        api: APIServer,
        validator: Validator,
        cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
        engine: str = "auto",
    ):
        self.api = api
        self.denials: list[DenialRecord] = []
        self.stats = ProxyStats()
        self.gate = ValidationGate(validator, self.stats, cache_size, engine)

    @property
    def validator(self) -> Validator:
        return self.gate.validator

    def install_validator(self, validator: Validator) -> None:
        """Bind a new policy (e.g. after chart upgrade); invalidates
        the decision cache."""
        self.gate.install(validator)

    def submit(self, request: ApiRequest) -> ApiResponse:
        """Intercept, validate, and forward or deny."""
        self.stats.requests_total += 1
        if request.verb in _WRITE_VERBS and isinstance(request.body, dict):
            result = self.gate.check(request.body)
            if not result.allowed:
                return self._deny(request, result)
        return self.api.handle(request)

    def _deny(self, request: ApiRequest, result: ValidationResult) -> ApiResponse:
        self.stats.requests_denied += 1
        name = ""
        if request.body:
            name = request.body.get("metadata", {}).get("name", "")
        record = DenialRecord(
            username=request.user.username,
            verb=request.verb,
            kind=request.kind,
            name=name or (request.name or ""),
            violations=tuple(str(v) for v in result.violations),
        )
        self.denials.append(record)
        error = ApiError.forbidden(
            f"KubeFence policy for workload {self.validator.operator!r} denied "
            f"{request.verb} of {request.kind}/{record.name}: {result.summary()}",
            violations=[str(v) for v in result.violations],
        )
        return ApiResponse.from_error(error)


class HttpKubeFenceProxy:
    """The proxy as a real HTTP reverse proxy (stdlib only).

    Mirrors the paper's mitmproxy deployment: clients speak HTTP to the
    proxy, which validates write bodies and forwards allowed requests
    to the upstream API server over HTTP.

    Forwarding uses a pooled keep-alive ``http.client.HTTPConnection``
    per worker thread (the proxy and the mini API server both speak
    HTTP/1.1), so the upstream hop does not pay a TCP handshake per
    request; ``ProxyStats.connections_opened/reused`` surface the pool
    behavior.
    """

    def __init__(self, upstream_base_url: str, validator: Validator,
                 host: str = "127.0.0.1", port: int = 0,
                 cache_size: int = DEFAULT_DECISION_CACHE_SIZE,
                 engine: str = "auto"):
        import http.client
        import json
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
        from urllib.parse import urlsplit

        proxy = self
        self.upstream = upstream_base_url.rstrip("/")
        self.denials: list[DenialRecord] = []
        self.stats = ProxyStats()
        self.gate = ValidationGate(validator, self.stats, cache_size, engine)

        split = urlsplit(self.upstream)
        upstream_host = split.hostname or "127.0.0.1"
        upstream_port = split.port or 80
        pool = threading.local()

        def upstream_connection() -> "http.client.HTTPConnection":
            conn = getattr(pool, "conn", None)
            if conn is None:
                conn = http.client.HTTPConnection(upstream_host, upstream_port, timeout=30)
                pool.conn = conn
            if conn.sock is None:
                proxy.stats.connections_opened += 1
            else:
                proxy.stats.connections_reused += 1
            return conn

        def drop_connection() -> None:
            conn = getattr(pool, "conn", None)
            if conn is not None:
                conn.close()
                pool.conn = None

        class Handler(BaseHTTPRequestHandler):
            #: HTTP/1.1 enables keep-alive on the client-facing side
            #: too (all replies carry Content-Length).
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def _reply(self, code: int, payload: dict | list) -> None:
                body = json.dumps(payload).encode()
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _forward(self, method: str, body: bytes | None) -> None:
                headers = {
                    "Content-Type": "application/json",
                    "X-Remote-User": self.headers.get("X-Remote-User", ""),
                    "X-Remote-Groups": self.headers.get("X-Remote-Groups", ""),
                }
                last_error: Exception | None = None
                for attempt in (0, 1):
                    conn = upstream_connection()
                    try:
                        conn.request(method, self.path, body=body, headers=headers)
                        resp = conn.getresponse()
                        data = resp.read()
                        self._reply(resp.status, json.loads(data or b"{}"))
                        return
                    except (http.client.HTTPException, OSError, ValueError) as err:
                        # Stale pooled socket (or upstream hiccup):
                        # drop it and retry once on a fresh connection.
                        last_error = err
                        drop_connection()
                self._reply(
                    502,
                    {"kind": "Status", "status": "Failure", "code": 502,
                     "reason": "BadGateway",
                     "message": f"upstream API server unreachable: {last_error}"},
                )

            def _handle(self, method: str) -> None:
                proxy.stats.requests_total += 1
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else None
                if method in ("POST", "PUT", "PATCH") and raw:
                    try:
                        manifest = json.loads(raw)
                    except (ValueError, RecursionError):
                        self._reply(
                            400,
                            {"kind": "Status", "status": "Failure", "code": 400,
                             "reason": "BadRequest",
                             "message": "request body is not valid JSON"},
                        )
                        return
                    if not isinstance(manifest, dict):
                        self._reply(
                            400,
                            {"kind": "Status", "status": "Failure", "code": 400,
                             "reason": "BadRequest",
                             "message": "request body must be a JSON object"},
                        )
                        return
                    result = proxy.gate.check(manifest)
                    if not result.allowed:
                        proxy.stats.requests_denied += 1
                        proxy.denials.append(
                            DenialRecord(
                                username=self.headers.get("X-Remote-User", ""),
                                verb=method.lower(),
                                kind=manifest.get("kind", ""),
                                name=manifest.get("metadata", {}).get("name", ""),
                                violations=tuple(str(v) for v in result.violations),
                            )
                        )
                        self._reply(
                            403,
                            {
                                "kind": "Status",
                                "apiVersion": "v1",
                                "status": "Failure",
                                "reason": "Forbidden",
                                "code": 403,
                                "message": "KubeFence policy denied the request: "
                                + result.summary(),
                            },
                        )
                        return
                self._forward(method, raw)

            def do_GET(self) -> None:
                self._handle("GET")

            def do_POST(self) -> None:
                self._handle("POST")

            def do_PUT(self) -> None:
                self._handle("PUT")

            def do_PATCH(self) -> None:
                self._handle("PATCH")

            def do_DELETE(self) -> None:
                self._handle("DELETE")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Any = None
        self._threading = threading

    @property
    def validator(self) -> Validator:
        return self.gate.validator

    def install_validator(self, validator: Validator) -> None:
        """Bind a new policy; invalidates the decision cache."""
        self.gate.install(validator)

    @property
    def base_url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "HttpKubeFenceProxy":
        self._thread = self._threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "HttpKubeFenceProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class MultiPolicyProxy:
    """One proxy mediating several workloads (multi-tenant clusters).

    Each client identity is bound to its workload's validator; requests
    from identities with no bound policy are rejected outright
    (default-deny, per the least-privilege principle).  This models the
    paper's deployment at cluster scale: one mitmproxy instance, one
    policy per operator.
    """

    def __init__(self, api: APIServer, validators: dict[str, Validator],
                 read_through: bool = True):
        self.api = api
        self._proxies = {
            username: KubeFenceProxy(api, validator)
            for username, validator in validators.items()
        }
        self.read_through = read_through
        self.unbound_denials: list[DenialRecord] = []

    def bind(self, username: str, validator: Validator) -> None:
        """Attach a (new) workload policy to an identity."""
        existing = self._proxies.get(username)
        if existing is not None:
            existing.install_validator(validator)
        else:
            self._proxies[username] = KubeFenceProxy(self.api, validator)

    def proxy_for(self, username: str) -> "KubeFenceProxy | None":
        return self._proxies.get(username)

    @property
    def denials(self) -> list[DenialRecord]:
        out = list(self.unbound_denials)
        for proxy in self._proxies.values():
            out.extend(proxy.denials)
        return out

    def submit(self, request: ApiRequest) -> ApiResponse:
        proxy = self._proxies.get(request.user.username)
        if proxy is not None:
            return proxy.submit(request)
        if self.read_through and request.verb in ("get", "list", "watch"):
            return self.api.handle(request)
        name = ""
        if request.body:
            name = request.body.get("metadata", {}).get("name", "")
        self.unbound_denials.append(
            DenialRecord(
                username=request.user.username,
                verb=request.verb,
                kind=request.kind,
                name=name or (request.name or ""),
                violations=("no policy bound to this identity",),
            )
        )
        return ApiResponse.from_error(
            ApiError.forbidden(
                f"KubeFence: no workload policy bound to identity "
                f"{request.user.username!r} (default deny)"
            )
        )
