"""Phase 2: exploration of the configuration space.

The values schema still contains enumerative fields whose options must
each appear in at least one rendered manifest.  Exhaustively rendering
the cross product would explode combinatorially, so KubeFence uses the
paper's covering strategy: at iteration *i*, every enumerative field is
set to its *i*-th valid option (reusing the last option when a list is
shorter), and the process iterates up to the length of the longest
enum.  The union of the variants therefore covers every valid option of
every enumerative field at linear cost.
"""

from __future__ import annotations

from typing import Any

from repro.core.schema_gen import ValuesSchema
from repro.yamlutil import deep_copy, set_path


def explore_variants(schema: ValuesSchema) -> list[dict[str, Any]]:
    """Generate the values variants for *schema*.

    Returns at least one variant (the schema itself when there are no
    enumerative fields).
    """
    iterations = schema.max_enum_length()
    if iterations == 0:
        return [deep_copy(schema.schema)]
    variants: list[dict[str, Any]] = []
    for i in range(iterations):
        variant = deep_copy(schema.schema)
        for path, options in sorted(schema.enums.items()):
            option = options[min(i, len(options) - 1)]
            set_path(variant, path, option)
        variants.append(variant)
    return variants


def coverage_of(variants: list[dict[str, Any]], schema: ValuesSchema) -> dict[str, set]:
    """Which enum options are covered by *variants* (self-check used in
    tests: every option of every enum must appear in some variant)."""
    from repro.yamlutil import get_path

    covered: dict[str, set] = {path: set() for path in schema.enums}
    for variant in variants:
        for path in schema.enums:
            try:
                covered[path].add(get_path(variant, path))
            except (KeyError, IndexError):
                pass
    return covered
