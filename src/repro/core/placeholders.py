"""Typed placeholders for values schemas and validators.

The values-schema generation phase replaces concrete values with
placeholders "representing data types or valid ranges, such as bool,
string, int, IP" (Sec. V-A).  Placeholders survive Helm rendering as
ordinary strings, so they flow from the values schema through templates
into rendered manifests and finally into the validator.

Two textual forms exist:

- the **internal token** ``⟨type⟩`` (e.g. ``⟨int⟩``), chosen so that it
  can never collide with legitimate manifest content and so that
  *embedded* occurrences inside composite strings remain detectable --
  e.g. the template ``image: {{ .registry }}/{{ .repo }}:{{ .tag }}``
  renders to ``docker.io/bitnami/nginx:⟨string⟩``, which the enforcer
  treats as a pattern (trusted registry/repository pinned, tag free);
- the **paper form** (bare ``int``, ``string``, ...) used when
  serializing validators for human consumption, applied only when the
  placeholder is the entire value.

Matching rules are deliberately YAML-tolerant: an ``int`` placeholder
accepts ``8080`` and ``"8080"`` (quoted template output parses as a
string), ``quantity`` accepts ``500m``/``8Gi``/plain integers, ``bool``
accepts booleans and ``"true"``/``"false"``.
"""

from __future__ import annotations

import logging
import re
from functools import lru_cache
from typing import Any

logger = logging.getLogger(__name__)

#: Placeholder type names, in detection-priority order.
TYPES = ("bool", "port", "int", "IP", "quantity", "string", "list", "dict")

_OPEN, _CLOSE = "⟨", "⟩"  # ⟨ ⟩

#: Regex finding internal tokens inside a string.
TOKEN_RE = re.compile(f"{_OPEN}({'|'.join(TYPES)}){_CLOSE}")

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")
_QUANTITY_RE = re.compile(r"^\d+(\.\d+)?(m|k|Ki|Mi|Gi|Ti|Pi|K|M|G|T|P|E|Ei)?$")
_INT_RE = re.compile(r"^-?\d+$")

#: Regex fragments used when a validator string embeds tokens.
_TYPE_PATTERNS = {
    "string": r".+",
    "int": r"-?\d+",
    "port": r"\d{1,5}",
    "bool": r"(?:true|false|True|False)",
    "IP": r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}",
    "quantity": r"\d+(?:\.\d+)?(?:m|k|Ki|Mi|Gi|Ti|Pi|K|M|G|T|P|E|Ei)?",
    "list": r".*",
    "dict": r".*",
}


def make(ptype: str) -> str:
    """The internal token for *ptype* (e.g. ``⟨int⟩``)."""
    if ptype not in TYPES:
        raise ValueError(f"unknown placeholder type {ptype!r}")
    return f"{_OPEN}{ptype}{_CLOSE}"


def is_placeholder(value: Any) -> bool:
    """True when *value* is exactly one placeholder token (either the
    internal or the paper form)."""
    return placeholder_type(value) is not None


def placeholder_type(value: Any) -> str | None:
    """The type of a whole-value placeholder, or None."""
    if not isinstance(value, str):
        return None
    match = TOKEN_RE.fullmatch(value)
    if match:
        return match.group(1)
    if value in TYPES:
        return value
    return None


def has_embedded(value: Any) -> bool:
    """True when *value* is a string containing at least one internal
    token (possibly among literal text)."""
    return isinstance(value, str) and TOKEN_RE.search(value) is not None


def to_paper_form(value: str) -> str:
    """Serialize for validator output: whole-token values become the
    bare paper form; embedded tokens are kept in internal form."""
    ptype = placeholder_type(value)
    return ptype if ptype is not None else value


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


def _is_intlike(value: Any) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True
    return isinstance(value, str) and _INT_RE.match(value) is not None


def matches_type(value: Any, ptype: str) -> bool:
    """Does a concrete manifest value satisfy a placeholder type?"""
    if ptype == "string":
        return isinstance(value, str)
    if ptype == "int":
        return _is_intlike(value)
    if ptype == "port":
        if not _is_intlike(value):
            return False
        return 0 <= int(value) <= 65535
    if ptype == "bool":
        return isinstance(value, bool) or value in ("true", "false", "True", "False")
    if ptype == "IP":
        if not isinstance(value, str):
            return False
        match = _IPV4_RE.match(value)
        return match is not None and all(int(g) <= 255 for g in match.groups())
    if ptype == "quantity":
        if _is_intlike(value) or isinstance(value, float):
            return True
        return isinstance(value, str) and _QUANTITY_RE.match(value) is not None
    if ptype == "list":
        return isinstance(value, list)
    if ptype == "dict":
        return isinstance(value, dict)
    # Unknown placeholder types must not break the enforcement path:
    # ``Validator.validate`` documents that it never raises, so a
    # malformed policy (hand-edited, version-skewed) degrades to a
    # non-match (deny) rather than a crash of the proxy.
    logger.warning("unknown placeholder type %r treated as non-matching", ptype)
    return False


@lru_cache(maxsize=4096)
def compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile a validator string embedding placeholder tokens into a
    regular expression, once per distinct pattern string.

    The enforcement hot path matches the same few hundred pattern
    strings millions of times; memoizing the string -> ``re.Pattern``
    step removes both the regex-source rebuild and the ``re`` cache
    lookup from every scalar match (interpreted *and* compiled mode).
    """
    regex_parts: list[str] = []
    pos = 0
    for match in TOKEN_RE.finditer(pattern):
        regex_parts.append(re.escape(pattern[pos : match.start()]))
        regex_parts.append(_TYPE_PATTERNS[match.group(1)])
        pos = match.end()
    regex_parts.append(re.escape(pattern[pos:]))
    return re.compile("".join(regex_parts))


def matches_pattern(value: Any, pattern: str) -> bool:
    """Match a manifest value against a validator string that embeds
    placeholder tokens, e.g. ``docker.io/bitnami/nginx:⟨string⟩``."""
    if not isinstance(value, (str, int, float, bool)):
        return False
    from repro.helm.functions import _go_str

    return compile_pattern(pattern).fullmatch(_go_str(value)) is not None


def matches(value: Any, allowed: Any) -> bool:
    """Full scalar matching: *allowed* may be a whole placeholder, a
    pattern string with embedded tokens, or a constant."""
    ptype = placeholder_type(allowed)
    if ptype is not None:
        return matches_type(value, ptype)
    if has_embedded(allowed):
        return matches_pattern(value, allowed)
    if allowed == value:
        return True
    # YAML tolerance for quoted scalars: "8080" vs 8080, "true" vs true.
    if isinstance(allowed, str) and not isinstance(value, str):
        from repro.helm.functions import _go_str

        return allowed == _go_str(value)
    if isinstance(value, str) and not isinstance(allowed, str):
        from repro.helm.functions import _go_str

        return value == _go_str(allowed)
    return False


# ---------------------------------------------------------------------------
# Type inference (schema generation)
# ---------------------------------------------------------------------------

_PORT_KEY_RE = re.compile(r"(?:^|[a-z])port", re.I)
_QUANTITY_KEY_RE = re.compile(r"cpu|memory|storage|size|limit|request", re.I)
_QUANTITY_UNIT_RE = re.compile(r"^\d+(\.\d+)?(m|k|Ki|Mi|Gi|Ti|Pi|K|M|G|T|P|E|Ei)$")


def infer_placeholder(key: str, value: Any) -> str:
    """Infer the placeholder token for a default value during values-
    schema generation (regex-based substitution per Sec. V-A)."""
    if isinstance(value, bool):
        return make("bool")
    if isinstance(value, int):
        if _PORT_KEY_RE.search(key) and 0 <= value <= 65535:
            return make("port")
        return make("int")
    if isinstance(value, float):
        return make("quantity")
    if isinstance(value, str):
        if matches_type(value, "IP"):
            return make("IP")
        # A bare decimal like "2.10" is usually a version tag, not a
        # quantity: require a unit suffix, or a resource-flavoured key.
        if _QUANTITY_UNIT_RE.match(value):
            return make("quantity")
        if (
            _QUANTITY_KEY_RE.search(key)
            and _QUANTITY_RE.match(value)
            and not _INT_RE.match(value)
        ):
            return make("quantity")
        if _PORT_KEY_RE.search(key) and _INT_RE.match(value):
            return make("port")
        return make("string")
    return make("string")
