"""The end-to-end policy generation pipeline (Fig. 6, offline phase).

``generate_policy(chart)`` runs the four phases in order -- values
schema generation, configuration-space exploration, variant rendering,
validator consolidation -- and returns an enforceable
:class:`~repro.core.enforcement.Validator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.enforcement import Validator, compile_enabled
from repro.core.explorer import explore_variants
from repro.core.renderer import render_all_variants
from repro.core.schema_gen import ValuesSchema, generate_values_schema
from repro.core.security import DEFAULT_LOCKS, SecurityLock
from repro.core.validator_gen import build_validator
from repro.helm.chart import Chart


@dataclass
class PolicyGenerationReport:
    """Artifacts of one policy generation run (for inspection/tests)."""

    operator: str
    values_schema: ValuesSchema
    variants: list[dict[str, Any]]
    manifests: list[dict[str, Any]]
    validator: Validator

    @property
    def kinds(self) -> list[str]:
        return sorted(self.validator.kinds)


class PolicyGenerator:
    """Configurable policy generation (locks, boolean exploration)."""

    def __init__(
        self,
        locks: tuple[SecurityLock, ...] = DEFAULT_LOCKS,
        explore_booleans: bool = False,
        namespace: str = "default",
        precompile: bool = True,
    ):
        self.locks = locks
        self.explore_booleans = explore_booleans
        self.namespace = namespace
        #: Compile the validator eagerly at generation time (offline
        #: phase), so the enforcement proxy's first request does not
        #: pay the one-time compilation cost.
        self.precompile = precompile

    def generate(self, chart: Chart) -> PolicyGenerationReport:
        schema = generate_values_schema(chart, explore_booleans=self.explore_booleans)
        variants = explore_variants(schema)
        manifests = render_all_variants(chart, variants, namespace=self.namespace)
        validator = build_validator(
            chart.name, manifests, locks=self.locks, variants_rendered=len(variants)
        )
        validator.meta["chartVersion"] = chart.version
        validator.meta["exploreBooleans"] = self.explore_booleans
        if self.precompile and compile_enabled():
            validator.compiled()
        return PolicyGenerationReport(
            operator=chart.name,
            values_schema=schema,
            variants=variants,
            manifests=manifests,
            validator=validator,
        )


def generate_policy(chart: Chart, **kwargs: Any) -> Validator:
    """One-call policy generation with default settings."""
    return PolicyGenerator(**kwargs).generate(chart).validator
