"""Anomaly detection on API calls (paper Sec. VIII, residual risk).

KubeFence deliberately does not restrict interfaces that legitimate
workloads use, even when those interfaces are vulnerability-prone; the
paper proposes anomaly detection on API calls as the complementary
strategy for this *residual* attack surface.  This module implements
that complement:

- :class:`ApiAnomalyDetector` learns a per-user behavioural profile
  from an attack-free window: the (verb, kind) pairs used, the schema
  field-sets sent per kind, and the scalar values observed per field;
- at runtime each request is scored against the profile: novel kinds,
  verbs, fields, and values each contribute to the anomaly score;
- :class:`AnomalyMonitoringTransport` wraps any transport
  (:class:`~repro.core.proxy.KubeFenceProxy` or a direct connection)
  and raises alerts without blocking -- detection, not prevention.

Unlike the validator (derived from charts), the profile is derived from
*observed traffic*, so the two mechanisms fail independently: a field
inside the policy but outside the behavioural norm still raises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.k8s.apiserver import ApiRequest, ApiResponse
from repro.k8s.audit import AuditLog
from repro.obs import current_trace_id
from repro.obs.analytics.events import SecurityEvent
from repro.yamlutil import walk_leaves


def _field_set(manifest: dict[str, Any]) -> set[tuple[str, ...]]:
    """Schema field paths of a manifest (list indexes stripped)."""
    return {
        path.keys_only
        for path, _ in walk_leaves(manifest)
        if path.keys_only and path.keys_only[0] not in ("status",)
    }


def _scalar_items(manifest: dict[str, Any]) -> list[tuple[tuple[str, ...], Any]]:
    return [
        (path.keys_only, value)
        for path, value in walk_leaves(manifest)
        if not isinstance(value, (dict, list)) and path.keys_only
    ]


@dataclass
class AnomalyReport:
    """The scored verdict for one request."""

    score: float
    novel_kind: bool = False
    novel_verb: bool = False
    novel_fields: list[str] = field(default_factory=list)
    novel_values: list[str] = field(default_factory=list)
    #: True when the identity had no learned profile at all -- the
    #: score is then a maximal 1.0 by construction, not by evidence.
    no_baseline: bool = False

    def reasons(self) -> list[str]:
        """Bounded label vocabulary for metrics (never free text)."""
        out: list[str] = []
        if self.no_baseline:
            out.append("no-baseline")
        if self.novel_kind:
            out.append("novel-kind")
        if self.novel_verb:
            out.append("novel-verb")
        if self.novel_fields:
            out.append("novel-fields")
        if self.novel_values:
            out.append("novel-values")
        return out or ["none"]

    def summary(self) -> str:
        parts = []
        if self.no_baseline:
            parts.append("no baseline")
        if self.novel_kind:
            parts.append("novel kind")
        if self.novel_verb:
            parts.append("novel verb")
        if self.novel_fields:
            parts.append(f"{len(self.novel_fields)} novel field(s)")
        if self.novel_values:
            parts.append(f"{len(self.novel_values)} novel value(s)")
        return f"score={self.score:.2f}" + (f" ({', '.join(parts)})" if parts else "")


@dataclass
class _Profile:
    kinds_verbs: set[tuple[str, str]] = field(default_factory=set)
    fields_by_kind: dict[str, set[tuple[str, ...]]] = field(default_factory=dict)
    values_by_field: dict[tuple[str, tuple[str, ...]], set[Any]] = field(default_factory=dict)
    observations: int = 0


class ApiAnomalyDetector:
    """Learns per-user API behaviour; scores deviations.

    Scoring weights (sum-capped at 1.0): novel kind 1.0, novel verb
    0.6, each novel field 0.3, each novel scalar value 0.05.  The
    default threshold of 0.3 flags any structural novelty (one new
    field suffices) while tolerating small value drift.
    """

    WEIGHT_KIND = 1.0
    WEIGHT_VERB = 0.6
    WEIGHT_FIELD = 0.3
    WEIGHT_VALUE = 0.05

    def __init__(self, threshold: float = 0.3):
        self.threshold = threshold
        self._profiles: dict[str, _Profile] = {}

    def _profile(self, username: str) -> _Profile:
        return self._profiles.setdefault(username, _Profile())

    # -- learning ------------------------------------------------------------

    def learn(self, request: ApiRequest) -> None:
        profile = self._profile(request.user.username)
        profile.observations += 1
        profile.kinds_verbs.add((request.kind, request.verb))
        if isinstance(request.body, dict):
            fields = profile.fields_by_kind.setdefault(request.kind, set())
            fields.update(_field_set(request.body))
            for path, value in _scalar_items(request.body):
                try:
                    profile.values_by_field.setdefault((request.kind, path), set()).add(value)
                except TypeError:  # unhashable scalar; skip value memory
                    pass

    def learn_from_audit(self, audit_log: AuditLog, username: str) -> int:
        """Bootstrap a profile from an attack-free audit window."""
        from repro.k8s.apiserver import User

        learned = 0
        for event in audit_log.successful():
            if event.username != username:
                continue
            self.learn(
                ApiRequest(
                    verb=event.verb,
                    kind=_kind_from_resource(event.resource),
                    user=User(username),
                    namespace=event.namespace,
                    name=event.name,
                    body=event.request_object,
                )
            )
            learned += 1
        return learned

    # -- scoring ------------------------------------------------------------

    def score(self, request: ApiRequest) -> AnomalyReport:
        profile = self._profiles.get(request.user.username)
        if profile is None or profile.observations == 0:
            # No baseline: everything is maximally anomalous.
            return AnomalyReport(
                score=1.0, novel_kind=True, novel_verb=True, no_baseline=True
            )
        report = AnomalyReport(score=0.0)
        if (request.kind, request.verb) not in profile.kinds_verbs:
            known_kinds = {kind for kind, _ in profile.kinds_verbs}
            if request.kind not in known_kinds:
                report.novel_kind = True
                report.score += self.WEIGHT_KIND
            else:
                report.novel_verb = True
                report.score += self.WEIGHT_VERB
        if isinstance(request.body, dict):
            known_fields = profile.fields_by_kind.get(request.kind, set())
            for path in sorted(_field_set(request.body) - known_fields):
                report.novel_fields.append(".".join(path))
                report.score += self.WEIGHT_FIELD
            for path, value in _scalar_items(request.body):
                known_values = profile.values_by_field.get((request.kind, path))
                if known_values is not None and value not in known_values:
                    report.novel_values.append(f"{'.'.join(path)}={value!r}")
                    report.score += self.WEIGHT_VALUE
        report.score = min(report.score, 1.0)
        return report

    def is_anomalous(self, request: ApiRequest) -> bool:
        return self.score(request).score >= self.threshold


@dataclass(frozen=True)
class AnomalyAlert:
    """One raised alert (the request was still forwarded)."""

    username: str
    verb: str
    kind: str
    name: str
    report: AnomalyReport


#: Histogram buckets for anomaly scores: dense around the default
#: threshold (0.3) where the alerting decision is made.
ANOMALY_SCORE_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)


class AnomalyMonitoringTransport:
    """Detection-mode wrapper: score every request, alert on threshold,
    forward regardless (complements, never replaces, enforcement).

    With a metrics ``registry``, every score lands in the
    ``kubefence_anomaly_score`` histogram and each alert increments
    ``kubefence_anomaly_alerts_total{user,reason}`` (reason drawn from
    the bounded :meth:`AnomalyReport.reasons` vocabulary).  With an
    ``event_bus``, alerts are also published as ``kind="anomaly"``
    security events so the forensics engine can stitch detection-only
    hits into attack timelines.
    """

    def __init__(self, inner: Any, detector: ApiAnomalyDetector,
                 learn_online: bool = False,
                 registry: Any | None = None,
                 event_bus: Any | None = None):
        self.inner = inner
        self.detector = detector
        self.learn_online = learn_online
        self.alerts: list[AnomalyAlert] = []
        self.events = event_bus
        self._m_alerts = None
        self._m_score = None
        if registry is not None:
            self._m_alerts = registry.counter(
                "kubefence_anomaly_alerts_total",
                "Anomaly alerts raised, by identity and reason.",
                labels=("user", "reason"),
                max_series=128,
            )
            self._m_score = registry.histogram(
                "kubefence_anomaly_score",
                "Anomaly score distribution over all scored requests.",
                buckets=ANOMALY_SCORE_BUCKETS,
            )

    def submit(self, request: ApiRequest) -> ApiResponse:
        report = self.detector.score(request)
        if self._m_score is not None:
            self._m_score.observe(report.score)
        if report.score >= self.detector.threshold:
            name = ""
            if request.body:
                name = request.body.get("metadata", {}).get("name", "")
            alert = AnomalyAlert(
                username=request.user.username,
                verb=request.verb,
                kind=request.kind,
                name=name or (request.name or ""),
                report=report,
            )
            self.alerts.append(alert)
            if self._m_alerts is not None:
                for reason in report.reasons():
                    self._m_alerts.labels(
                        user=alert.username, reason=reason
                    ).inc()
            bus = self.events
            if bus is not None and bus.enabled:
                bus.publish(
                    SecurityEvent(
                        kind="anomaly",
                        source="anomaly-detector",
                        ts=time.time(),
                        user=alert.username,
                        verb=alert.verb,
                        resource=alert.kind,
                        name=alert.name,
                        namespace=request.namespace or "",
                        outcome="alert",
                        trace_id=current_trace_id() or "",
                        score=report.score,
                        detail={
                            "reasons": report.reasons(),
                            "novel_fields": list(report.novel_fields),
                            "summary": report.summary(),
                        },
                    )
                )
        response = self.inner.submit(request)
        if self.learn_online and response.ok:
            self.detector.learn(request)
        return response


def _kind_from_resource(plural: str) -> str:
    from repro.k8s.gvk import registry

    try:
        return registry.by_plural(plural).kind
    except KeyError:
        return plural
