"""Sharded, low-contention decision cache for the enforcement hot path.

The revision-aware :class:`~repro.core.compiled.DecisionCache` is a
single ``OrderedDict`` -- correct under the GIL, but every worker
thread funnels through the same structure, and every hit mutates the
shared recency list.  Under sustained multi-identity load (the
``repro loadtest`` harness) that one structure is the contention point
of the whole data plane.

:class:`ShardedDecisionCache` splits the key space across N independent
LRU shards:

- **Shard selection** hashes the body fingerprint
  (:func:`fast_body_key`'s marshal bytes, so distinct manifests spread
  uniformly) and masks into a power-of-two shard count -- one dict
  probe, no modulo.
- **Lock-free read fast path.**  Entries are stored as
  ``(revision, result)`` pairs, so a reader never needs the shard lock
  to prove freshness: a single GIL-atomic ``dict.get`` plus a tuple
  compare either yields a result judged under the caller's exact
  policy revision or misses.  A revision bump can therefore never
  serve a stale decision, even while another thread is mid-clear --
  the tag check is per entry, not per shard.
- **Per-shard write locks.**  Misses and LRU maintenance take only
  their shard's lock; writers on different shards never serialize
  against each other.
- **Opportunistic recency.**  A hit refreshes its LRU position only
  when the shard lock is free (``acquire(blocking=False)``); under
  contention the hit simply returns -- recency decays toward FIFO
  instead of readers queuing behind writers.

``REPRO_NO_SHARDS=1`` disables sharding: :func:`new_decision_cache`
then returns the legacy single :class:`DecisionCache`, and the rest of
the sharded data plane (thread-local metric accumulators, see
:mod:`repro.obs.metrics`) reverts to its global-lock layout too.  The
flag is the loadtest's legacy arm and the escape hatch if a coherence
bug is ever suspected in production.
"""

from __future__ import annotations

import marshal
import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily at runtime: this module must stay
    from repro.core.compiled import DecisionCache  # dependency-free so
    # repro.k8s can probe shards_enabled() without a core<->k8s cycle.

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "SHARDS_ENV",
    "ShardedDecisionCache",
    "fast_body_key",
    "new_decision_cache",
    "shards_enabled",
]

#: Environment variable disabling the sharded data plane entirely.
SHARDS_ENV = "REPRO_NO_SHARDS"

#: Default shard count: enough to spread a handful of worker threads
#: without fragmenting small caches (power of two for mask selection).
DEFAULT_SHARD_COUNT = 8


def shards_enabled() -> bool:
    """Whether the sharded data plane is active (default on;
    ``REPRO_NO_SHARDS=1`` selects the legacy global-lock layout)."""
    return not os.environ.get(SHARDS_ENV)


def fast_body_key(body: Any) -> bytes | None:
    """The sharded cache's fingerprint: C-speed ``marshal`` bytes.

    The legacy cache keys on canonical JSON
    (:func:`repro.core.compiled.canonical_body_key`), which costs a
    full ``json.dumps(sort_keys=True)`` per request -- the single
    largest item on the hot-path profile.  ``marshal.dumps`` is ~10x
    cheaper and *collision-free*: it is a deterministic serializer, so
    two bodies producing the same bytes decode to equal values.  It is
    however **order-sensitive** -- equal dicts with different key
    insertion order fingerprint differently.  That only costs a cache
    miss (the body is re-validated, decisions stay identical), and
    API-server clients resubmitting a manifest send it byte-identical
    anyway.  Returns ``None`` for unmarshallable bodies (not cached).

    Marshal **version 2** specifically: versions >= 3 add object
    *instancing* (shared/interned objects serialize as backreferences),
    which makes the bytes depend on object identity -- two equal
    bodies fingerprint differently just because one shares substructure
    the other duplicates.  Version 2 is purely structural.
    """
    try:
        return marshal.dumps(body, 2)
    except (ValueError, TypeError):
        return None


class _Shard:
    """One independent LRU segment with its own write lock."""

    __slots__ = ("maxsize", "lock", "entries")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.lock = threading.Lock()
        #: key -> (revision, result); OrderedDict for LRU order.
        self.entries: "OrderedDict[Any, tuple[Any, Any]]" = OrderedDict()


class ShardedDecisionCache:
    """N independent revision-tagged LRU shards (drop-in for
    :class:`~repro.core.compiled.DecisionCache`).

    Capacity is divided across shards (each shard holds
    ``ceil(maxsize / shards)`` entries), so worst-case memory matches
    the single-cache configuration.  Revision freshness is carried per
    entry, which is what makes the read path lock-free: there is no
    shard-wide revision cell a reader could observe mid-update.
    """

    def __init__(self, maxsize: int = 1024, shards: int = DEFAULT_SHARD_COUNT):
        if maxsize <= 0:
            raise ValueError("ShardedDecisionCache maxsize must be positive")
        if shards <= 0 or shards & (shards - 1):
            raise ValueError("shard count must be a positive power of two")
        self.maxsize = maxsize
        per_shard = (maxsize + shards - 1) // shards
        self._mask = shards - 1
        self._shards = tuple(_Shard(per_shard) for _ in range(shards))

    @property
    def shard_count(self) -> int:
        return self._mask + 1

    def _shard_for(self, key: Any) -> _Shard:
        return self._shards[hash(key) & self._mask]

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()

    def get(self, key: Any, revision: Any) -> Any | None:
        """Lock-free lookup: one dict probe plus a revision-tag compare.

        The LRU touch is opportunistic -- taken only when the shard
        lock happens to be free -- so readers never block behind a
        writer on another key.
        """
        shard = self._shard_for(key)
        entry = shard.entries.get(key)
        if entry is None or entry[0] != revision:
            return None
        if shard.lock.acquire(blocking=False):
            try:
                shard.entries.move_to_end(key)
            except KeyError:
                pass  # evicted between the probe and the touch
            finally:
                shard.lock.release()
        return entry[1]

    def put(self, key: Any, result: Any, revision: Any) -> None:
        shard = self._shard_for(key)
        with shard.lock:
            entries = shard.entries
            entries[key] = (revision, result)
            entries.move_to_end(key)
            while len(entries) > shard.maxsize:
                entries.popitem(last=False)


def new_decision_cache(
    maxsize: int, shards: int | None = None
) -> "ShardedDecisionCache | DecisionCache":
    """The proxy's decision cache: sharded by default, the legacy
    single-lock :class:`DecisionCache` under ``REPRO_NO_SHARDS=1``.

    The choice is made at construction time (proxy creation), not per
    request -- flipping the env var only affects proxies built after
    the flip, mirroring how ``REPRO_NO_OBS`` binds registries.
    """
    if not shards_enabled():
        from repro.core.compiled import DecisionCache

        return DecisionCache(maxsize)
    return ShardedDecisionCache(maxsize, shards or DEFAULT_SHARD_COUNT)
