"""Compiled validator engine: one-time policy compilation (perf layer).

``Validator.validate`` is semantically a tree overlap between the
incoming manifest and the policy validator (Sec. V-B).  The interpreted
implementation in :mod:`repro.core.enforcement` re-derives everything
on every request: placeholder tokens are re-classified per scalar,
pattern strings are re-lowered to regex source, list elements are
probed against every candidate subtree with throwaway ``Violation``
lists, and violation path strings are built eagerly on the success
path.

This module compiles a :class:`~repro.core.enforcement.Validator`
*once* into a tree of matcher closures:

- placeholder types are specialized to direct ``isinstance``/range
  checks, pattern strings to pre-compiled :class:`re.Pattern` objects
  (via :func:`repro.core.placeholders.compile_pattern`), and constants
  to equality checks with the YAML-tolerant coercion pre-computed;
- list candidates are pre-indexed by their ``name`` field, so the
  named-element fast path (containers, ports, env) is a dict lookup
  followed by one subtree probe instead of a linear scan;
- violation paths are threaded as lazy ``(parent, segment)`` cons
  cells and only rendered to strings on the failure path.

Parity contract: for every manifest, the compiled engine returns the
same allow/deny outcome and the same violation paths/reasons *in the
same order* as the interpreted walk (``tests/core/test_compiled.py``
replays a fuzz corpus through both engines to pin this down).

The module also houses the :class:`DecisionCache` used by the
enforcement proxies: a bounded LRU keyed on a canonical hash of the
write body, with revision-aware invalidation when the validator
changes, so controllers resubmitting identical manifests skip
validation entirely.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Callable

from repro.core import placeholders
from repro.core.enforcement import (
    MAX_VALIDATION_DEPTH,
    SERVER_MANAGED_METADATA,
    ValidationResult,
    Validator,
    Violation,
)
from repro.core.security import SCOPE_CONTAINER, SCOPE_SERVICE
from repro.helm.functions import _go_str
from repro.k8s.gvk import registry
from repro.yamlutil import FieldPath, get_path

#: Lazy path: either the root string or a ``(parent, segment)`` pair.
_Path = Any

#: loud(value, path, meta, violations, depth) -> None
_Loud = Callable[[Any, _Path, bool, list, int], None]
#: quiet(value, meta, depth) -> bool
_Quiet = Callable[[Any, bool, int], bool]

_DEPTH_REASON = f"manifest exceeds maximum depth {MAX_VALIDATION_DEPTH}"


def _render_path(path: _Path) -> str:
    """Materialize a lazy path into the interpreted engine's string."""
    if isinstance(path, str):
        return path
    parts: list[str] = []
    while isinstance(path, tuple):
        path, segment = path
        parts.append(segment)
    parts.append(path)
    return "".join(reversed(parts))


# ---------------------------------------------------------------------------
# Scalar compilation
# ---------------------------------------------------------------------------


def _port_check(value: Any) -> bool:
    return placeholders._is_intlike(value) and 0 <= int(value) <= 65535


def _bool_check(value: Any) -> bool:
    return isinstance(value, bool) or value in ("true", "false", "True", "False")


#: Specialized type checks for the hot placeholder types; the rest fall
#: back to ``matches_type`` (identical semantics, one extra call).
_TYPE_CHECKS: dict[str, Callable[[Any], bool]] = {
    "string": lambda v: isinstance(v, str),
    "int": placeholders._is_intlike,
    "port": _port_check,
    "bool": _bool_check,
    "list": lambda v: isinstance(v, list),
    "dict": lambda v: isinstance(v, dict),
}


def compile_scalar_check(allowed: Any) -> Callable[[Any], bool]:
    """One-time specialization of ``placeholders.matches(·, allowed)``."""
    ptype = placeholders.placeholder_type(allowed)
    if ptype is not None:
        check = _TYPE_CHECKS.get(ptype)
        if check is not None:
            return check
        return lambda v, _p=ptype: placeholders.matches_type(v, _p)
    if placeholders.has_embedded(allowed):
        fullmatch = placeholders.compile_pattern(allowed).fullmatch

        def pattern_check(v: Any, _fullmatch=fullmatch) -> bool:
            return isinstance(v, (str, int, float, bool)) and _fullmatch(_go_str(v)) is not None

        return pattern_check
    if isinstance(allowed, str):

        def str_const_check(v: Any, _c=allowed) -> bool:
            return v == _c or (not isinstance(v, str) and _c == _go_str(v))

        return str_const_check
    coerced = _go_str(allowed)

    def const_check(v: Any, _c=allowed, _g=coerced) -> bool:
        return v == _c or (isinstance(v, str) and v == _g)

    return const_check


def _expected_description(allowed: Any) -> str:
    """The ``expected ...`` clause, pre-rendered at compile time (the
    interpreted engine rebuilds it per violation).  The interpreted
    f-string applies ``!r`` to the whole conditional expression, so the
    paper form is repr'd as well -- parity requires matching that."""
    if isinstance(allowed, str):
        return repr(placeholders.to_paper_form(allowed))
    return repr(allowed)


def _compile_scalar(allowed: Any) -> tuple[_Loud, _Quiet]:
    check = compile_scalar_check(allowed)
    expected = _expected_description(allowed)

    def loud(value: Any, path: _Path, meta: bool, violations: list, depth: int) -> None:
        if depth > MAX_VALIDATION_DEPTH:
            violations.append(Violation(_render_path(path), _DEPTH_REASON))
            return
        if not check(value):
            violations.append(
                Violation(
                    _render_path(path),
                    f"value {value!r} not allowed (expected {expected})",
                    value,
                )
            )

    def quiet(
        value: Any, meta: bool, depth: int,
        _check=check, _max=MAX_VALIDATION_DEPTH,
    ) -> bool:
        return depth <= _max and _check(value)

    return loud, quiet


# ---------------------------------------------------------------------------
# Object (dict) compilation
# ---------------------------------------------------------------------------


def _compile_dict(allowed: dict[str, Any]) -> tuple[_Loud, _Quiet]:
    #: key -> (loud, quiet, child_meta, lazy segment)
    children: dict[str, tuple[_Loud, _Quiet, bool, str]] = {}
    for key, subtree in allowed.items():
        child_loud, child_quiet = _compile_node(subtree)
        children[key] = (child_loud, child_quiet, key.endswith("metadata"), "." + key)
    get_child = children.get

    def loud(value: Any, path: _Path, meta: bool, violations: list, depth: int) -> None:
        if depth > MAX_VALIDATION_DEPTH:
            violations.append(Violation(_render_path(path), _DEPTH_REASON))
            return
        if not isinstance(value, dict):
            violations.append(Violation(_render_path(path), "expected an object", value))
            return
        next_depth = depth + 1
        for key, child_value in value.items():
            if meta and key in SERVER_MANAGED_METADATA:
                continue
            entry = get_child(key)
            if entry is None:
                violations.append(
                    Violation(
                        _render_path(path) + "." + key,
                        "field not allowed by workload policy",
                        child_value,
                    )
                )
                continue
            child_loud, _, child_meta, segment = entry
            child_loud(child_value, (path, segment), child_meta, violations, next_depth)

    def quiet(
        value: Any, meta: bool, depth: int,
        _get=get_child, _max=MAX_VALIDATION_DEPTH,
        _managed=SERVER_MANAGED_METADATA, _dict=dict,
        _isinstance=isinstance,
    ) -> bool:
        if depth > _max or not _isinstance(value, _dict):
            return False
        next_depth = depth + 1
        for key, child_value in value.items():
            if meta and key in _managed:
                continue
            entry = _get(key)
            if entry is None:
                return False
            if not entry[1](child_value, entry[2], next_depth):
                return False
        return True

    return loud, quiet


# ---------------------------------------------------------------------------
# List compilation (named-candidate index)
# ---------------------------------------------------------------------------


def _compile_list(allowed: list) -> tuple[_Loud, _Quiet]:
    compiled = [_compile_node(candidate) for candidate in allowed]
    louds = tuple(entry[0] for entry in compiled)
    quiets = tuple(entry[1] for entry in compiled)
    count = len(quiets)

    # Pre-index dict candidates by their ``name`` field: plain string
    # constants land in a dict for O(1) alignment, everything else
    # (placeholders, embedded patterns, non-string constants, absent
    # names) keeps a compiled name-check for the dynamic scan.
    named_const: dict[str, tuple[int, ...]] = {}
    named_dyn: list[tuple[int, Callable[[Any], bool]]] = []
    for index, candidate in enumerate(allowed):
        if not isinstance(candidate, dict):
            continue
        cand_name = candidate.get("name")
        if (
            isinstance(cand_name, str)
            and placeholders.placeholder_type(cand_name) is None
            and not placeholders.has_embedded(cand_name)
        ):
            named_const[cand_name] = named_const.get(cand_name, ()) + (index,)
        else:
            named_dyn.append((index, compile_scalar_check(cand_name)))
    named_dyn_t = tuple(named_dyn)

    has_dyn = bool(named_dyn_t)

    def named_indexes(element: Any) -> tuple[int, ...] | list[int] | None:
        """Indexes of candidates whose ``name`` matches the element's
        (mirrors ``Validator._named_candidate``); None when the element
        is not a named object."""
        if not isinstance(element, dict) or "name" not in element:
            return None
        name = element["name"]
        key = name if isinstance(name, str) else _go_str(name)
        const_hits = named_const.get(key, ())
        if not has_dyn:
            return const_hits
        indexes = list(const_hits)
        for index, check in named_dyn_t:
            if check(name):
                indexes.append(index)
        return indexes

    def element_quiet(element: Any, probe_depth: int) -> bool:
        """Does any candidate match *element*?  Same-named candidates
        are probed first (the overwhelmingly likely match)."""
        indexes = named_indexes(element)
        if indexes:
            for index in indexes:
                if quiets[index](element, False, probe_depth):
                    return True
            for index in range(count):
                if index not in indexes and quiets[index](element, False, probe_depth):
                    return True
            return False
        for quiet_fn in quiets:
            if quiet_fn(element, False, probe_depth):
                return True
        return False

    def match_element(
        element: Any, pos: _Path, meta: bool, violations: list, probe_depth: int
    ) -> None:
        # Failure path: align with the uniquely-named candidate to
        # report the exact offending field, else a generic violation.
        indexes = named_indexes(element)
        if indexes is not None and len(indexes) == 1:
            louds[indexes[0]](element, pos, meta, violations, probe_depth)
        else:
            violations.append(
                Violation(
                    _render_path(pos), "no allowed configuration matches this entry", element
                )
            )

    def loud(value: Any, path: _Path, meta: bool, violations: list, depth: int) -> None:
        if depth > MAX_VALIDATION_DEPTH:
            violations.append(Violation(_render_path(path), _DEPTH_REASON))
            return
        probe_depth = depth + 1
        if isinstance(value, list):
            for i, element in enumerate(value):
                if element_quiet(element, probe_depth):
                    continue
                match_element(element, (path, f"[{i}]"), False, violations, probe_depth)
        else:
            if not element_quiet(value, probe_depth):
                match_element(value, path, meta, violations, probe_depth)

    def quiet(value: Any, meta: bool, depth: int) -> bool:
        if depth > MAX_VALIDATION_DEPTH:
            return False
        probe_depth = depth + 1
        if isinstance(value, list):
            for element in value:
                if not element_quiet(element, probe_depth):
                    return False
            return True
        return element_quiet(value, probe_depth)

    return loud, quiet


def _compile_node(allowed: Any) -> tuple[_Loud, _Quiet]:
    if isinstance(allowed, dict):
        return _compile_dict(allowed)
    if isinstance(allowed, list):
        return _compile_list(allowed)
    return _compile_scalar(allowed)


# ---------------------------------------------------------------------------
# Root compilation (per kind)
# ---------------------------------------------------------------------------


def _compile_root(kind: str, tree: dict[str, Any]) -> Callable[[dict, list], None]:
    """The loud matcher for a whole manifest of *kind* (the interpreted
    engine's root ``_match_dict`` call with ``is_root=True``)."""
    children: dict[str, tuple[_Loud, bool, str]] = {}
    for key, subtree in tree.items():
        child_loud, _ = _compile_node(subtree)
        children[key] = (child_loud, key.endswith("metadata"), "." + key)
    get_child = children.get
    root_meta = kind.endswith("metadata")

    def match_root(manifest: dict[str, Any], violations: list) -> None:
        for key, child_value in manifest.items():
            if key == "status":
                continue
            if root_meta and key in SERVER_MANAGED_METADATA:
                continue
            entry = get_child(key)
            if entry is None:
                violations.append(
                    Violation(
                        kind + "." + key, "field not allowed by workload policy", child_value
                    )
                )
                continue
            child_loud, child_meta, segment = entry
            child_loud(child_value, (kind, segment), child_meta, violations, 1)

    return match_root


class CompiledValidator:
    """A :class:`Validator` lowered to matcher closures.

    Drop-in for the interpreted walk: ``validate`` has the same
    signature, outcome, violation paths/reasons, and ordering.
    """

    __slots__ = ("operator", "source", "_roots", "_required_container",
                 "_required_service", "_pod_spec_paths")

    def __init__(self, validator: Validator):
        self.operator = validator.operator
        self.source = validator
        self._roots = {
            kind: _compile_root(kind, tree) for kind, tree in validator.kinds.items()
        }
        # Lock and pod-spec paths are parsed to FieldPath once here;
        # the interpreted engine re-parses the dotted strings per
        # request.
        self._required_container = tuple(
            (lock, FieldPath.parse(lock.path))
            for lock in validator.locks
            if lock.mode == "required" and lock.scope == SCOPE_CONTAINER
        )
        self._required_service = tuple(
            (lock, FieldPath.parse(f"spec.{lock.path}"))
            for lock in validator.locks
            if lock.mode == "required" and lock.scope == SCOPE_SERVICE
        )
        self._pod_spec_paths = {}
        for kind in validator.kinds:
            if kind in registry:
                pod_path = registry.by_kind(kind).pod_spec_path
                if pod_path is not None:
                    self._pod_spec_paths[kind] = (pod_path, FieldPath.parse(pod_path))

    # -- validation --------------------------------------------------------

    def validate(self, manifest: dict[str, Any]) -> ValidationResult:
        """Validate one manifest; never raises."""
        kind = manifest.get("kind")
        if not isinstance(kind, str) or not kind:
            return ValidationResult(False, [Violation("kind", "missing kind")])
        root = self._roots.get(kind)
        if root is None:
            return ValidationResult(
                False,
                [Violation("kind", f"resource kind {kind!r} is not used by this workload")],
            )
        violations: list[Violation] = []
        root(manifest, violations)
        if self._required_container or self._required_service:
            self._check_required(manifest, kind, violations)
        return ValidationResult(not violations, violations)

    def _check_required(
        self, manifest: dict[str, Any], kind: str, violations: list[Violation]
    ) -> None:
        if self._required_container:
            entry = self._pod_spec_paths.get(kind)
            if entry is not None:
                pod_path_str, pod_path = entry
                pod_spec = get_path(manifest, pod_path, None)
                if isinstance(pod_spec, dict):
                    for group in ("containers", "initContainers"):
                        for i, container in enumerate(pod_spec.get(group) or []):
                            if not isinstance(container, dict):
                                continue
                            for lock, lock_path in self._required_container:
                                if not get_path(container, lock_path, None):
                                    violations.append(
                                        Violation(
                                            f"{pod_path_str}.{group}[{i}].{lock.path}",
                                            f"required by security policy: {lock.rationale}",
                                        )
                                    )
        if self._required_service and kind == "Service":
            for lock, lock_path in self._required_service:
                if not get_path(manifest, lock_path, None):
                    violations.append(
                        Violation(
                            f"spec.{lock.path}",
                            f"required by security policy: {lock.rationale}",
                        )
                    )


def compile_validator(validator: Validator) -> CompiledValidator:
    """Compile *validator* into its closure-tree form (one-time cost)."""
    return CompiledValidator(validator)


# ---------------------------------------------------------------------------
# Proxy-level decision cache
# ---------------------------------------------------------------------------


def canonical_body_key(body: Any) -> str | None:
    """A canonical, order-insensitive hash of a write body.

    Returns None for bodies that cannot be canonicalized (non-JSON
    values, non-string keys); such requests are simply not cached.
    """
    try:
        payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return hashlib.blake2b(payload.encode("utf-8", "surrogatepass"), digest_size=16).hexdigest()


class DecisionCache:
    """Bounded LRU of body-hash -> :class:`ValidationResult`.

    Revision-aware: callers pass the current policy revision to every
    operation; a revision change drops all cached decisions (a new
    validator must re-judge everything).
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize <= 0:
            raise ValueError("DecisionCache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, ValidationResult]" = OrderedDict()
        self._revision: Any = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def _sync_revision(self, revision: Any) -> None:
        if revision != self._revision:
            self._entries.clear()
            self._revision = revision

    def get(self, key: str, revision: Any) -> ValidationResult | None:
        self._sync_revision(revision)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, result: ValidationResult, revision: Any) -> None:
        self._sync_revision(revision)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
