"""Phase 4: consolidation of rendered manifests into a validator.

Manifests from all values variants are grouped by resource kind and
merged into a single allowed-configuration tree per kind (Fig. 8):

- maps merge key-by-key, recursively;
- list elements are aligned by their ``name`` field (the Kubernetes
  convention for containers, ports, env, volumes) and merged; unnamed
  elements are aligned by index, and genuinely distinct elements are
  kept side by side as alternatives;
- conflicting scalars consolidate into an array of all valid values
  (placeholders retained), implementing the paper's enum union;
- strings containing the ``RELEASE-NAME`` sentinel become name
  *patterns* (release names are chosen by the user at install time);
- finally the security-lock overlay is applied: ``equals`` locks are
  pinned to their safe constants, ``forbidden`` locks are stripped so
  their fields stay unknown (and hence denied), and ``required`` locks
  are recorded for the enforcement engine.

The validator's matching semantics give a YAML list two readings that
deliberately coincide: *a list in the validator is a set of allowed
values/shapes*.  A scalar manifest value must match one element; a list
manifest value must have every element match some validator element.
"""

from __future__ import annotations

from typing import Any

from repro.core import placeholders
from repro.core.enforcement import Validator
from repro.core.renderer import RELEASE_SENTINEL
from repro.core.security import (
    SCOPE_CONTAINER,
    SCOPE_POD,
    SCOPE_SERVICE,
    DEFAULT_LOCKS,
    SecurityLock,
)
from repro.k8s.gvk import registry
from repro.yamlutil import FieldPath, deep_copy, delete_path, get_path, set_path

# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

_SERVER_MANAGED_METADATA = ("resourceVersion", "uid", "creationTimestamp", "generation")


def normalize_manifest(manifest: dict[str, Any]) -> dict[str, Any]:
    """Pre-merge normalization: release-name sentinels become string
    patterns and the namespace becomes a placeholder (policies are
    name- and namespace-agnostic; RBAC already scopes namespaces)."""
    normalized = _replace_sentinels(deep_copy(manifest))
    meta = normalized.get("metadata")
    if isinstance(meta, dict) and "namespace" in meta:
        meta["namespace"] = placeholders.make("string")
    return normalized


def _replace_sentinels(node: Any) -> Any:
    if isinstance(node, dict):
        return {k: _replace_sentinels(v) for k, v in node.items()}
    if isinstance(node, list):
        return [_replace_sentinels(v) for v in node]
    if isinstance(node, str) and RELEASE_SENTINEL in node:
        return node.replace(RELEASE_SENTINEL, placeholders.make("string"))
    return node


# ---------------------------------------------------------------------------
# Tree merge
# ---------------------------------------------------------------------------


def merge_trees(left: Any, right: Any) -> Any:
    """Merge two allowed-configuration trees."""
    if left == right:
        return deep_copy(left)
    if isinstance(left, dict) and isinstance(right, dict):
        merged = {}
        for key in list(left) + [k for k in right if k not in left]:
            if key in left and key in right:
                merged[key] = merge_trees(left[key], right[key])
            else:
                merged[key] = deep_copy(left.get(key, right.get(key)))
        return merged
    if isinstance(left, list) and isinstance(right, list):
        return _merge_lists(left, right)
    # Scalar conflict (or scalar vs structure): union of alternatives.
    return _union(left, right)


def _union(left: Any, right: Any) -> list:
    alternatives = left if isinstance(left, list) else [left]
    out = [deep_copy(a) for a in alternatives]
    for candidate in right if isinstance(right, list) else [right]:
        if not any(candidate == existing for existing in out):
            out.append(deep_copy(candidate))
    return out


def _element_name(element: Any) -> str | None:
    if isinstance(element, dict):
        name = element.get("name")
        if isinstance(name, str):
            return name
    return None


def _merge_lists(left: list, right: list) -> list:
    """Merge two allowed-element lists (see module docstring)."""
    merged: list[Any] = [deep_copy(e) for e in left]
    by_name = {
        _element_name(e): i for i, e in enumerate(merged) if _element_name(e) is not None
    }
    unnamed_cursor = 0
    for element in right:
        name = _element_name(element)
        if name is not None and name in by_name:
            idx = by_name[name]
            merged[idx] = merge_trees(merged[idx], element)
            continue
        if name is None and isinstance(element, dict):
            # Align unnamed dict elements by index among unnamed slots.
            unnamed_slots = [
                i
                for i, e in enumerate(merged)
                if isinstance(e, dict) and _element_name(e) is None
            ]
            if unnamed_cursor < len(unnamed_slots):
                idx = unnamed_slots[unnamed_cursor]
                unnamed_cursor += 1
                merged[idx] = merge_trees(merged[idx], element)
                continue
        if not any(element == existing for existing in merged):
            merged.append(deep_copy(element))
            if name is not None:
                by_name[name] = len(merged) - 1
    return merged


# ---------------------------------------------------------------------------
# Security-lock overlay
# ---------------------------------------------------------------------------


def _container_lists(tree: dict[str, Any], kind: str) -> list[list]:
    """The containers/initContainers allowed-element lists of a
    workload-kind validator tree."""
    if kind not in registry:
        return []
    pod_path = registry.by_kind(kind).pod_spec_path
    if pod_path is None:
        return []
    pod_spec = get_path(tree, pod_path, None)
    if not isinstance(pod_spec, dict):
        return []
    out = []
    for key in ("containers", "initContainers"):
        value = pod_spec.get(key)
        if isinstance(value, list):
            out.append(value)
    return out


def apply_locks(tree: dict[str, Any], kind: str, locks: tuple[SecurityLock, ...]) -> None:
    """Overlay the lock catalog on one kind's validator tree, in place."""
    pod_path = registry.by_kind(kind).pod_spec_path if kind in registry else None
    for lock in locks:
        if lock.scope == SCOPE_POD and pod_path is not None:
            pod_spec = get_path(tree, pod_path, None)
            if isinstance(pod_spec, dict):
                _apply_lock_at(pod_spec, lock)
        elif lock.scope == SCOPE_CONTAINER:
            for container_list in _container_lists(tree, kind):
                for element in container_list:
                    if isinstance(element, dict):
                        _apply_lock_at(element, lock)
        elif lock.scope == SCOPE_SERVICE and kind == "Service":
            spec = tree.get("spec")
            if isinstance(spec, dict):
                _apply_lock_at(spec, lock)


def _apply_lock_at(root: dict[str, Any], lock: SecurityLock) -> None:
    path = FieldPath.parse(lock.path)
    if lock.mode == "forbidden":
        delete_path(root, path)
        return
    if lock.mode == "equals":
        set_path(root, path, lock.value)
        return
    if lock.mode == "required":
        # Presence is checked by the enforcement engine; make sure the
        # field at least exists in the tree so it is not "unknown".
        current = get_path(root, path, None)
        if current is None and lock.value is not None:
            set_path(root, path, lock.value)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


def build_validator(
    operator: str,
    manifests: list[dict[str, Any]],
    locks: tuple[SecurityLock, ...] = DEFAULT_LOCKS,
    variants_rendered: int = 0,
) -> Validator:
    """Consolidate *manifests* (from all variants) into a validator."""
    kinds: dict[str, dict[str, Any]] = {}
    for manifest in manifests:
        kind = manifest.get("kind")
        if not kind:
            continue
        normalized = normalize_manifest(manifest)
        if kind in kinds:
            kinds[kind] = merge_trees(kinds[kind], normalized)
        else:
            kinds[kind] = normalized
    for kind, tree in kinds.items():
        apply_locks(tree, kind, locks)
    return Validator(
        operator=operator,
        kinds=kinds,
        locks=list(locks),
        meta={"variantsRendered": variants_rendered, "manifestsMerged": len(manifests)},
    )
