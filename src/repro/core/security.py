"""The best-practice security lock catalog (Sec. V-A, phase 1).

KubeFence locks "predefined safe constants to fields critical to
security, according to best practices for K8s resource specifications"
-- the Pod Security Standards and the NSA/CISA hardening guide.  Locks
apply at two points:

1. during values-schema generation, a default value whose key matches a
   lock is replaced by the safe constant instead of a placeholder, so
   user overrides cannot weaken it;
2. during validator consolidation, locks are overlaid on every workload
   manifest so that the critical attributes are enforced "regardless of
   their presence in the Helm charts".

Each lock carries a *mode*:

- ``equals``   -- the field, when present, must equal the safe value;
- ``required`` -- the field must be present (and, with a value, equal);
- ``forbidden``-- the field must not appear at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Lock scopes: where in a workload manifest the rule applies.
SCOPE_POD = "pod"            # pod-spec level (hostNetwork, ...)
SCOPE_CONTAINER = "container"  # each container/initContainer entry
SCOPE_SERVICE = "service"    # Service spec level


@dataclass(frozen=True)
class SecurityLock:
    """One best-practice constraint."""

    path: str          # dotted path relative to the scope root
    scope: str         # SCOPE_POD | SCOPE_CONTAINER | SCOPE_SERVICE
    mode: str          # "equals" | "required" | "forbidden"
    value: Any = None  # safe constant for equals/required
    rationale: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "scope": self.scope,
            "mode": self.mode,
            "value": self.value,
            "rationale": self.rationale,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SecurityLock":
        return cls(
            path=data["path"],
            scope=data["scope"],
            mode=data["mode"],
            value=data.get("value"),
            rationale=data.get("rationale", ""),
        )


#: The default lock catalog (Pod Security Standards "restricted"
#: profile plus the paper's trusted-image pinning).
DEFAULT_LOCKS: tuple[SecurityLock, ...] = (
    SecurityLock("hostNetwork", SCOPE_POD, "equals", False,
                 "host network sharing exposes the node (CVE-2020-15257)"),
    SecurityLock("hostPID", SCOPE_POD, "equals", False,
                 "host PID namespace enables process spying/kill"),
    SecurityLock("hostIPC", SCOPE_POD, "equals", False,
                 "host IPC namespace enables shared-memory attacks"),
    SecurityLock("securityContext.runAsNonRoot", SCOPE_CONTAINER, "equals", True,
                 "containers must not run as root (PSS restricted)"),
    SecurityLock("securityContext.privileged", SCOPE_CONTAINER, "equals", False,
                 "privileged containers escape isolation (CVE-2021-21334)"),
    SecurityLock("securityContext.allowPrivilegeEscalation", SCOPE_CONTAINER, "equals", False,
                 "no setuid/exec privilege gain for child processes"),
    SecurityLock("securityContext.readOnlyRootFilesystem", SCOPE_CONTAINER, "equals", True,
                 "immutable root filesystem limits post-exploit persistence"),
    SecurityLock("securityContext.capabilities.add", SCOPE_CONTAINER, "forbidden", None,
                 "added capabilities (SYS_ADMIN, NET_RAW, ...) are dangerous"),
    SecurityLock("securityContext.seLinuxOptions.user", SCOPE_CONTAINER, "forbidden", None,
                 "custom SELinux users weaken mandatory access control"),
    SecurityLock("securityContext.seLinuxOptions.role", SCOPE_CONTAINER, "forbidden", None,
                 "custom SELinux roles weaken mandatory access control"),
    SecurityLock("securityContext.seccompProfile.localhostProfile", SCOPE_CONTAINER, "forbidden", None,
                 "localhost seccomp profiles can bypass confinement (CVE-2023-2431)"),
    SecurityLock("resources.limits", SCOPE_CONTAINER, "required", None,
                 "absent resource limits enable DoS amplification (CVE-2019-11253)"),
    SecurityLock("externalIPs", SCOPE_SERVICE, "forbidden", None,
                 "externalIPs allow traffic interception (CVE-2020-8554)"),
)


#: values.yaml keys that are locked to their chart constants during
#: schema generation (never replaced by placeholders).  Pinning
#: registry/repository mitigates typosquatting (Sec. V-A).
VALUE_KEY_LOCKS: frozenset[str] = frozenset({"registry", "repository"})

#: values.yaml leaf keys replaced by their safe constant regardless of
#: the chart default (subset of locks addressable from values files).
VALUE_SAFE_CONSTANTS: dict[str, Any] = {
    "runAsNonRoot": True,
    "privileged": False,
    "allowPrivilegeEscalation": False,
    "readOnlyRootFilesystem": True,
}
