"""KubeFence: the paper's contribution.

Automatic generation and enforcement of fine-grained, workload-aware
Kubernetes API security policies from Helm-based operator charts
(Sec. V of the paper):

- :mod:`repro.core.placeholders` -- typed placeholders (``string``,
  ``int``, ``bool``, ``IP``, ``quantity``, ``port``) and matching.
- :mod:`repro.core.security` -- the best-practice lock catalog
  (Pod Security Standards constants, trusted-image pinning).
- :mod:`repro.core.schema_gen` -- values-schema generation (phase 1,
  Fig. 7): placeholder substitution, enum extraction, security locks.
- :mod:`repro.core.explorer` -- configuration-space exploration
  (phase 2): values variants covering every enumerative option.
- :mod:`repro.core.renderer` -- variant rendering through the Helm
  engine (phase 3) with placeholder-propagating arithmetic.
- :mod:`repro.core.validator_gen` -- validator consolidation
  (phase 4, Fig. 8): per-kind tree merge, enum union, lock overlay.
- :mod:`repro.core.enforcement` -- hierarchical request validation
  against a validator (Sec. V-B).
- :mod:`repro.core.proxy` -- the enforcement proxy (complete
  mediation between clients and the API server).
- :mod:`repro.core.pipeline` -- ``generate_policy``: one call from
  chart to enforceable validator.
"""

from repro.core.enforcement import ValidationResult, Validator
from repro.core.pipeline import PolicyGenerator, generate_policy
from repro.core.proxy import KubeFenceProxy

__all__ = [
    "KubeFenceProxy",
    "PolicyGenerator",
    "ValidationResult",
    "Validator",
    "generate_policy",
]
