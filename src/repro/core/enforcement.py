"""Hierarchical validation of API requests against a validator (Sec. V-B).

The validation is a tree overlap between the incoming manifest and the
policy validator:

1. the ``kind`` must be present in the validator (operators only get
   the resource types their charts define);
2. only fields explicitly defined in the validator may appear
   (unknown fields -- e.g. ``hostNetwork``, ``subPath``,
   ``externalIPs`` for charts that never use them -- are denied);
3. every field value must match the validator: by type for placeholder
   fields, by pattern for strings embedding placeholders, by
   membership for enum unions, by equality for constants;
4. ``required`` security locks must be satisfied (e.g. every container
   must declare ``resources.limits``).

Server-managed metadata (``resourceVersion``, ``uid``, ...) and the
``status`` subtree are ignored: they are written by the control plane,
not chosen by the client.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import yaml

from repro.core import placeholders
from repro.core.security import SCOPE_CONTAINER, SCOPE_SERVICE, SecurityLock
from repro.k8s.gvk import registry
from repro.yamlutil import get_path

#: Metadata keys the server manages; clients cannot abuse them and
#: legitimate updates carry them back, so they are not validated.
SERVER_MANAGED_METADATA = frozenset(
    {"resourceVersion", "uid", "creationTimestamp", "generation", "managedFields", "selfLink"}
)

#: Maximum nesting depth accepted in a manifest.  Real manifests stay
#: under ~30 levels; a crafted deeply-nested body must be rejected, not
#: allowed to exhaust the recursion stack (a billion-laughs-style DoS
#: against the proxy itself, cf. CVE-2019-11253).
MAX_VALIDATION_DEPTH = 100


def compile_enabled() -> bool:
    """Whether ``Validator.validate`` routes through the compiled
    engine (default on; ``REPRO_NO_COMPILE=1`` is the escape hatch)."""
    return not os.environ.get("REPRO_NO_COMPILE")


@dataclass(frozen=True)
class Violation:
    """One reason a request was denied."""

    path: str
    reason: str
    value: Any = None

    def __str__(self) -> str:
        return f"{self.path}: {self.reason}"


@dataclass
class ValidationResult:
    """Outcome of validating one manifest."""

    allowed: bool
    violations: list[Violation] = field(default_factory=list)

    def summary(self) -> str:
        if self.allowed:
            return "allowed"
        return "denied: " + "; ".join(str(v) for v in self.violations[:5])


@dataclass
class Validator:
    """A workload-tailored security policy: the allowed-configuration
    trees per kind, plus the security-lock rules."""

    operator: str
    kinds: dict[str, dict[str, Any]]
    locks: list[SecurityLock] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    #: Bumped whenever the policy content changes (``invalidate_compiled``
    #: or ``install``-style replacement); decision caches key on it.
    policy_revision: int = field(default=0, init=False, repr=False, compare=False)
    _compiled_engine: Any = field(default=None, init=False, repr=False, compare=False)

    # -- validation --------------------------------------------------------

    def validate(self, manifest: dict[str, Any]) -> ValidationResult:
        """Validate one manifest; never raises.

        Routes through the compiled engine (one-time compilation,
        memoized pattern matching, lazy violation paths) unless the
        ``REPRO_NO_COMPILE`` environment variable is set, in which case
        the interpreted tree-walk below runs instead.  Both engines are
        outcome- and violation-identical (see
        ``tests/core/test_compiled.py``).
        """
        if compile_enabled():
            return self.compiled().validate(manifest)
        return self.validate_interpreted(manifest)

    def compiled(self) -> Any:
        """The compiled form of this policy, built on first use.

        Mutating ``kinds``/``locks`` after compilation requires calling
        :meth:`invalidate_compiled` to rebuild (and to invalidate any
        proxy decision caches keyed on :attr:`policy_revision`).
        """
        engine = self._compiled_engine
        if engine is None:
            from repro.core.compiled import compile_validator

            engine = compile_validator(self)
            self._compiled_engine = engine
        return engine

    def invalidate_compiled(self) -> None:
        """Drop the compiled engine and bump :attr:`policy_revision`
        (call after mutating the policy in place)."""
        self._compiled_engine = None
        self.policy_revision += 1

    def validate_interpreted(self, manifest: dict[str, Any]) -> ValidationResult:
        """The reference interpreted tree-walk (parity baseline)."""
        violations: list[Violation] = []
        kind = manifest.get("kind")
        if not isinstance(kind, str) or not kind:
            return ValidationResult(False, [Violation("kind", "missing kind")])
        allowed_tree = self.kinds.get(kind)
        if allowed_tree is None:
            return ValidationResult(
                False,
                [Violation("kind", f"resource kind {kind!r} is not used by this workload")],
            )
        self._match_dict(manifest, allowed_tree, kind, violations, is_root=True)
        self._check_required(manifest, kind, violations)
        return ValidationResult(not violations, violations)

    def _match_node(
        self,
        value: Any,
        allowed: Any,
        path: str,
        violations: list[Violation],
        depth: int = 0,
    ) -> None:
        if depth > MAX_VALIDATION_DEPTH:
            violations.append(
                Violation(path, f"manifest exceeds maximum depth {MAX_VALIDATION_DEPTH}")
            )
            return
        if isinstance(allowed, dict):
            if isinstance(value, dict):
                self._match_dict(value, allowed, path, violations, depth=depth)
            else:
                violations.append(Violation(path, "expected an object", value))
            return
        if isinstance(allowed, list):
            self._match_list(value, allowed, path, violations, depth=depth)
            return
        if not placeholders.matches(value, allowed):
            violations.append(
                Violation(
                    path,
                    f"value {value!r} not allowed (expected {placeholders.to_paper_form(str(allowed)) if isinstance(allowed, str) else allowed!r})",
                    value,
                )
            )

    def _match_dict(
        self,
        value: dict[str, Any],
        allowed: dict[str, Any],
        path: str,
        violations: list[Violation],
        is_root: bool = False,
        depth: int = 0,
    ) -> None:
        for key, child in value.items():
            if is_root and key == "status":
                continue
            if path.endswith("metadata") and key in SERVER_MANAGED_METADATA:
                continue
            if key not in allowed:
                violations.append(
                    Violation(f"{path}.{key}", "field not allowed by workload policy", child)
                )
                continue
            self._match_node(child, allowed[key], f"{path}.{key}", violations, depth + 1)

    def _match_list(
        self,
        value: Any,
        allowed: list,
        path: str,
        violations: list[Violation],
        depth: int = 0,
    ) -> None:
        elements = value if isinstance(value, list) else [value]
        positions = (
            [f"{path}[{i}]" for i in range(len(elements))]
            if isinstance(value, list)
            else [path]
        )
        for element, position in zip(elements, positions):
            if any(
                self._matches_quietly(element, candidate, depth + 1)
                for candidate in allowed
            ):
                continue
            # For named elements (containers, ports, env), align with the
            # same-named candidate to report the exact offending field.
            named = self._named_candidate(element, allowed)
            if named is not None:
                self._match_node(element, named, position, violations, depth + 1)
            else:
                violations.append(
                    Violation(position, "no allowed configuration matches this entry", element)
                )

    @staticmethod
    def _named_candidate(element: Any, allowed: list) -> Any:
        if not isinstance(element, dict) or "name" not in element:
            return None
        matches = [
            candidate
            for candidate in allowed
            if isinstance(candidate, dict)
            and placeholders.matches(element["name"], candidate.get("name"))
        ]
        return matches[0] if len(matches) == 1 else None

    def _matches_quietly(self, value: Any, allowed: Any, depth: int = 0) -> bool:
        probe: list[Violation] = []
        self._match_node(value, allowed, "", probe, depth)
        return not probe

    def _check_required(self, manifest: dict[str, Any], kind: str, violations: list[Violation]) -> None:
        required_container = [
            lock for lock in self.locks if lock.mode == "required" and lock.scope == SCOPE_CONTAINER
        ]
        required_service = [
            lock for lock in self.locks if lock.mode == "required" and lock.scope == SCOPE_SERVICE
        ]
        if required_container and kind in registry:
            pod_path = registry.by_kind(kind).pod_spec_path
            if pod_path is not None:
                pod_spec = get_path(manifest, pod_path, None)
                if isinstance(pod_spec, dict):
                    for group in ("containers", "initContainers"):
                        for i, container in enumerate(pod_spec.get(group) or []):
                            if not isinstance(container, dict):
                                continue
                            for lock in required_container:
                                present = get_path(container, lock.path, None)
                                if not present:
                                    violations.append(
                                        Violation(
                                            f"{pod_path}.{group}[{i}].{lock.path}",
                                            f"required by security policy: {lock.rationale}",
                                        )
                                    )
        if required_service and kind == "Service":
            for lock in required_service:
                if not get_path(manifest, f"spec.{lock.path}", None):
                    violations.append(
                        Violation(f"spec.{lock.path}", f"required by security policy: {lock.rationale}")
                    )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "apiVersion": "kubefence.io/v1",
            "kind": "Validator",
            "operator": self.operator,
            "meta": dict(self.meta),
            "locks": [lock.to_dict() for lock in self.locks],
            "kinds": _paperize(self.kinds),
        }

    def to_yaml(self) -> str:
        return yaml.safe_dump(self.to_dict(), sort_keys=False, allow_unicode=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Validator":
        return cls(
            operator=data.get("operator", ""),
            kinds=data.get("kinds", {}),
            locks=[SecurityLock.from_dict(d) for d in data.get("locks", [])],
            meta=data.get("meta", {}),
        )

    @classmethod
    def from_yaml(cls, text: str) -> "Validator":
        return cls.from_dict(yaml.safe_load(text))

    # -- analysis helpers ----------------------------------------------------

    def allowed_field_paths(self, kind: str) -> set[tuple[str, ...]]:
        """The set of schema field paths (list indexes stripped) this
        validator allows for *kind* -- the attack-surface measure."""
        tree = self.kinds.get(kind)
        if tree is None:
            return set()
        out: set[tuple[str, ...]] = set()

        def walk(node: Any, prefix: tuple[str, ...]) -> None:
            if isinstance(node, dict):
                for key, child in node.items():
                    out.add(prefix + (key,))
                    walk(child, prefix + (key,))
            elif isinstance(node, list):
                for child in node:
                    walk(child, prefix)

        walk(tree, ())
        return out


def _paperize(node: Any) -> Any:
    """Serialize placeholders in paper form where whole-value."""
    if isinstance(node, dict):
        return {k: _paperize(v) for k, v in node.items()}
    if isinstance(node, list):
        return [_paperize(v) for v in node]
    if isinstance(node, str):
        return placeholders.to_paper_form(node)
    return node
