"""Tokenizer for the Go-template subset used by Helm charts.

Two levels of lexing:

1. :func:`split_actions` cuts raw template text into TEXT chunks and
   ACTION chunks (the ``{{ ... }}`` blocks), honouring the whitespace
   trim markers ``{{-`` and ``-}}`` and stripping ``{{/* comments */}}``.
2. :func:`tokenize_action` lexes the inside of one action into the
   tokens the parser consumes (fields, variables, strings, numbers,
   pipes, parentheses, declarations).
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class TemplateSyntaxError(Exception):
    """Malformed template text."""


@dataclass(frozen=True)
class Chunk:
    """A piece of the template: literal text or one action."""

    kind: str  # "text" | "action"
    value: str
    line: int = 0


_ACTION_RE = re.compile(r"\{\{(-)?\s*(.*?)\s*(-)?\}\}", re.S)


def split_actions(source: str) -> list[Chunk]:
    """Split template source into text and action chunks.

    ``{{-`` trims whitespace (including the preceding newline) from the
    text before the action; ``-}}`` trims whitespace after it --
    exactly Go's text/template semantics.
    """
    chunks: list[Chunk] = []
    pos = 0
    pending_rtrim = False
    for match in _ACTION_RE.finditer(source):
        text = source[pos : match.start()]
        if match.group(1):  # {{- : trim trailing whitespace of preceding text
            text = text.rstrip(" \t\r\n")
        if pending_rtrim:
            text = text.lstrip(" \t\r\n")
        if text:
            line = source.count("\n", 0, pos) + 1
            chunks.append(Chunk("text", text, line))
        body = match.group(2)
        if not (body.startswith("/*") and body.endswith("*/")):
            line = source.count("\n", 0, match.start()) + 1
            chunks.append(Chunk("action", body, line))
        pending_rtrim = bool(match.group(3))
        pos = match.end()
    tail = source[pos:]
    if pending_rtrim:
        tail = tail.lstrip(" \t\r\n")
    if tail:
        chunks.append(Chunk("text", tail, source.count("\n", 0, pos) + 1))
    # Catch unbalanced delimiters: any stray "{{" or "}}" left in text.
    for chunk in chunks:
        if chunk.kind == "text" and ("{{" in chunk.value or "}}" in chunk.value):
            raise TemplateSyntaxError(
                f"unbalanced template delimiter near line {chunk.line}"
            )
    return chunks


@dataclass(frozen=True)
class Token:
    kind: str
    value: str


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:\\.|[^"\\])*"|'(?:\\.|[^'\\])*'|`[^`]*`)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<declare>:=)
  | (?P<assign>=)
  | (?P<pipe>\|)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<var>\$[A-Za-z_][A-Za-z0-9_]*|\$)
  | (?P<field>\.[A-Za-z_][A-Za-z0-9_.\-]*|\.)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.X,
)


def tokenize_action(body: str) -> list[Token]:
    """Lex the inside of one ``{{ ... }}`` action."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(body):
        match = _TOKEN_RE.match(body, pos)
        if match is None:
            raise TemplateSyntaxError(f"cannot tokenize action at: {body[pos:pos+20]!r}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(Token(kind, match.group()))
    return tokens
