"""The template renderer.

Walks the AST produced by :mod:`repro.helm.parser` with a rendering
context (dot value, variable scopes, named defines, function map) and
produces output text.  Implements Go/Helm semantics for missing fields
(resolve to ``nil``, render as empty), truthiness, ``range`` over lists
and maps, variable scoping, and the ``include``/``tpl`` functions.
"""

from __future__ import annotations

from typing import Any

from repro.helm.functions import TemplateRuntimeError, build_function_map, is_truthy, _go_str
from repro.helm.lexer import TemplateSyntaxError
from repro.helm.parser import (
    AssignNode,
    DefineNode,
    FieldRef,
    FuncCall,
    IfNode,
    Literal,
    Node,
    OutputNode,
    Pipeline,
    RangeNode,
    TemplateCallNode,
    TextNode,
    WithNode,
    _BlockNode,
    parse_template,
)


class TemplateError(Exception):
    """Any rendering failure, with template name context."""


class _Scope:
    """A chain of variable scopes.  ``$`` always resolves to the root
    context; assignments with ``:=`` create in the innermost scope,
    ``=`` updates the nearest existing binding."""

    def __init__(self, root: Any):
        self.frames: list[dict[str, Any]] = [{"$": root}]

    def push(self) -> None:
        self.frames.append({})

    def pop(self) -> None:
        self.frames.pop()

    def declare(self, name: str, value: Any) -> None:
        self.frames[-1][name] = value

    def assign(self, name: str, value: Any) -> None:
        for frame in reversed(self.frames):
            if name in frame:
                frame[name] = value
                return
        self.frames[-1][name] = value

    def lookup(self, name: str) -> Any:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        raise TemplateError(f"undefined variable {name}")


class Renderer:
    """Renders parsed templates against a context."""

    def __init__(
        self,
        context: dict[str, Any],
        defines: dict[str, list[Node]] | None = None,
    ):
        self.root = context
        self.defines: dict[str, list[Node]] = dict(defines or {})
        self.functions = build_function_map()
        self.functions["include"] = self._include
        self.functions["tpl"] = self._tpl

    # -- public API ---------------------------------------------------------

    def render(self, nodes: list[Node]) -> str:
        self._collect_defines(nodes)
        scope = _Scope(self.root)
        return self._render_nodes(nodes, self.root, scope)

    def _collect_defines(self, nodes: list[Node]) -> None:
        for node in nodes:
            if isinstance(node, DefineNode):
                self.defines[node.name] = node.body
            elif isinstance(node, _BlockNode):
                self.defines[node.define.name] = node.define.body

    # -- node rendering -------------------------------------------------------

    def _render_nodes(self, nodes: list[Node], dot: Any, scope: _Scope) -> str:
        out: list[str] = []
        for node in nodes:
            out.append(self._render_node(node, dot, scope))
        return "".join(out)

    def _render_node(self, node: Node, dot: Any, scope: _Scope) -> str:
        if isinstance(node, TextNode):
            return node.text
        if isinstance(node, OutputNode):
            return _go_str(self._eval_pipeline(node.pipeline, dot, scope))
        if isinstance(node, AssignNode):
            value = self._eval_pipeline(node.pipeline, dot, scope)
            if node.declare:
                scope.declare(node.var, value)
            else:
                scope.assign(node.var, value)
            return ""
        if isinstance(node, IfNode):
            for condition, body in node.branches:
                if is_truthy(self._eval_pipeline(condition, dot, scope)):
                    scope.push()
                    try:
                        return self._render_nodes(body, dot, scope)
                    finally:
                        scope.pop()
            scope.push()
            try:
                return self._render_nodes(node.else_body, dot, scope)
            finally:
                scope.pop()
        if isinstance(node, RangeNode):
            return self._render_range(node, dot, scope)
        if isinstance(node, WithNode):
            value = self._eval_pipeline(node.pipeline, dot, scope)
            scope.push()
            try:
                if is_truthy(value):
                    return self._render_nodes(node.body, value, scope)
                return self._render_nodes(node.else_body, dot, scope)
            finally:
                scope.pop()
        if isinstance(node, DefineNode):
            return ""  # registered in _collect_defines
        if isinstance(node, _BlockNode):
            return self._invoke_define(node.define.name, dot)
        if isinstance(node, TemplateCallNode):
            context = (
                self._eval_pipeline(node.context, dot, scope)
                if node.context is not None
                else None
            )
            return self._invoke_define(node.name, context)
        raise TemplateError(f"unrenderable node: {type(node).__name__}")

    def _render_range(self, node: RangeNode, dot: Any, scope: _Scope) -> str:
        value = self._eval_pipeline(node.pipeline, dot, scope)
        items: list[tuple[Any, Any]]
        if isinstance(value, dict):
            items = [(k, value[k]) for k in sorted(value, key=str)]
        elif isinstance(value, (list, tuple)):
            items = list(enumerate(value))
        elif isinstance(value, int) and not isinstance(value, bool):
            items = list(enumerate(range(value)))
        elif value is None:
            items = []
        else:
            raise TemplateError(f"cannot range over {type(value).__name__}")
        if not items:
            scope.push()
            try:
                return self._render_nodes(node.else_body, dot, scope)
            finally:
                scope.pop()
        out: list[str] = []
        for key, item in items:
            scope.push()
            try:
                if node.index_var:
                    scope.declare(node.index_var, key)
                if node.value_var:
                    scope.declare(node.value_var, item)
                out.append(self._render_nodes(node.body, item, scope))
            finally:
                scope.pop()
        return "".join(out)

    # -- expression evaluation ------------------------------------------------

    def _eval_pipeline(self, pipeline: Pipeline, dot: Any, scope: _Scope) -> Any:
        value: Any = None
        for i, stage in enumerate(pipeline.stages):
            if i == 0:
                value = self._eval_node(stage, dot, scope)
            else:
                value = self._eval_node(stage, dot, scope, piped=value)
        return value

    _NO_PIPE = object()

    def _eval_node(self, node: Node, dot: Any, scope: _Scope, piped: Any = _NO_PIPE) -> Any:
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, FieldRef):
            return self._resolve_field(node, dot, scope)
        if isinstance(node, Pipeline):
            return self._eval_pipeline(node, dot, scope)
        if isinstance(node, FuncCall):
            func = self.functions.get(node.name)
            if func is None:
                raise TemplateError(f"unknown function {node.name!r}")
            args = [self._eval_node(arg, dot, scope) for arg in node.args]
            if piped is not self._NO_PIPE:
                args.append(piped)
            try:
                return func(*args)
            except TemplateRuntimeError:
                raise
            except Exception as exc:
                raise TemplateError(f"error calling {node.name}: {exc}") from exc
        raise TemplateError(f"unevaluable node: {type(node).__name__}")

    def _resolve_field(self, ref: FieldRef, dot: Any, scope: _Scope) -> Any:
        if ref.var is not None:
            base = scope.lookup(ref.var) if ref.var != "$" else scope.lookup("$")
        else:
            base = dot
        node = base
        for part in ref.parts:
            if isinstance(node, dict):
                node = node.get(part)
            elif node is None:
                return None
            else:
                # attribute access on non-dict: missing -> nil
                node = getattr(node, part, None)
        return node

    # -- engine functions -----------------------------------------------------

    def _include(self, name: str, context: Any = None) -> str:
        return self._invoke_define(name, context)

    def _invoke_define(self, name: str, context: Any) -> str:
        body = self.defines.get(name)
        if body is None:
            raise TemplateError(f"no template named {name!r}")
        scope = _Scope(self.root)
        return self._render_nodes(body, context, scope)

    def _tpl(self, source: str, context: Any = None) -> str:
        nodes = parse_template(str(source))
        self._collect_defines(nodes)
        scope = _Scope(self.root)
        return self._render_nodes(nodes, context if context is not None else self.root, scope)


def render_template(
    source: str,
    context: dict[str, Any],
    helpers: str | None = None,
    name: str = "<template>",
) -> str:
    """Render one template string against *context*.

    *helpers* is an optional ``_helpers.tpl`` source whose defines are
    made available (as in a chart's ``templates/`` directory).
    """
    try:
        renderer = Renderer(context)
        if helpers:
            renderer._collect_defines(parse_template(helpers))
        return renderer.render(parse_template(source))
    except (TemplateSyntaxError, TemplateRuntimeError, TemplateError) as exc:
        raise TemplateError(f"{name}: {exc}") from exc
