"""Parser producing the template AST.

Grammar (Go text/template subset used by real-world Helm charts)::

    template  := (TEXT | action)*
    action    := '{{' stmt '}}'
    stmt      := 'if' pipeline | 'else if' pipeline | 'else' | 'end'
               | 'range' [VAR [',' VAR] ':='] pipeline
               | 'with' pipeline
               | 'define' STRING
               | 'template' STRING [pipeline]
               | VAR (':=' | '=') pipeline
               | pipeline
    pipeline  := command ('|' command)*
    command   := operand operand*        # IDENT head -> function call
    operand   := FIELD | VAR FIELD? | STRING | NUMBER | '(' pipeline ')'
               | IDENT                   # niladic function / true / false

Block statements (if/range/with/define) consume chunks until their
matching ``end``, yielding a proper tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.helm.lexer import Chunk, TemplateSyntaxError, Token, split_actions, tokenize_action

# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------


@dataclass
class Node:
    pass


@dataclass
class TextNode(Node):
    text: str


@dataclass
class FieldRef(Node):
    """``.a.b.c`` relative to dot, or ``$var.a.b`` relative to a variable.
    ``var`` of "$" means the root context."""

    parts: tuple[str, ...]
    var: str | None = None  # None -> relative to dot


@dataclass
class Literal(Node):
    value: Any


@dataclass
class FuncCall(Node):
    name: str
    args: list[Node] = field(default_factory=list)


@dataclass
class Pipeline(Node):
    """A chain of commands; each stage receives the previous stage's
    result as its final argument."""

    stages: list[Node] = field(default_factory=list)


@dataclass
class OutputNode(Node):
    """``{{ pipeline }}`` -- evaluate and write to output."""

    pipeline: Pipeline


@dataclass
class IfNode(Node):
    """if / else-if chain with optional else."""

    branches: list[tuple[Pipeline, list[Node]]] = field(default_factory=list)
    else_body: list[Node] = field(default_factory=list)


@dataclass
class RangeNode(Node):
    pipeline: Pipeline
    body: list[Node] = field(default_factory=list)
    else_body: list[Node] = field(default_factory=list)
    index_var: str | None = None
    value_var: str | None = None


@dataclass
class WithNode(Node):
    pipeline: Pipeline
    body: list[Node] = field(default_factory=list)
    else_body: list[Node] = field(default_factory=list)


@dataclass
class DefineNode(Node):
    name: str
    body: list[Node] = field(default_factory=list)


@dataclass
class TemplateCallNode(Node):
    """``{{ template "name" ctx }}`` (statement form of include)."""

    name: str
    context: Pipeline | None = None


@dataclass
class AssignNode(Node):
    var: str
    pipeline: Pipeline
    declare: bool = True  # := vs =


# ---------------------------------------------------------------------------
# Pipeline parsing
# ---------------------------------------------------------------------------


class _TokenStream:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise TemplateSyntaxError("unexpected end of action")
        self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise TemplateSyntaxError(f"expected {kind}, got {token.kind} {token.value!r}")
        return token

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


def _unquote(raw: str) -> str:
    if raw.startswith("`"):
        return raw[1:-1]
    body = raw[1:-1]
    return (
        body.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\'", "'")
        .replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\x00", "\\")
    )


def _parse_operand(stream: _TokenStream) -> Node:
    token = stream.next()
    if token.kind == "field":
        parts = tuple(p for p in token.value.split(".") if p)
        return FieldRef(parts)
    if token.kind == "var":
        nxt = stream.peek()
        if nxt is not None and nxt.kind == "field":
            stream.next()
            parts = tuple(p for p in nxt.value.split(".") if p)
            return FieldRef(parts, var=token.value)
        return FieldRef((), var=token.value)
    if token.kind == "string":
        return Literal(_unquote(token.value))
    if token.kind == "number":
        text = token.value
        return Literal(float(text) if "." in text else int(text))
    if token.kind == "lparen":
        pipeline = _parse_pipeline(stream, stop_at_rparen=True)
        stream.expect("rparen")
        return pipeline
    if token.kind == "ident":
        if token.value == "true":
            return Literal(True)
        if token.value == "false":
            return Literal(False)
        if token.value in ("nil", "null"):
            return Literal(None)
        return FuncCall(token.value)  # niladic in operand position
    raise TemplateSyntaxError(f"unexpected token {token.kind} {token.value!r}")


def _parse_command(stream: _TokenStream) -> Node:
    first = stream.peek()
    if first is None:
        raise TemplateSyntaxError("empty command")
    # A function call: identifier head (not a literal keyword).
    if first.kind == "ident" and first.value not in ("true", "false", "nil", "null"):
        stream.next()
        call = FuncCall(first.value)
        while not stream.exhausted and stream.peek().kind not in ("pipe", "rparen"):
            call.args.append(_parse_operand(stream))
        return call
    operand = _parse_operand(stream)
    # Allow juxtaposed args after a parenthesized head (rare); reject
    # stray tokens otherwise for clearer error messages.
    if not stream.exhausted and stream.peek().kind not in ("pipe", "rparen"):
        raise TemplateSyntaxError(
            f"unexpected token after operand: {stream.peek().value!r}"
        )
    return operand


def _parse_pipeline(stream: _TokenStream, stop_at_rparen: bool = False) -> Pipeline:
    pipeline = Pipeline()
    pipeline.stages.append(_parse_command(stream))
    while not stream.exhausted:
        token = stream.peek()
        if token.kind == "rparen":
            if stop_at_rparen:
                break
            raise TemplateSyntaxError("unbalanced ')'")
        if token.kind == "pipe":
            stream.next()
            pipeline.stages.append(_parse_command(stream))
            continue
        break
    return pipeline


def parse_pipeline_text(text: str) -> Pipeline:
    """Parse a standalone pipeline (used by tests and ``tpl``)."""
    stream = _TokenStream(tokenize_action(text))
    pipeline = _parse_pipeline(stream)
    if not stream.exhausted:
        raise TemplateSyntaxError(f"trailing tokens in pipeline: {text!r}")
    return pipeline


# ---------------------------------------------------------------------------
# Statement-level parsing
# ---------------------------------------------------------------------------


def _classify(body: str) -> tuple[str, str]:
    """Split an action body into (keyword, rest)."""
    stripped = body.strip()
    for keyword in ("else if", "if", "else", "end", "range", "with", "define", "template", "block"):
        if stripped == keyword or stripped.startswith(keyword + " "):
            return keyword, stripped[len(keyword):].strip()
    return "", stripped


class _ChunkParser:
    def __init__(self, chunks: list[Chunk]):
        self.chunks = chunks
        self.pos = 0

    def parse_nodes(self, until: tuple[str, ...] = ()) -> tuple[list[Node], str, str]:
        """Parse until one of the *until* keywords (at this nesting
        level) or end of input.  Returns (nodes, stop_keyword, rest)."""
        nodes: list[Node] = []
        while self.pos < len(self.chunks):
            chunk = self.chunks[self.pos]
            if chunk.kind == "text":
                nodes.append(TextNode(chunk.value))
                self.pos += 1
                continue
            keyword, rest = _classify(chunk.value)
            if keyword in until:
                self.pos += 1
                return nodes, keyword, rest
            self.pos += 1
            nodes.append(self._parse_action(keyword, rest, chunk))
        if until:
            raise TemplateSyntaxError(f"missing {'/'.join(until)} before end of template")
        return nodes, "", ""

    def _parse_action(self, keyword: str, rest: str, chunk: Chunk) -> Node:
        if keyword == "if":
            return self._parse_if(rest)
        if keyword == "range":
            return self._parse_range(rest)
        if keyword == "with":
            return self._parse_with(rest)
        if keyword in ("define", "block"):
            return self._parse_define(rest, is_block=keyword == "block")
        if keyword == "template":
            return self._parse_template_call(rest)
        if keyword in ("else", "else if", "end"):
            raise TemplateSyntaxError(f"unexpected {keyword!r} near line {chunk.line}")
        # assignment or output pipeline
        tokens = tokenize_action(rest)
        if (
            len(tokens) >= 2
            and tokens[0].kind == "var"
            and tokens[1].kind in ("declare", "assign")
        ):
            stream = _TokenStream(tokens[2:])
            pipeline = _parse_pipeline(stream)
            if not stream.exhausted:
                raise TemplateSyntaxError(f"trailing tokens in assignment: {rest!r}")
            return AssignNode(tokens[0].value, pipeline, declare=tokens[1].kind == "declare")
        stream = _TokenStream(tokens)
        pipeline = _parse_pipeline(stream)
        if not stream.exhausted:
            raise TemplateSyntaxError(f"trailing tokens in action: {rest!r}")
        return OutputNode(pipeline)

    def _parse_if(self, condition_text: str) -> IfNode:
        node = IfNode()
        condition = parse_pipeline_text(condition_text)
        while True:
            body, stop, rest = self.parse_nodes(until=("else if", "else", "end"))
            node.branches.append((condition, body))
            if stop == "end":
                return node
            if stop == "else if":
                condition = parse_pipeline_text(rest)
                continue
            # plain else
            node.else_body, stop, _ = self.parse_nodes(until=("end",))
            return node

    def _parse_range(self, header: str) -> RangeNode:
        tokens = tokenize_action(header)
        index_var = value_var = None
        if tokens and tokens[0].kind == "var":
            if len(tokens) > 2 and tokens[1].kind == "comma" and tokens[2].kind == "var":
                if len(tokens) > 3 and tokens[3].kind == "declare":
                    index_var, value_var = tokens[0].value, tokens[2].value
                    tokens = tokens[4:]
            elif len(tokens) > 1 and tokens[1].kind == "declare":
                value_var = tokens[0].value
                tokens = tokens[2:]
        stream = _TokenStream(tokens)
        pipeline = _parse_pipeline(stream)
        if not stream.exhausted:
            raise TemplateSyntaxError(f"trailing tokens in range: {header!r}")
        node = RangeNode(pipeline, index_var=index_var, value_var=value_var)
        node.body, stop, _ = self.parse_nodes(until=("else", "end"))
        if stop == "else":
            node.else_body, _, _ = self.parse_nodes(until=("end",))
        return node

    def _parse_with(self, header: str) -> WithNode:
        node = WithNode(parse_pipeline_text(header))
        node.body, stop, _ = self.parse_nodes(until=("else", "end"))
        if stop == "else":
            node.else_body, _, _ = self.parse_nodes(until=("end",))
        return node

    def _parse_define(self, header: str, is_block: bool = False) -> Node:
        tokens = tokenize_action(header)
        if not tokens or tokens[0].kind != "string":
            raise TemplateSyntaxError(f"define/block needs a quoted name: {header!r}")
        name = _unquote(tokens[0].value)
        body, _, _ = self.parse_nodes(until=("end",))
        define = DefineNode(name, body)
        if is_block:
            # block = define + immediate template call with dot.
            return _BlockNode(define)
        return define

    def _parse_template_call(self, header: str) -> TemplateCallNode:
        tokens = tokenize_action(header)
        if not tokens or tokens[0].kind != "string":
            raise TemplateSyntaxError(f"template needs a quoted name: {header!r}")
        name = _unquote(tokens[0].value)
        context = None
        if len(tokens) > 1:
            stream = _TokenStream(tokens[1:])
            context = _parse_pipeline(stream)
        return TemplateCallNode(name, context)


@dataclass
class _BlockNode(Node):
    define: DefineNode


def parse_template(source: str) -> list[Node]:
    """Parse template source into an AST node list."""
    parser = _ChunkParser(split_actions(source))
    nodes, _, _ = parser.parse_nodes()
    return nodes
