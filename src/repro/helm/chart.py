"""Helm charts: metadata + values + templates, and chart rendering.

A :class:`Chart` bundles what a chart directory holds -- ``Chart.yaml``
metadata, a default ``values.yaml`` (kept both as text, because enum
annotations live in comments, and parsed), a ``templates/`` map, and an
optional ``_helpers.tpl``.  :func:`render_chart` is the ``helm
template`` equivalent: merge values with overrides, render every
template, split multi-document outputs, and parse them into manifest
dicts.

Enum annotations: KubeFence (Sec. V-A) extracts the valid options of
enumerative fields "from annotations in the values file".  We use the
convention::

    arch: standalone  # @enum: standalone, replication

on the line of the annotated value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import yaml

from repro.helm.engine import Renderer, TemplateError
from repro.helm.parser import parse_template
from repro.yamlutil import deep_merge

#: values.yaml comment annotation: ``key: value  # @enum: a, b, c``
_ENUM_ANNOTATION_RE = re.compile(
    r"^(?P<indent>\s*)(?P<key>[A-Za-z0-9_.-]+)\s*:.*?#\s*@enum:\s*(?P<options>.+)$"
)


@dataclass
class Chart:
    """An in-memory Helm chart (optionally with subchart dependencies)."""

    name: str
    version: str = "1.0.0"
    app_version: str = "1.0.0"
    description: str = ""
    values_text: str = ""
    templates: dict[str, str] = field(default_factory=dict)
    helpers: str = ""
    #: Subcharts keyed by dependency name.  A subchart's values live
    #: under that key in the parent values (Helm convention), plus the
    #: shared ``global`` subtree.
    dependencies: dict[str, "Chart"] = field(default_factory=dict)
    #: Optional enable conditions per dependency: a dotted path into
    #: the parent values (Helm's ``condition:`` field); a falsy value
    #: skips rendering that subchart.
    dependency_conditions: dict[str, str] = field(default_factory=dict)

    @property
    def values(self) -> dict[str, Any]:
        """The parsed default values."""
        return yaml.safe_load(self.values_text) or {}

    def enum_annotations(self) -> dict[str, list[str]]:
        """Extract ``# @enum:`` annotations from the values file.

        Returns dotted value-path -> list of valid options.  Paths are
        reconstructed from YAML indentation, which is sufficient for
        the block-style values files used by charts.
        """
        annotations: dict[str, list[str]] = {}
        stack: list[tuple[int, str]] = []  # (indent, key)
        for line in self.values_text.split("\n"):
            stripped = line.split("#", 1)[0].rstrip()
            key_match = re.match(r"^(\s*)([A-Za-z0-9_.-]+)\s*:", stripped)
            if key_match:
                indent = len(key_match.group(1))
                key = key_match.group(2)
                while stack and stack[-1][0] >= indent:
                    stack.pop()
                stack.append((indent, key))
            enum_match = _ENUM_ANNOTATION_RE.match(line)
            if enum_match:
                path = ".".join(k for _, k in stack)
                options = [opt.strip() for opt in enum_match.group("options").split(",")]
                annotations[path] = [opt for opt in options if opt]
        return annotations

    @classmethod
    def from_directory(cls, path: str | Path) -> "Chart":
        """Load a chart from a standard chart directory layout."""
        root = Path(path)
        meta = yaml.safe_load((root / "Chart.yaml").read_text()) or {}
        values_text = ""
        values_file = root / "values.yaml"
        if values_file.exists():
            values_text = values_file.read_text()
        templates: dict[str, str] = {}
        helpers = ""
        tdir = root / "templates"
        if tdir.is_dir():
            for tfile in sorted(tdir.iterdir()):
                if tfile.name == "_helpers.tpl":
                    helpers = tfile.read_text()
                elif tfile.suffix in (".yaml", ".yml", ".tpl"):
                    templates[tfile.name] = tfile.read_text()
        # Subcharts live in charts/<name>/ (the `helm dependency build`
        # layout); conditions come from Chart.yaml's dependencies list.
        dependencies: dict[str, Chart] = {}
        conditions: dict[str, str] = {}
        charts_dir = root / "charts"
        if charts_dir.is_dir():
            for sub in sorted(charts_dir.iterdir()):
                if (sub / "Chart.yaml").exists():
                    dependencies[sub.name] = cls.from_directory(sub)
        for dep in meta.get("dependencies", []) or []:
            if isinstance(dep, dict) and dep.get("condition") and dep.get("name"):
                conditions[dep["name"]] = dep["condition"]
        return cls(
            name=meta.get("name", root.name),
            version=str(meta.get("version", "1.0.0")),
            app_version=str(meta.get("appVersion", "1.0.0")),
            description=meta.get("description", ""),
            values_text=values_text,
            templates=templates,
            helpers=helpers,
            dependencies=dependencies,
            dependency_conditions=conditions,
        )

    def to_directory(self, path: str | Path) -> Path:
        """Write the chart out as a standard chart directory."""
        root = Path(path) / self.name
        (root / "templates").mkdir(parents=True, exist_ok=True)
        meta: dict[str, Any] = {
            "apiVersion": "v2",
            "name": self.name,
            "version": self.version,
            "appVersion": self.app_version,
            "description": self.description,
        }
        if self.dependencies:
            meta["dependencies"] = [
                {
                    "name": dep_name,
                    "version": subchart.version,
                    **(
                        {"condition": self.dependency_conditions[dep_name]}
                        if dep_name in self.dependency_conditions
                        else {}
                    ),
                }
                for dep_name, subchart in self.dependencies.items()
            ]
        (root / "Chart.yaml").write_text(yaml.safe_dump(meta))
        (root / "values.yaml").write_text(self.values_text)
        if self.helpers:
            (root / "templates" / "_helpers.tpl").write_text(self.helpers)
        for fname, source in self.templates.items():
            (root / "templates" / fname).write_text(source)
        for subchart in self.dependencies.values():
            subchart.to_directory(root / "charts")
        return root


def render_chart(
    chart: Chart,
    overrides: dict[str, Any] | None = None,
    release_name: str | None = None,
    namespace: str = "default",
    values: dict[str, Any] | None = None,
    function_overrides: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """``helm template``: render every template and parse manifests.

    *values*, when given, replaces the chart defaults entirely (used by
    KubeFence's variant rendering); otherwise *overrides* are deep-
    merged over the chart defaults, as ``helm install -f`` does.
    *function_overrides* replaces engine functions for this render
    (KubeFence injects placeholder-aware arithmetic).  Returns the
    parsed manifest dicts, skipping empty documents.
    """
    if values is None:
        values = deep_merge(chart.values, overrides or {})
    release_name = release_name or chart.name
    manifests = _render_single(chart, values, release_name, namespace, function_overrides)
    for dep_name, subchart in chart.dependencies.items():
        condition = chart.dependency_conditions.get(dep_name)
        if condition is not None:
            from repro.yamlutil import get_path

            if not get_path(values, condition, None):
                continue
        sub_overrides = values.get(dep_name) if isinstance(values, dict) else None
        sub_values = deep_merge(subchart.values, sub_overrides or {})
        if isinstance(values, dict) and "global" in values:
            sub_values = deep_merge(sub_values, {"global": values["global"]})
        manifests.extend(
            _render_single(
                subchart, sub_values, release_name, namespace, function_overrides
            )
        )
    return manifests


def _render_single(
    chart: Chart,
    values: dict[str, Any],
    release_name: str,
    namespace: str,
    function_overrides: dict[str, Any] | None,
) -> list[dict[str, Any]]:
    context = {
        "Values": values,
        "Release": {
            "Name": release_name,
            "Namespace": namespace,
            "Service": "Helm",
            "IsInstall": True,
            "IsUpgrade": False,
        },
        "Chart": {
            "Name": chart.name,
            "Version": chart.version,
            "AppVersion": chart.app_version,
        },
        "Capabilities": {"KubeVersion": {"Version": "v1.28.6", "Major": "1", "Minor": "28"}},
        "Template": {"Name": "", "BasePath": f"{chart.name}/templates"},
    }
    renderer = Renderer(context)
    if function_overrides:
        renderer.functions.update(function_overrides)
    if chart.helpers:
        renderer._collect_defines(parse_template(chart.helpers))
    manifests: list[dict[str, Any]] = []
    for fname in sorted(chart.templates):
        source = chart.templates[fname]
        context["Template"]["Name"] = f"{chart.name}/templates/{fname}"
        try:
            rendered = renderer.render(parse_template(source))
        except TemplateError as exc:
            raise TemplateError(f"{chart.name}/templates/{fname}: {exc}") from exc
        for document in rendered.split("\n---"):
            if not document.strip():
                continue
            try:
                manifest = yaml.safe_load(document)
            except yaml.YAMLError as exc:
                raise TemplateError(
                    f"{chart.name}/templates/{fname}: rendered invalid YAML: {exc}"
                ) from exc
            if isinstance(manifest, dict) and manifest.get("kind"):
                manifests.append(manifest)
    return manifests
