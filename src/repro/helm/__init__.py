"""A from-scratch Helm template engine (Go-template subset).

KubeFence's policy generation (Sec. V-A) depends on Helm semantics:
conditional blocks, ``range`` loops, value placeholders, ``include``
helpers, and default-values merging with user overrides.  This package
implements that machinery without Helm or Go:

- :mod:`repro.helm.lexer` -- tokenizes template text into literal text
  and ``{{ ... }}`` actions (with ``{{-``/``-}}`` trimming).
- :mod:`repro.helm.parser` -- builds the template AST (if/range/with/
  define/include, pipelines, variables).
- :mod:`repro.helm.functions` -- the sprig-like function library
  (default, quote, toYaml, nindent, eq/and/or, ...).
- :mod:`repro.helm.engine` -- the renderer.
- :mod:`repro.helm.chart` -- charts: templates + values + metadata,
  ``helm template``-equivalent rendering to manifests.
"""

from repro.helm.chart import Chart, render_chart
from repro.helm.engine import TemplateError, render_template

__all__ = ["Chart", "render_chart", "render_template", "TemplateError"]
