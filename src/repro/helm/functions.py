"""The template function library (Go builtins + the sprig subset that
real-world Helm charts rely on).

Functions receive *evaluated* arguments.  Pipeline semantics append
the piped value as the final argument, so sprig's argument order works
naturally: ``{{ .Values.tag | default "latest" }}`` evaluates
``default("latest", tag)``.
"""

from __future__ import annotations

import base64
import re
from typing import Any, Callable

import yaml


class TemplateRuntimeError(Exception):
    """Raised by ``required``/``fail`` and on bad function usage."""


def is_truthy(value: Any) -> bool:
    """Go-template truthiness: nil, false, 0, "", and empty
    collections are false."""
    if value is None or value is False:
        return False
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value != 0
    if isinstance(value, (str, list, dict, tuple)):
        return len(value) > 0
    return True


def to_yaml(value: Any) -> str:
    """Render a value as YAML (sprig ``toYaml``): block style, no
    trailing newline."""
    if value is None:
        return ""
    text = yaml.safe_dump(value, default_flow_style=False, sort_keys=False)
    return text.rstrip("\n")


def _indent(n: Any, text: Any) -> str:
    pad = " " * int(n)
    return "\n".join(pad + line if line else line for line in str(text).split("\n"))


def _nindent(n: Any, text: Any) -> str:
    return "\n" + _indent(n, text)


_PRINTF_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?[sdvfqtxXeEgGbco%]")


def _printf(fmt: str, *args: Any) -> str:
    """Go fmt.Sprintf subset: %s %d %v %q %f and friends."""
    out: list[str] = []
    arg_iter = iter(args)
    pos = 0
    for match in _PRINTF_RE.finditer(fmt):
        out.append(fmt[pos : match.start()])
        spec = match.group()
        pos = match.end()
        if spec.endswith("%"):
            out.append("%")
            continue
        value = next(arg_iter, "")
        verb = spec[-1]
        if verb == "v":
            out.append(_go_str(value))
        elif verb == "q":
            out.append('"' + str(value).replace('"', '\\"') + '"')
        elif verb == "t":
            out.append("true" if is_truthy(value) else "false")
        else:
            try:
                out.append(spec % value)
            except (TypeError, ValueError):
                out.append(_go_str(value))
    out.append(fmt[pos:])
    return "".join(out)


def _go_str(value: Any) -> str:
    """Render a value the way template output does."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _default(default_value: Any, value: Any = None) -> Any:
    return value if is_truthy(value) else default_value


def _required(message: str, value: Any = None) -> Any:
    if not is_truthy(value):
        raise TemplateRuntimeError(str(message))
    return value


def _fail(message: Any = "") -> Any:
    raise TemplateRuntimeError(str(message))


def _eq(first: Any, *rest: Any) -> bool:
    return any(first == other for other in rest)


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if is_truthy(arg):
            return arg
    return None


def _dict(*pairs: Any) -> dict:
    if len(pairs) % 2 != 0:
        raise TemplateRuntimeError("dict requires an even number of arguments")
    return {str(pairs[i]): pairs[i + 1] for i in range(0, len(pairs), 2)}


def _merge(*dicts: Any) -> dict:
    """sprig merge: left-most wins for conflicting keys."""
    out: dict = {}
    for d in reversed([d for d in dicts if isinstance(d, dict)]):
        out.update(d)
    return out


def _kind_of(value: Any) -> str:
    if value is None:
        return "invalid"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float64"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "slice"
    if isinstance(value, dict):
        return "map"
    return type(value).__name__


def _to_int(value: Any = 0) -> int:
    if isinstance(value, bool):
        return int(value)
    try:
        return int(float(value)) if value not in (None, "") else 0
    except (TypeError, ValueError):
        return 0


def _index(collection: Any, *keys: Any) -> Any:
    node = collection
    for key in keys:
        if isinstance(node, dict):
            node = node.get(key)
        elif isinstance(node, (list, tuple)) and isinstance(key, int):
            node = node[key] if 0 <= key < len(node) else None
        else:
            return None
    return node


def build_function_map() -> dict[str, Callable[..., Any]]:
    """All engine-independent functions.  ``include`` and ``tpl`` are
    added by the engine because they need render state."""
    return {
        # -- flow / comparison (Go builtins) --------------------------------
        "eq": _eq,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
        "and": lambda *a: next((x for x in a if not is_truthy(x)), a[-1] if a else None),
        "or": lambda *a: next((x for x in a if is_truthy(x)), a[-1] if a else None),
        "not": lambda v: not is_truthy(v),
        "len": lambda v: len(v) if isinstance(v, (str, list, dict, tuple)) else 0,
        "index": _index,
        "printf": _printf,
        "print": lambda *a: "".join(_go_str(x) for x in a),
        # -- defaults & validation -----------------------------------------
        "default": _default,
        "required": _required,
        "fail": _fail,
        "empty": lambda v: not is_truthy(v),
        "coalesce": _coalesce,
        "ternary": lambda true_val, false_val, cond: true_val if is_truthy(cond) else false_val,
        # -- strings ---------------------------------------------------------
        "quote": lambda *a: " ".join('"' + _go_str(x).replace('"', '\\"') + '"' for x in a),
        "squote": lambda *a: " ".join("'" + _go_str(x) + "'" for x in a),
        "upper": lambda s: str(s).upper(),
        "lower": lambda s: str(s).lower(),
        "title": lambda s: str(s).title(),
        "trim": lambda s: str(s).strip(),
        "trimSuffix": lambda suffix, s: str(s)[: -len(suffix)] if str(s).endswith(str(suffix)) else str(s),
        "trimPrefix": lambda prefix, s: str(s)[len(prefix):] if str(s).startswith(str(prefix)) else str(s),
        "trunc": lambda n, s: str(s)[: int(n)] if int(n) >= 0 else str(s)[int(n):],
        "replace": lambda old, new, s: str(s).replace(str(old), str(new)),
        "contains": lambda needle, haystack: str(needle) in str(haystack),
        "hasPrefix": lambda prefix, s: str(s).startswith(str(prefix)),
        "hasSuffix": lambda suffix, s: str(s).endswith(str(suffix)),
        "repeat": lambda n, s: str(s) * int(n),
        "indent": _indent,
        "nindent": _nindent,
        "join": lambda sep, seq: str(sep).join(_go_str(x) for x in (seq or [])),
        "splitList": lambda sep, s: str(s).split(str(sep)),
        "toString": _go_str,
        "toYaml": to_yaml,
        "fromYaml": lambda s: yaml.safe_load(s) or {},
        "toJson": lambda v: __import__("json").dumps(v),
        "b64enc": lambda s: base64.b64encode(str(s).encode()).decode(),
        "b64dec": lambda s: base64.b64decode(str(s).encode()).decode(),
        "sha256sum": lambda s: __import__("hashlib").sha256(str(s).encode()).hexdigest(),
        "kebabcase": lambda s: re.sub(r"(?<=[a-z0-9])([A-Z])", r"-\1", str(s)).lower(),
        # -- numbers -----------------------------------------------------------
        "add": lambda *a: sum(_to_int(x) for x in a),
        "add1": lambda v: _to_int(v) + 1,
        "sub": lambda a, b: _to_int(a) - _to_int(b),
        "mul": lambda *a: __import__("math").prod(_to_int(x) for x in a),
        "div": lambda a, b: _to_int(a) // _to_int(b) if _to_int(b) else 0,
        "mod": lambda a, b: _to_int(a) % _to_int(b) if _to_int(b) else 0,
        "max": lambda *a: max(_to_int(x) for x in a),
        "min": lambda *a: min(_to_int(x) for x in a),
        "int": _to_int,
        "int64": _to_int,
        "float64": lambda v: float(v or 0),
        # -- collections -------------------------------------------------------
        "list": lambda *a: list(a),
        "dict": _dict,
        "merge": _merge,
        "first": lambda seq: seq[0] if seq else None,
        "last": lambda seq: seq[-1] if seq else None,
        "rest": lambda seq: list(seq[1:]) if seq else [],
        "uniq": lambda seq: list(dict.fromkeys(seq or [])),
        "sortAlpha": lambda seq: sorted(str(x) for x in (seq or [])),
        "hasKey": lambda mapping, key: isinstance(mapping, dict) and key in mapping,
        "get": lambda mapping, key: mapping.get(key) if isinstance(mapping, dict) else None,
        "keys": lambda *maps: [k for mp in maps if isinstance(mp, dict) for k in mp],
        "values": lambda *maps: [v for mp in maps if isinstance(mp, dict) for v in mp.values()],
        "pluck": lambda key, *maps: [mp[key] for mp in maps if isinstance(mp, dict) and key in mp],
        "append": lambda seq, item: list(seq or []) + [item],
        "concat": lambda *seqs: [x for seq in seqs for x in (seq or [])],
        "until": lambda n: list(range(_to_int(n))),
        "range_list": lambda a, b: list(range(_to_int(a), _to_int(b))),
        # -- type inspection -----------------------------------------------------
        "kindIs": lambda kind, v: _kind_of(v) == kind,
        "kindOf": _kind_of,
        "typeOf": _kind_of,
        "typeIs": lambda kind, v: _kind_of(v) == kind,
        # -- cluster access (no cluster in the offline engine) --------------------
        "lookup": lambda *a: {},
    }
