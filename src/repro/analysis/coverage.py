"""Fig. 5 analysis: e2e tests vs vulnerable code.

The computation lives in :mod:`repro.k8s.e2e` (corpus generation and
coverage cross-referencing); this module provides the evaluation's
summary statistics and the figure-shaped data structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.k8s.e2e import CoverageReport, E2ECorpus, analyze_coverage
from repro.k8s.vulndb import VulnerabilityDatabase, vulndb


@dataclass
class Fig5Data:
    """Everything Fig. 5 shows, plus the in-text statistics."""

    categories: list[str]
    category_sizes: dict[str, int]
    #: Only CVEs with non-zero coverage appear as heatmap rows.
    rows: dict[str, dict[str, int]]
    uncovered_cves: list[str]
    total_tests: int
    covering_tests: int
    covering_excluding_largest: tuple[int, int]

    @property
    def covering_fraction(self) -> float:
        return self.covering_tests / self.total_tests if self.total_tests else 0.0


def fig5_analysis(
    corpus: E2ECorpus | None = None, db: VulnerabilityDatabase | None = None
) -> Fig5Data:
    """Run the full motivation analysis (Sec. III-C)."""
    corpus = corpus if corpus is not None else E2ECorpus()
    db = db if db is not None else vulndb
    report: CoverageReport = analyze_coverage(corpus, db)
    covered = report.cves_with_coverage()
    largest = max(corpus.sizes, key=lambda c: corpus.sizes[c])
    return Fig5Data(
        categories=corpus.categories(),
        category_sizes=dict(corpus.sizes),
        rows={cve: dict(report.heatmap[cve]) for cve in covered},
        uncovered_cves=report.cves_without_coverage(),
        total_tests=report.total_tests,
        covering_tests=report.covering_tests,
        covering_excluding_largest=report.covering_tests_excluding[largest],
    )
