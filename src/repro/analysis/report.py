"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.coverage import Fig5Data
from repro.analysis.overhead import OverheadRow
from repro.analysis.reduction import ReductionRow, average_improvement
from repro.analysis.surface import SurfaceUsage
from repro.attacks.runner import CampaignResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Simple aligned text table."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_fig5(data: Fig5Data) -> str:
    """Fig. 5: tests covering vulnerable code, per CVE x category."""
    headers = ["CVE"] + data.categories
    rows = [
        [cve] + [data.rows[cve].get(cat, 0) for cat in data.categories]
        for cve in sorted(data.rows)
    ]
    excl_cov, excl_total = data.covering_excluding_largest
    footer = (
        f"\ncorpus: {data.total_tests} e2e tests; "
        f"{data.covering_tests} cover vulnerable code "
        f"({100 * data.covering_fraction:.2f}%); "
        f"excluding the largest category: {excl_cov}/{excl_total}; "
        f"CVEs with zero coverage: {len(data.uncovered_cves)}"
    )
    return format_table(headers, rows) + footer


def render_fig9(matrix: dict[str, SurfaceUsage], kinds: Sequence[str]) -> str:
    """Fig. 9: % of fields used per workload x endpoint."""
    headers = ["endpoint"] + list(matrix)
    rows = []
    for kind in kinds:
        rows.append(
            [kind] + [f"{matrix[op].usage_percent(kind):5.1f}%" for op in matrix]
        )
    return format_table(headers, rows)


def render_table1(rows: list[ReductionRow]) -> str:
    """Table I: attack surface reduction by RBAC vs KubeFence."""
    body = [
        [
            r.operator,
            f"{r.rbac_restrictable} / {r.total_fields}",
            f"{r.kubefence_restrictable} / {r.total_fields}",
            f"{r.rbac_percent:.2f} %",
            f"{r.kubefence_percent:.2f} %",
            f"+{r.improvement:.2f}",
        ]
        for r in rows
    ]
    table = format_table(
        ["Workload", "RBAC fields", "KubeFence fields", "RBAC", "KubeFence", "Δ (pp)"],
        body,
    )
    return table + f"\naverage improvement over RBAC: {average_improvement(rows):.2f} pp"


def render_table3(results: list[CampaignResult]) -> str:
    """Table III: mitigated CVEs and misconfigurations."""
    body = []
    for r in results:
        rc, rm = r.rbac_counts
        kc, km = r.kubefence_counts
        n_cve = sum(1 for o in r.rbac if o.attack.is_cve)
        n_mis = len(r.rbac) - n_cve
        body.append(
            [r.operator, f"{rc}/{n_cve}", f"{kc}/{n_cve}", f"{rm}/{n_mis}", f"{km}/{n_mis}"]
        )
    return format_table(
        ["Workload", "CVEs RBAC", "CVEs KubeFence", "Misconf RBAC", "Misconf KubeFence"],
        body,
    )


def render_table4(rows: list[OverheadRow]) -> str:
    """Table IV: RBAC vs KubeFence request latency.

    Besides the paper's RTT columns, each row reports where the
    KubeFence time goes: decision-cache hits/misses and the p50/p99 of
    the per-request validation latency (compiled engine by default).
    """
    body = [
        [
            r.operator,
            f"{r.rbac_ms_mean:.1f} ± {r.rbac_ms_std:.1f}",
            f"{r.kubefence_ms_mean:.1f} ± {r.kubefence_ms_std:.1f}",
            f"+{r.increase_ms:.1f} ({r.increase_percent:.2f}%)",
            f"{r.cache_hits}/{r.cache_misses}",
            f"{r.validation_ns_p50 / 1000:.0f}/{r.validation_ns_p99 / 1000:.0f}",
        ]
        for r in rows
    ]
    table = format_table(
        [
            "Operator",
            "RBAC RTT (ms)",
            "KubeFence RTT (ms)",
            "Increase (ms, %)",
            "cache hit/miss",
            "valid. p50/p99 (µs)",
        ],
        body,
    )
    engines = {r.engine for r in rows}
    footer = f"\nvalidation engine: {', '.join(sorted(engines))}"
    return table + footer


def render_table2() -> str:
    """Table II: the catalog of malicious specifications."""
    from repro.attacks.catalog import ATTACKS

    body = [
        [a.attack_id, a.title, ", ".join(a.targeted_fields), a.reference]
        for a in ATTACKS
    ]
    return format_table(["ID", "Exploit/Misconfiguration", "Targeted API Field", "Ref."], body)
