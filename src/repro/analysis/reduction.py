"""Attack-surface reduction: RBAC vs KubeFence (Sec. VI-B, Table I).

RBAC restricts fields only by denying an *entire endpoint* the workload
never uses; it cannot filter fields inside an endpoint the workload
needs.  KubeFence restricts every field absent from the workload's
validator, even within partially-used endpoints -- a strict superset of
RBAC's enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.surface import SurfaceUsage


@dataclass(frozen=True)
class ReductionRow:
    """One Table I row."""

    operator: str
    rbac_restrictable: int
    kubefence_restrictable: int
    total_fields: int

    @property
    def rbac_percent(self) -> float:
        return 100.0 * self.rbac_restrictable / self.total_fields if self.total_fields else 0.0

    @property
    def kubefence_percent(self) -> float:
        return (
            100.0 * self.kubefence_restrictable / self.total_fields if self.total_fields else 0.0
        )

    @property
    def improvement(self) -> float:
        """KubeFence's additional reduction, in percentage points."""
        return self.kubefence_percent - self.rbac_percent


def compute_reduction(usage: SurfaceUsage) -> ReductionRow:
    """Derive the Table I row from one workload's usage profile."""
    rbac = sum(
        total for _, (used, total) in usage.per_kind.items() if used == 0
    )
    kubefence = sum(
        total - used for _, (used, total) in usage.per_kind.items()
    )
    return ReductionRow(
        operator=usage.operator,
        rbac_restrictable=rbac,
        kubefence_restrictable=kubefence,
        total_fields=usage.total_fields,
    )


def average_improvement(rows: list[ReductionRow]) -> float:
    """The paper's headline: average improvement over RBAC (percentage
    points; the paper reports 35% across the five operators)."""
    if not rows:
        return 0.0
    return sum(row.improvement for row in rows) / len(rows)
