"""Attack-surface analysis and experiment reporting.

- :mod:`repro.analysis.surface` -- quantification of the K8s API
  attack surface and per-workload field usage (Fig. 9).
- :mod:`repro.analysis.reduction` -- attack-surface reduction
  achievable by RBAC vs KubeFence (Table I).
- :mod:`repro.analysis.coverage` -- the e2e-coverage analysis
  formatting (Fig. 5; the computation lives in :mod:`repro.k8s.e2e`).
- :mod:`repro.analysis.report` -- plain-text table/heatmap rendering
  used by the benchmark harness and examples.
"""

from repro.analysis.reduction import ReductionRow, compute_reduction
from repro.analysis.surface import (
    ANALYSIS_KINDS,
    SurfaceUsage,
    usage_matrix,
    workload_usage,
)

__all__ = [
    "ANALYSIS_KINDS",
    "ReductionRow",
    "SurfaceUsage",
    "compute_reduction",
    "usage_matrix",
    "workload_usage",
]
