"""Runtime overhead measurement: RBAC vs KubeFence (Sec. VI-E, Table IV).

Measures the round-trip time of deploying each operator's full manifest
set (the ``kubectl apply`` of a Day-1 install), under two
configurations:

- **RBAC** -- requests go straight to the API server with the
  audit2rbac-inferred policy in place;
- **KubeFence** -- the same requests pass through the enforcement
  proxy, which validates each payload before forwarding.

Two transports are supported: the deterministic in-process transport
(pure compute cost), and the real-HTTP topology
(:mod:`repro.k8s.http`) that includes socket round trips like the
paper's mitmproxy deployment.  An optional simulated per-request
network delay can be added to the in-process mode to model the
client-to-control-plane link of the paper's two-VM testbed; it is
applied identically to both configurations, so the *absolute* increase
attributable to KubeFence is still honestly measured.

Counters ride the observability layer (:mod:`repro.obs`): per-proxy
``ProxyStats`` registries are merged across repetitions and the
resulting window snapshot is attached to each :class:`OverheadRow`, so
Table IV's cache/latency columns are the same series a ``/metrics``
scrape would report.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.enforcement import Validator
from repro.core.pipeline import generate_policy
from repro.core.proxy import KubeFenceProxy
from repro.helm.chart import Chart, render_chart
from repro.k8s.apiserver import ApiRequest, ApiResponse, Cluster
from repro.operators.client import DirectTransport, OperatorClient
from repro.rbac import RBACAuthorizer, infer_policy


class DelayedTransport:
    """Wraps a transport, adding a fixed per-request delay (models the
    client <-> control-plane network link; applied to both arms)."""

    def __init__(self, inner: Any, delay_ms: float):
        self.inner = inner
        self.delay_s = delay_ms / 1000.0

    def submit(self, request: ApiRequest) -> ApiResponse:
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        return self.inner.submit(request)


@dataclass
class OverheadRow:
    """One Table IV row."""

    operator: str
    rbac_ms_mean: float
    rbac_ms_std: float
    kubefence_ms_mean: float
    kubefence_ms_std: float
    #: aggregated proxy counters across repetitions (where time goes).
    cache_hits: int = 0
    cache_misses: int = 0
    validation_ns_p50: float = 0.0
    validation_ns_p99: float = 0.0
    #: mean gate latency over *all* validated requests: cache hits
    #: contribute their lookup cost rather than being dropped, so this
    #: is the honest Table IV mean (see ProxyStats.validation_ns_mean).
    validation_ns_mean: float = 0.0
    #: which validation engine the KubeFence arm used.
    engine: str = "compiled"
    #: windowed metrics delta for the KubeFence arm (registry series ->
    #: increment over the measurement window), for the obs trajectory.
    metrics_window: dict[str, float] = field(default_factory=dict)

    @property
    def increase_ms(self) -> float:
        return self.kubefence_ms_mean - self.rbac_ms_mean

    @property
    def increase_percent(self) -> float:
        if self.rbac_ms_mean == 0:
            return 0.0
        return 100.0 * self.increase_ms / self.rbac_ms_mean


@dataclass
class OverheadConfig:
    repetitions: int = 10
    #: simulated per-request network delay (both arms); 0 disables.
    network_delay_ms: float = 0.0
    #: cost of the proxy's localhost hop relative to the client link.
    localhost_hop_ratio: float = 0.1
    #: validation engine for the KubeFence arm: "auto" (compiled unless
    #: REPRO_NO_COMPILE is set), "compiled", or "interpreted" (the
    #: pre-compilation baseline, kept for the comparison row).
    engine: str = "auto"
    #: decision-cache capacity for the KubeFence arm (0 disables; the
    #: default measurement keeps it on, mirroring deployment).
    cache_size: int = 1024


def _learn_rbac_policy(chart: Chart) -> Any:
    cluster = Cluster()
    client = OperatorClient(DirectTransport(cluster.api))
    result = client.deploy_chart(chart)
    client.reconcile(result)
    return infer_policy(cluster.api.audit_log, f"{chart.name}-operator")


def _time_deploys(
    make_client: Callable[[], OperatorClient], chart: Chart, repetitions: int
) -> list[float]:
    """Time *repetitions* full deployments, each on a fresh cluster
    (deployments are create-heavy; reusing a cluster would measure
    conflicts instead)."""
    samples: list[float] = []
    manifests = render_chart(chart)
    for _ in range(repetitions):
        client = make_client()
        started = time.perf_counter()
        result = client.apply_manifests(chart.name, manifests)
        elapsed = time.perf_counter() - started
        if not result.all_ok:
            raise RuntimeError(f"benign deployment blocked during overhead run: {chart.name}")
        samples.append(elapsed * 1000.0)
    return samples


def measure_overhead(
    chart: Chart,
    config: OverheadConfig | None = None,
    validator: Validator | None = None,
) -> OverheadRow:
    """Measure RTT for one operator under RBAC and under KubeFence."""
    config = config or OverheadConfig()
    rbac_policy = _learn_rbac_policy(chart)
    validator = validator or generate_policy(chart)
    proxies: list[KubeFenceProxy] = []

    def rbac_client() -> OperatorClient:
        cluster = Cluster(authorizer=RBACAuthorizer(rbac_policy))
        transport: Any = DirectTransport(cluster.api)
        if config.network_delay_ms:
            transport = DelayedTransport(transport, config.network_delay_ms)
        return OperatorClient(transport)

    def kubefence_client() -> OperatorClient:
        cluster = Cluster()
        proxy = KubeFenceProxy(
            cluster.api, validator, cache_size=config.cache_size, engine=config.engine
        )
        proxies.append(proxy)
        transport: Any = proxy
        if config.network_delay_ms:
            # The proxy runs on the control-plane node (as the paper's
            # mitmproxy Pod does): the client->proxy leg costs the same
            # as the client->API-server link, and the proxy->API-server
            # leg is a cheap localhost hop.
            transport = DelayedTransport(
                transport, config.network_delay_ms * (1.0 + config.localhost_hop_ratio)
            )
        return OperatorClient(transport)

    rbac_samples = _time_deploys(rbac_client, chart, config.repetitions)
    kf_samples = _time_deploys(kubefence_client, chart, config.repetitions)
    totals = _aggregate_stats(proxies)
    return OverheadRow(
        operator=chart.name,
        rbac_ms_mean=statistics.fmean(rbac_samples),
        rbac_ms_std=statistics.pstdev(rbac_samples),
        kubefence_ms_mean=statistics.fmean(kf_samples),
        kubefence_ms_std=statistics.pstdev(kf_samples),
        cache_hits=totals.cache_hits,
        cache_misses=totals.cache_misses,
        validation_ns_p50=totals.validation_ns_p50,
        validation_ns_p99=totals.validation_ns_p99,
        validation_ns_mean=totals.validation_ns_mean,
        engine=config.engine,
        metrics_window=totals.snapshot(),
    )


def _aggregate_stats(proxies: list[Any]) -> Any:
    """Fold per-proxy registries into one ProxyStats façade (the
    cross-repetition Table IV totals)."""
    from repro.core.proxy import ProxyStats

    totals = ProxyStats()
    for proxy in proxies:
        totals.merge(proxy.stats)
    return totals


def measure_overhead_http(
    chart: Chart, repetitions: int = 5, validator: Validator | None = None
) -> OverheadRow:
    """The same measurement over real TCP sockets: client -> API server
    (RBAC arm) vs client -> KubeFence HTTP proxy -> API server."""
    from repro.core.proxy import HttpKubeFenceProxy
    from repro.k8s.http import HttpApiServer, HttpClient

    validator = validator or generate_policy(chart)
    manifests = render_chart(chart)
    proxies: list[Any] = []

    def run(base_url_factory: Callable[[], tuple[Any, str]]) -> list[float]:
        samples = []
        for _ in range(repetitions):
            resources, url = base_url_factory()
            try:
                client = HttpClient(url)
                started = time.perf_counter()
                for manifest in manifests:
                    status, _body = client.apply(manifest)
                    if status >= 300:
                        raise RuntimeError(f"benign request failed: {status}")
                samples.append((time.perf_counter() - started) * 1000.0)
            finally:
                for resource in resources:
                    resource.stop()
        return samples

    def direct() -> tuple[Any, str]:
        server = HttpApiServer(Cluster().api).start()
        return [server], server.base_url

    def proxied() -> tuple[Any, str]:
        server = HttpApiServer(Cluster().api).start()
        proxy = HttpKubeFenceProxy(server.base_url, validator).start()
        proxies.append(proxy)
        return [proxy, server], proxy.base_url

    rbac_samples = run(direct)
    kf_samples = run(proxied)
    totals = _aggregate_stats(proxies)
    return OverheadRow(
        operator=chart.name,
        rbac_ms_mean=statistics.fmean(rbac_samples),
        rbac_ms_std=statistics.pstdev(rbac_samples),
        kubefence_ms_mean=statistics.fmean(kf_samples),
        kubefence_ms_std=statistics.pstdev(kf_samples),
        cache_hits=totals.cache_hits,
        cache_misses=totals.cache_misses,
        validation_ns_p50=totals.validation_ns_p50,
        validation_ns_p99=totals.validation_ns_p99,
        validation_ns_mean=totals.validation_ns_mean,
        metrics_window=totals.snapshot(),
    )


# ---------------------------------------------------------------------------
# Resource usage (the paper's Table IV footnote: CPU +1.21%, +85.54 MiB)
# ---------------------------------------------------------------------------


@dataclass
class ResourceUsage:
    """CPU and memory cost attributable to KubeFence."""

    operator: str
    cpu_overhead_percent: float
    validator_memory_bytes: int
    proxy_state_memory_bytes: int

    @property
    def memory_mib(self) -> float:
        return (self.validator_memory_bytes + self.proxy_state_memory_bytes) / (1024 * 1024)


def measure_resource_usage(
    chart: Chart, repetitions: int = 5, validator: Validator | None = None
) -> ResourceUsage:
    """Measure KubeFence's CPU and memory footprint.

    CPU: process time of deploying the operator's manifests through the
    proxy vs directly, as a relative increase (the paper reports +1.21%
    for the mitmproxy container; an in-process proxy has no container
    baseline, so the validation share of deploy CPU is the comparable
    quantity).  Memory: tracemalloc-attributed size of the loaded
    validator plus the proxy's runtime state after the deployments.
    """
    import tracemalloc

    manifests = render_chart(chart)

    # -- memory: allocate the validator (and proxy) under tracemalloc.
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    validator = validator if validator is not None else generate_policy(chart)
    after_validator, _ = tracemalloc.get_traced_memory()
    cluster = Cluster()
    proxy = KubeFenceProxy(cluster.api, validator)
    client = OperatorClient(proxy)
    result = client.apply_manifests(chart.name, manifests)
    if not result.all_ok:
        tracemalloc.stop()
        raise RuntimeError(f"benign deployment blocked during resource run: {chart.name}")
    after_proxy, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # -- CPU: process-time comparison over fresh clusters.
    def cpu_of(make_client: Callable[[], OperatorClient]) -> float:
        started = time.process_time()
        for _ in range(repetitions):
            deploy_client = make_client()
            deploy_result = deploy_client.apply_manifests(chart.name, manifests)
            if not deploy_result.all_ok:
                raise RuntimeError("benign deployment blocked during CPU run")
        return time.process_time() - started

    direct_cpu = cpu_of(lambda: OperatorClient(DirectTransport(Cluster().api)))
    proxied_cpu = cpu_of(
        lambda: OperatorClient(KubeFenceProxy(Cluster().api, validator))
    )
    overhead = 100.0 * (proxied_cpu - direct_cpu) / direct_cpu if direct_cpu else 0.0
    return ResourceUsage(
        operator=chart.name,
        cpu_overhead_percent=max(overhead, 0.0),
        validator_memory_bytes=max(after_validator - before, 0),
        proxy_state_memory_bytes=max(after_proxy - after_validator, 0),
    )
