"""Quantifying the K8s API attack surface (Sec. VI-B, Fig. 9).

The attack surface is the set of configurable fields exposed by the API
endpoints (the schema catalog).  A workload's *usage* of an endpoint is
the fraction of that endpoint's fields that appear in the workload's
KubeFence validator -- i.e. the fields the workload could legitimately
send.  Everything else is unnecessary exposure that can be filtered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.enforcement import Validator
from repro.k8s.schema import SchemaCatalog, catalog as default_catalog

#: The endpoints considered in the evaluation (the paper's catalog
#: spans 4,882 configurable fields; this set spans the same order).
ANALYSIS_KINDS: tuple[str, ...] = (
    "Pod",
    "Deployment",
    "StatefulSet",
    "DaemonSet",
    "Job",
    "Service",
    "ServiceAccount",
    "ConfigMap",
    "Secret",
    "PersistentVolumeClaim",
    "Ingress",
    "NetworkPolicy",
    "Role",
    "RoleBinding",
    "PodDisruptionBudget",
    "HorizontalPodAutoscaler",
    "Endpoints",
    "LimitRange",
    "ResourceQuota",
    "Namespace",
)


def catalog_paths(kind: str, schemas: SchemaCatalog | None = None) -> set[tuple[str, ...]]:
    """All schema field paths of *kind* as key tuples (the counting
    unit of the attack-surface analysis)."""
    schemas = schemas or default_catalog
    root = schemas.schema(kind)
    out: set[tuple[str, ...]] = set()
    for path, _ in root.walk():
        parts = tuple(path.split("."))
        if parts[0] == kind:
            parts = parts[1:]
        if parts:
            out.add(parts)
    return out


@dataclass
class SurfaceUsage:
    """Per-workload, per-endpoint field usage."""

    operator: str
    #: kind -> (used fields, total fields)
    per_kind: dict[str, tuple[int, int]] = field(default_factory=dict)

    def usage_percent(self, kind: str) -> float:
        used, total = self.per_kind.get(kind, (0, 0))
        return 100.0 * used / total if total else 0.0

    @property
    def used_fields(self) -> int:
        return sum(used for used, _ in self.per_kind.values())

    @property
    def total_fields(self) -> int:
        return sum(total for _, total in self.per_kind.values())

    def unused_kinds(self) -> list[str]:
        """Endpoints entirely unused (restrictable by RBAC)."""
        return sorted(k for k, (used, _) in self.per_kind.items() if used == 0)


def workload_usage(
    validator: Validator,
    kinds: Iterable[str] = ANALYSIS_KINDS,
    schemas: SchemaCatalog | None = None,
) -> SurfaceUsage:
    """Compute one workload's API usage from its validator."""
    schemas = schemas or default_catalog
    usage = SurfaceUsage(operator=validator.operator)
    for kind in kinds:
        total_paths = catalog_paths(kind, schemas)
        allowed = validator.allowed_field_paths(kind)
        used = len(allowed & total_paths)
        usage.per_kind[kind] = (used, len(total_paths))
    return usage


def usage_matrix(
    validators: dict[str, Validator],
    kinds: Iterable[str] = ANALYSIS_KINDS,
    schemas: SchemaCatalog | None = None,
) -> dict[str, SurfaceUsage]:
    """Fig. 9's matrix: operator -> per-endpoint usage."""
    return {
        name: workload_usage(v, kinds, schemas) for name, v in sorted(validators.items())
    }
