"""KubeFence reproduction: security hardening of the Kubernetes attack
surface (Cesarano & Natella, DSN 2025).

Public API quick tour::

    from repro import generate_policy, get_chart, Cluster, KubeFenceProxy
    from repro.operators import OperatorClient

    chart = get_chart("nginx")
    validator = generate_policy(chart)        # offline policy generation
    cluster = Cluster()                       # mini Kubernetes
    proxy = KubeFenceProxy(cluster.api, validator)
    client = OperatorClient(proxy)            # complete mediation
    client.deploy_chart(chart)                # benign traffic passes

Sub-packages: :mod:`repro.core` (KubeFence), :mod:`repro.k8s` (mini
Kubernetes), :mod:`repro.helm` (template engine), :mod:`repro.rbac`
(baseline), :mod:`repro.operators` (evaluation charts),
:mod:`repro.attacks` (Table II catalog), :mod:`repro.analysis`
(experiment computations).
"""

from repro.core import KubeFenceProxy, Validator, generate_policy
from repro.helm import Chart, render_chart
from repro.k8s import Cluster
from repro.operators import all_charts, get_chart

__version__ = "1.0.0"

__all__ = [
    "Chart",
    "Cluster",
    "KubeFenceProxy",
    "Validator",
    "all_charts",
    "generate_policy",
    "get_chart",
    "render_chart",
    "__version__",
]
