"""KubeFence resilience layer: retry/backoff, deadlines, circuit
breaking, and the guarded-upstream call discipline.

The proxy is in-line on every API request, so its availability and
fail-closed behaviour are as security-critical as its validators.
This package provides the substrate the enforcement path degrades on
(see ``docs/RESILIENCE.md`` for the failure-mode matrix and the chaos
harness in :mod:`repro.faults` that exercises it).
"""

from repro.resilience.breaker import (
    BREAKER_STATE_CODES,
    CLOSED,
    CircuitBreaker,
    CircuitOpenError,
    HALF_OPEN,
    OPEN,
)
from repro.resilience.guard import (
    DEFAULT_RESILIENCE,
    DEGRADED_MODES,
    RETRYABLE_STATUS_CODES,
    ResilienceConfig,
    StaleReadCache,
    UpstreamGuard,
    UpstreamUnavailable,
    stale_read_key,
)
from repro.resilience.retry import (
    Deadline,
    DeadlineExceeded,
    JITTER_MODES,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "BREAKER_STATE_CODES",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEFAULT_RESILIENCE",
    "DEGRADED_MODES",
    "Deadline",
    "DeadlineExceeded",
    "HALF_OPEN",
    "JITTER_MODES",
    "OPEN",
    "RETRYABLE_STATUS_CODES",
    "ResilienceConfig",
    "RetryPolicy",
    "StaleReadCache",
    "UpstreamGuard",
    "UpstreamUnavailable",
    "retry_call",
    "stale_read_key",
]
