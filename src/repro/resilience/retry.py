"""Retry policies: exponential backoff, jitter, and deadline budgets.

The enforcement proxy sits in-line on every API request, so a
transient upstream hiccup (stale pooled socket, etcd leader election,
a 503 burst during a rolling restart) must not surface as a client
failure -- but unbounded retries are their own outage amplifier.  This
module provides the two primitives the resilience layer is built on:

- :class:`RetryPolicy` -- a declarative schedule (attempt count,
  exponential base/cap, jitter mode).  ``"decorrelated"`` jitter is
  the AWS-style schedule (``sleep = uniform(base, prev * 3)`` capped)
  that avoids retry synchronization across many clients hitting the
  same recovering upstream; ``"full"`` draws uniformly from
  ``[0, min(cap, base * mult^i)]``; ``"none"`` is the deterministic
  textbook schedule (useful in tests).
- :class:`Deadline` -- a total per-request time budget.  Retries are
  pointless past the caller's patience: every backoff sleep is clamped
  to the remaining budget and :class:`DeadlineExceeded` fires when the
  budget is spent.

Determinism: every random draw goes through an injectable
``random.Random``, so a seeded policy replays the exact same schedule
-- chaos runs are reproducible experiments, not dice rolls.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "JITTER_MODES",
    "RetryPolicy",
    "retry_call",
]

#: Recognized jitter strategies.
JITTER_MODES = ("decorrelated", "full", "none")


class DeadlineExceeded(Exception):
    """The per-request time budget ran out before the call succeeded."""


class Deadline:
    """A monotonic time budget shared across retry attempts.

    The clock is injectable so breaker/backoff tests can advance time
    without sleeping.
    """

    __slots__ = ("budget", "_clock", "_started")

    def __init__(self, budget_seconds: float,
                 clock: Callable[[], float] = time.monotonic):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = float(budget_seconds)
        self._clock = clock
        self._started = clock()

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget - (self._clock() - self._started))

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, timeout: float) -> float:
        """*timeout* limited to the remaining budget."""
        return min(float(timeout), self.remaining())

    def require(self, minimum: float = 0.0) -> float:
        """Remaining budget, raising :class:`DeadlineExceeded` when it
        is at or below *minimum*."""
        remaining = self.remaining()
        if remaining <= minimum:
            raise DeadlineExceeded(
                f"deadline of {self.budget:.3f}s exhausted "
                f"({remaining:.3f}s remaining, {minimum:.3f}s required)"
            )
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(budget={self.budget}, remaining={self.remaining():.3f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry schedule for one upstream call.

    ``max_attempts`` counts the *total* number of tries (1 means no
    retry at all); ``delays()`` therefore yields ``max_attempts - 1``
    backoff sleeps.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 0.5
    multiplier: float = 2.0
    jitter: str = "decorrelated"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in JITTER_MODES:
            raise ValueError(f"unknown jitter mode {self.jitter!r}; "
                             f"choose from {JITTER_MODES}")

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """The backoff sleeps between attempts.

        Bounds (pinned by ``tests/resilience/test_retry.py``):

        - ``decorrelated``: every delay is in ``[base_delay, max_delay]``;
        - ``full``: every delay is in ``[0, min(max_delay, base*mult^i)]``;
        - ``none``: the deterministic ``min(max_delay, base*mult^i)``.
        """
        draw = (rng if rng is not None else random).uniform
        previous = self.base_delay
        for attempt in range(self.max_attempts - 1):
            ceiling = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
            if self.jitter == "decorrelated":
                previous = min(self.max_delay,
                               draw(self.base_delay, max(self.base_delay, previous * 3)))
                yield previous
            elif self.jitter == "full":
                yield draw(0.0, ceiling)
            else:  # "none"
                yield ceiling


def retry_call(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    *,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    deadline: Deadline | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
) -> Any:
    """Call *fn* under *policy*, retrying exceptions in *retry_on*.

    Every backoff sleep is clamped to the deadline's remaining budget;
    when the budget runs out mid-schedule, :class:`DeadlineExceeded` is
    raised *from* the last transport error (so the cause survives into
    logs).  ``on_retry(attempt, delay, error)`` fires once per retry
    that will actually happen -- the hook the proxy uses to bump
    ``kubefence_retries_total``.
    """
    delays = policy.delays(rng)
    last_error: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as err:
            last_error = err
        if attempt >= policy.max_attempts:
            break
        delay = next(delays)
        if deadline is not None:
            try:
                deadline.require()
            except DeadlineExceeded as exhausted:
                raise exhausted from last_error
            delay = deadline.clamp(delay)
        if on_retry is not None:
            on_retry(attempt, delay, last_error)  # type: ignore[arg-type]
        if delay > 0:
            sleep(delay)
    assert last_error is not None
    raise last_error
