"""UpstreamGuard: breaker + retry + deadline around one unreliable call.

Both enforcement proxies (the in-process transport and the HTTP
reverse proxy) forward validated requests to an upstream API server
that can fail in transport space (resets, timeouts, truncated reads)
or in protocol space (502/503/504 during rolling restarts).  The guard
composes the resilience primitives into one call discipline:

1. every attempt first asks the :class:`~repro.resilience.breaker.
   CircuitBreaker` for admission (``CircuitOpenError`` when refused);
2. transport exceptions in ``retry_on`` and results the caller marks
   as failures (``is_failure`` -- e.g. a 503 response object) count
   against the breaker and consume retry attempts with backoff sleeps
   drawn from the :class:`~repro.resilience.retry.RetryPolicy`;
3. sleeps are clamped to the per-request :class:`~repro.resilience.
   retry.Deadline`; an exhausted budget aborts the schedule early.

Outcome contract (pinned by ``tests/resilience/test_guard.py``):

- success -> the result, breaker credited;
- breaker refuses -> :class:`CircuitOpenError` (fast local refusal);
- attempts exhausted on *failure results* -> the last failing result
  is **returned** (an upstream 503 is information the client should
  see, not something to mask);
- attempts exhausted on *exceptions* (or deadline spent) ->
  :class:`UpstreamUnavailable` chained to the last transport error.

The degradation decision -- refuse fail-closed, or serve a stale
cached read fail-static -- is the caller's: the guard only reports
*that* the upstream is unavailable, never invents an answer.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.retry import Deadline, DeadlineExceeded, RetryPolicy

__all__ = [
    "DEFAULT_RESILIENCE",
    "ResilienceConfig",
    "StaleReadCache",
    "UpstreamGuard",
    "UpstreamUnavailable",
    "stale_read_key",
]

#: Response codes treated as retryable upstream failures.
RETRYABLE_STATUS_CODES = frozenset({502, 503, 504})

_NO_RESULT = object()


class UpstreamUnavailable(Exception):
    """Retries/deadline exhausted without reaching the upstream."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class UpstreamGuard:
    """One guarded upstream call path (shared by a proxy's workers)."""

    def __init__(
        self,
        retry: RetryPolicy,
        breaker: CircuitBreaker | None = None,
        *,
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, float], None] | None = None,
        on_failure: Callable[[Any], None] | None = None,
    ):
        self.retry = retry
        self.breaker = breaker
        self.retry_on = retry_on
        self._rng = rng
        self._sleep = sleep
        self._on_retry = on_retry
        self._on_failure = on_failure

    def _admit(self) -> None:
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit breaker is {self.breaker.state}; refusing upstream call"
            )

    def _credit(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    def _debit(self, failure: Any) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()
        if self._on_failure is not None:
            self._on_failure(failure)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        deadline: Deadline | None = None,
        is_failure: Callable[[Any], bool] | None = None,
        retry_transport_errors: bool = True,
    ) -> Any:
        """Run *fn* under breaker + retry + deadline (see module doc).

        ``retry_transport_errors=False`` disables re-execution after a
        ``retry_on`` exception: the first transport failure still
        debits the breaker but immediately becomes
        :class:`UpstreamUnavailable`.  Callers use this for
        non-idempotent requests, where a reset or truncated read leaves
        it unknown whether the upstream already applied the request --
        replaying it could apply a write twice.  Failure *results*
        (e.g. an upstream 503, which implies the request was not
        processed) are still retried.
        """
        delays = self.retry.delays(self._rng)
        last_error: BaseException | None = None
        last_result: Any = _NO_RESULT
        attempts = 0
        for attempt in range(1, self.retry.max_attempts + 1):
            self._admit()  # every attempt is a separate admission
            attempts = attempt
            try:
                result = fn()
            except self.retry_on as err:
                self._debit(err)
                last_error, last_result = err, _NO_RESULT
                if not retry_transport_errors:
                    break  # ambiguous upstream state: never replay
            except BaseException:
                # Not a retryable transport error -- but _admit() may
                # have reserved a half-open probe slot that only an
                # outcome report releases.  Without this, one stray
                # exception would pin the breaker in half-open with the
                # slot occupied forever (permanent 503).  Mirror
                # CircuitBreaker.call: count it as a failure, re-raise.
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            else:
                if is_failure is None or not is_failure(result):
                    self._credit()
                    return result
                self._debit(result)
                last_error, last_result = None, result
            if attempt >= self.retry.max_attempts:
                break
            delay = next(delays)
            if deadline is not None:
                if deadline.expired:
                    break
                delay = deadline.clamp(delay)
            if self._on_retry is not None:
                self._on_retry(attempt, delay)
            if delay > 0:
                self._sleep(delay)
        if last_result is not _NO_RESULT:
            return last_result  # pass the upstream's own failure through
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"upstream deadline of {deadline.budget:.3f}s exhausted "
                f"after {attempts} attempt(s)"
            ) from last_error
        raise UpstreamUnavailable(
            f"upstream unavailable after {attempts} attempt(s): {last_error}",
            attempts=attempts,
        ) from last_error


#: The closed set of degradation postures (what a proxy does when its
#: upstream is down); the chaos and crashtest harnesses iterate this
#: to prove neither posture can fail open.
DEGRADED_MODES = ("fail-closed", "fail-static")


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for one proxy's upstream path.

    ``degraded_mode`` selects what happens when the upstream is down
    (breaker open or retries exhausted):

    - ``"fail-closed"``: every request that needs the upstream is
      refused with 503.  Denials are unaffected -- the validation gate
      runs locally and keeps answering 403.
    - ``"fail-static"``: reads (GET) may be served from a bounded
      stale-response cache (age-capped by ``read_cache_ttl``); writes
      are still refused.  Cached entries are keyed per authenticated
      identity (:func:`stale_read_key`), so one user's cached read is
      never served to another.  A would-be denial is **never**
      converted into an allow in either mode.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    request_timeout: float = 5.0
    request_deadline: float | None = 10.0
    failure_threshold: int = 5
    recovery_timeout: float = 1.0
    success_threshold: int = 1
    half_open_max_probes: int = 1
    degraded_mode: str = "fail-closed"
    read_cache_size: int = 256
    read_cache_ttl: float = 30.0

    def __post_init__(self) -> None:
        if self.degraded_mode not in DEGRADED_MODES:
            raise ValueError(
                f"unknown degraded_mode {self.degraded_mode!r}; "
                "choose 'fail-closed' or 'fail-static'"
            )
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")

    @property
    def breaker_enabled(self) -> bool:
        """``failure_threshold=0`` disables the breaker outright."""
        return self.failure_threshold > 0

    def make_breaker(
        self,
        on_transition: Callable[[str, str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> CircuitBreaker | None:
        if not self.breaker_enabled:
            return None
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            recovery_timeout=self.recovery_timeout,
            success_threshold=self.success_threshold,
            half_open_max_probes=self.half_open_max_probes,
            clock=clock,
            on_transition=on_transition,
        )

    def deadline(self) -> Deadline | None:
        return Deadline(self.request_deadline) if self.request_deadline else None


#: The HTTP proxy's out-of-the-box posture: three attempts with
#: decorrelated jitter, a 5-failure breaker, fail-closed degradation.
DEFAULT_RESILIENCE = ResilienceConfig()


def stale_read_key(user: str, groups: str, path: str) -> str:
    """Identity-scoped :class:`StaleReadCache` key.

    The upstream authorizes reads *per user* (RBAC), so a cached
    response is only valid for the identity it was originally served
    to.  Keying by path alone would let any client replay another
    user's cached 200 during an outage -- converting an upstream RBAC
    denial into an allow.  Both proxies build their cache keys through
    this helper so the identity scoping cannot be forgotten.  The unit
    separator (0x1f) cannot appear in header values or URL paths, so
    keys are unambiguous.
    """
    return "\x1f".join((user, groups, path))


class StaleReadCache:
    """Bounded LRU of recent successful read responses (fail-static).

    Only ever consulted when the upstream is *unavailable*; entries
    older than the caller's TTL are not served.  Thread-safe: the HTTP
    proxy's worker threads share one instance.

    Keys **must** be scoped to the authenticated identity (build them
    with :func:`stale_read_key`): the cache itself is a dumb LRU and
    will happily serve whatever key it is asked for, so authorization
    isolation lives entirely in the key discipline.
    """

    def __init__(self, maxsize: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if maxsize <= 0:
            raise ValueError("StaleReadCache maxsize must be positive")
        self.maxsize = maxsize
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple[float, Any]]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, key: str, payload: Any) -> None:
        with self._lock:
            self._entries[key] = (self._clock(), payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def get(self, key: str, ttl: float) -> tuple[float, Any] | None:
        """``(age_seconds, payload)`` when present and younger than
        *ttl*, else ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            stored_at, payload = entry
            age = self._clock() - stored_at
            if age > ttl:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return age, payload
