"""Thread-safe circuit breaker with closed/open/half-open probing.

When the upstream API server is *down* (not merely hiccuping), retries
only add load and latency.  The breaker converts a run of consecutive
failures into fast local refusals (fail-closed -- see
``docs/RESILIENCE.md`` for the degradation matrix), then probes the
upstream with a bounded number of trial requests once the recovery
timeout elapses:

- **closed**: all calls pass; ``failure_threshold`` *consecutive*
  failures trip the breaker (any success resets the run).
- **open**: every call is refused locally until ``recovery_timeout``
  seconds pass, at which point the next ``allow()`` moves to half-open.
- **half-open**: at most ``half_open_max_probes`` calls are admitted
  concurrently.  ``success_threshold`` probe successes close the
  breaker; a single probe failure re-opens it and restarts the timer.

The clock is injectable (tests advance time without sleeping), every
transition invokes ``on_transition(old, new)`` under the state lock
(the proxy uses it to keep the ``kubefence_breaker_state`` gauge and
the transitions counter exact), and probe slots are reserved inside
``allow()`` so concurrent half-open callers cannot stampede the
recovering upstream (pinned by the thread-race tests in
``tests/resilience/test_breaker.py``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = [
    "BREAKER_STATE_CODES",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "HALF_OPEN",
    "OPEN",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding for the ``kubefence_breaker_state`` gauge.
BREAKER_STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitOpenError(Exception):
    """The breaker refused the call locally (upstream presumed down)."""


class CircuitBreaker:
    """Consecutive-failure breaker with bounded half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 1.0,
        success_threshold: int = 1,
        half_open_max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if success_threshold < 1:
            raise ValueError("success_threshold must be >= 1")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.success_threshold = success_threshold
        self.half_open_max_probes = half_open_max_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """The stored state (reads do not advance the machine; only
        ``allow()`` performs the open -> half-open transition)."""
        with self._lock:
            return self._state

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        if new_state == HALF_OPEN:
            self._probes_in_flight = 0
            self._probe_successes = 0
        if new_state == CLOSED:
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            self._probe_successes = 0
        if self._on_transition is not None:
            self._on_transition(old, new_state)

    # -- call admission ------------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed now.

        In half-open this *reserves a probe slot*: the caller must
        report the outcome via :meth:`record_success` /
        :meth:`record_failure` to release it.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.recovery_timeout:
                    return False
                self._transition(HALF_OPEN)
            # HALF_OPEN: bounded concurrent probes.
            if self._probes_in_flight < self.half_open_max_probes:
                self._probes_in_flight += 1
                return True
            return False

    def call(self, fn: Callable[[], object]) -> object:
        """Run *fn* under the breaker, raising :class:`CircuitOpenError`
        when the call is refused.  Exceptions count as failures."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker is {self.state}; refusing call"
            )
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    # -- outcome reporting ---------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.success_threshold:
                    self._transition(CLOSED)
            elif self._state == CLOSED:
                self._consecutive_failures = 0
            # OPEN: a straggler success from before the trip; ignore.

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._transition(OPEN)  # one bad probe re-opens
            elif self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._transition(OPEN)
            # OPEN: already tripped; do not extend the recovery window.

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}, "
            f"threshold={self.failure_threshold})"
        )
