"""The continuous CVE scanner service loop.

Modelled on kure-monitor's ``CVEScanner``: a long-running loop that, on
every tick,

1. refreshes the vulnerability feed (:mod:`repro.scan.feed`),
2. narrows the database to entries *live* for the cluster version
   (``version_in_range`` predicate, or everything exploitable when
   ``assume_vulnerable`` — the paper's Table II/III posture),
3. matches each live entry's trigger against an atomic snapshot of the
   object store (:meth:`repro.k8s.store.ObjectStore.snapshot`), and
4. publishes one schema-versioned ``kind="scan"`` event per *newly*
   observed finding, increments
   ``kubefence_scan_findings_total{cve,severity}``, and retains the
   report for the ``/obs/scan`` surface.

A finding is *mitigated* when the wired KubeFence validator would deny
the matching manifest today — the exposure is already fenced off for
future writes even though the object predates the policy.  Unmitigated
critical findings are what ``repro scan`` exits non-zero on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.k8s.store import ObjectStore
from repro.k8s.vulndb import CVEEntry, VulnerabilityDatabase, version_in_range
from repro.obs.analytics.events import SecurityEvent, now
from repro.scan.feed import FeedSnapshot, StaticFeed

__all__ = [
    "CVEScanner",
    "DEFAULT_CLUSTER_VERSION",
    "SEVERITIES",
    "ScanFinding",
    "ScanReport",
    "severity_for",
]

DEFAULT_CLUSTER_VERSION = "1.28.6"

#: Ordered worst-first; doubles as the metrics label domain.
SEVERITIES = ("critical", "high", "medium", "low")


def severity_for(cvss: float) -> str:
    """CVSS v3 qualitative rating bands."""
    if cvss >= 9.0:
        return "critical"
    if cvss >= 7.0:
        return "high"
    if cvss >= 4.0:
        return "medium"
    return "low"


@dataclass(frozen=True)
class ScanFinding:
    """One (CVE, object) match: a live vulnerability the store exposes."""

    cve_id: str
    severity: str
    cvss: float
    component: str
    kind: str
    namespace: str
    name: str
    field: str
    fixed_in: str | None = None
    effect: str = ""
    mitigated: bool = False

    @property
    def key(self) -> tuple[str, str, str, str, str]:
        return (self.cve_id, self.kind, self.namespace, self.name, self.field)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cve": self.cve_id,
            "severity": self.severity,
            "cvss": self.cvss,
            "component": self.component,
            "kind": self.kind,
            "namespace": self.namespace,
            "name": self.name,
            "field": self.field,
            "fixed_in": self.fixed_in,
            "effect": self.effect,
            "mitigated": self.mitigated,
        }


@dataclass
class ScanReport:
    """The result of one scan tick."""

    tick: int
    store_revision: int
    objects_scanned: int
    cluster_version: str
    feed_serial: int
    feed_entries: int
    live_cves: int
    findings: list[ScanFinding] = field(default_factory=list)
    new_findings: int = 0
    duration_ms: float = 0.0

    @property
    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in SEVERITIES}
        for f in self.findings:
            out[f.severity] += 1
        return out

    def unmitigated(self, threshold: str = "critical") -> list[ScanFinding]:
        """Findings at or above *threshold* severity, not yet fenced."""
        rank = SEVERITIES.index(threshold)
        return [
            f for f in self.findings
            if not f.mitigated and SEVERITIES.index(f.severity) <= rank
        ]

    def finding_keys(self) -> set[tuple[str, str, str, str, str]]:
        return {f.key for f in self.findings}

    def to_dict(self) -> dict[str, Any]:
        return {
            "tick": self.tick,
            "store_revision": self.store_revision,
            "objects_scanned": self.objects_scanned,
            "cluster_version": self.cluster_version,
            "feed": {
                "serial": self.feed_serial,
                "entries": self.feed_entries,
                "live_cves": self.live_cves,
            },
            "counts": self.counts,
            "new_findings": self.new_findings,
            "duration_ms": round(self.duration_ms, 3),
            "findings": [
                f.to_dict()
                for f in sorted(self.findings, key=lambda f: f.key)
            ],
        }


class CVEScanner:
    """Periodic vulndb-vs-store matcher publishing scan events.

    ``store`` may be an :class:`~repro.k8s.store.ObjectStore` or
    anything carrying one as ``.store`` (a ``Cluster``).  ``validator``
    is optional; when wired, each finding is checked against the active
    policy to decide ``mitigated``.
    """

    def __init__(
        self,
        store: Any,
        feed: Any | None = None,
        db: VulnerabilityDatabase | None = None,
        cluster_version: str = DEFAULT_CLUSTER_VERSION,
        assume_vulnerable: bool = False,
        interval: float = 30.0,
        event_bus: Any | None = None,
        registry: Any | None = None,
        validator: Any | None = None,
    ) -> None:
        if not isinstance(store, ObjectStore):
            store = store.store
        self.store: ObjectStore = store
        self.feed = feed if feed is not None else StaticFeed(db)
        self.cluster_version = cluster_version
        self.assume_vulnerable = assume_vulnerable
        self.interval = interval
        self.event_bus = event_bus
        self.validator = validator
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._tick = 0
        self._seen: set[tuple[str, str, str, str, str]] = set()
        self._latest: ScanReport | None = None
        self._last_feed: FeedSnapshot | None = None
        self._feed_refreshes = 0
        self._feed_changes = 0
        self._m_findings = None
        self._m_ticks = None
        self._m_open = None
        if registry is not None:
            self._m_findings = registry.counter(
                "kubefence_scan_findings_total",
                "Newly observed CVE scan findings, by CVE and severity.",
                labels=("cve", "severity"),
            )
            self._m_ticks = registry.counter(
                "kubefence_scan_ticks_total",
                "Completed scanner ticks (feed refresh + store scan).",
            )
            self._m_open = registry.gauge(
                "kubefence_scan_open_findings",
                "Findings present in the store as of the last scan tick.",
            )

    # -- matching ----------------------------------------------------------

    def live_entries(self, db: VulnerabilityDatabase) -> list[CVEEntry]:
        """Triggerable entries whose version predicate holds for this
        cluster (or all of them under ``assume_vulnerable``)."""
        out = []
        for entry in db.api_exploitable():
            if self.assume_vulnerable or version_in_range(
                self.cluster_version, entry.fixed_in
            ):
                out.append(entry)
        return out

    def _mitigated(self, obj: Any) -> bool:
        if self.validator is None:
            return False
        try:
            return not self.validator.validate(obj.data).allowed
        except Exception:  # noqa: BLE001 - treat validator errors as unmitigated
            return False

    def scan_once(self) -> ScanReport:
        """One full tick: refresh the feed, scan the store, publish."""
        started = time.perf_counter()
        snapshot = self.feed.refresh()
        live = self.live_entries(snapshot.db)
        revision, objects = self.store.snapshot()
        findings: list[ScanFinding] = []
        for entry in live:
            severity = severity_for(entry.cvss)
            for obj in objects:
                matched = entry.trigger(obj) if entry.trigger else None
                if matched is None:
                    continue
                findings.append(ScanFinding(
                    cve_id=entry.cve_id,
                    severity=severity,
                    cvss=entry.cvss,
                    component=entry.component,
                    kind=obj.kind,
                    namespace=obj.namespace,
                    name=obj.name,
                    field=matched,
                    fixed_in=entry.fixed_in,
                    effect=entry.effect,
                    mitigated=self._mitigated(obj),
                ))
        with self._lock:
            self._tick += 1
            self._feed_refreshes += 1
            if snapshot.changed:
                self._feed_changes += 1
            self._last_feed = snapshot
            fresh = [f for f in findings if f.key not in self._seen]
            self._seen.update(f.key for f in fresh)
            report = ScanReport(
                tick=self._tick,
                store_revision=revision,
                objects_scanned=len(objects),
                cluster_version=self.cluster_version,
                feed_serial=snapshot.serial,
                feed_entries=snapshot.entry_count,
                live_cves=len(live),
                findings=findings,
                new_findings=len(fresh),
                duration_ms=(time.perf_counter() - started) * 1e3,
            )
            self._latest = report
        self._publish(fresh)
        if self._m_ticks is not None:
            self._m_ticks.inc()
        if self._m_open is not None:
            self._m_open.set(float(len(findings)))
        return report

    def _publish(self, fresh: Iterable[ScanFinding]) -> None:
        for finding in fresh:
            if self._m_findings is not None:
                self._m_findings.labels(
                    cve=finding.cve_id, severity=finding.severity
                ).inc()
            if self.event_bus is not None:
                self.event_bus.publish(SecurityEvent(
                    kind="scan",
                    source="scanner",
                    ts=now(),
                    resource=finding.kind,
                    name=finding.name,
                    namespace=finding.namespace,
                    outcome="mitigated" if finding.mitigated else "open",
                    detail={
                        "cve": finding.cve_id,
                        "severity": finding.severity,
                        "cvss": finding.cvss,
                        "field": finding.field,
                        "fixed_in": finding.fixed_in,
                        "component": finding.component,
                    },
                ))

    # -- service loop ------------------------------------------------------

    def run(self, ticks: int | None = None) -> ScanReport | None:
        """Blocking loop; *ticks* bounds iterations (None = forever)."""
        report = None
        remaining = ticks
        while not self._stop.is_set():
            report = self.scan_once()
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
            if self._stop.wait(self.interval):
                break
        return report

    def start(self) -> "CVEScanner":
        """Run the loop on a daemon thread; idempotent."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self.run, name="cve-scanner", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():  # pragma: no cover - defensive
                raise RuntimeError("cve-scanner thread failed to stop")
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- surfaces ----------------------------------------------------------

    @property
    def latest(self) -> ScanReport | None:
        with self._lock:
            return self._latest

    def status(self) -> dict[str, Any]:
        """The ``/obs/scan`` payload."""
        with self._lock:
            latest = self._latest
            return {
                "running": self.running,
                "interval_s": self.interval,
                "cluster_version": self.cluster_version,
                "assume_vulnerable": self.assume_vulnerable,
                "ticks": self._tick,
                "feed": {
                    "refreshes": self._feed_refreshes,
                    "changes": self._feed_changes,
                    "serial": (
                        self._last_feed.serial if self._last_feed else 0
                    ),
                    "source": (
                        self._last_feed.source if self._last_feed else None
                    ),
                },
                "seen_findings": len(self._seen),
                "last_report": latest.to_dict() if latest else None,
            }
