"""Continuous CVE scanning of the live cluster store.

A long-running service loop (modelled on kure-monitor's scanner) that
refreshes a vulnerability feed, matches version-live CVE triggers
against an atomic store snapshot, publishes ``kind="scan"`` events and
``kubefence_scan_findings_total`` metrics, and feeds the ``/obs/scan``
surface on both HTTP components.

- :mod:`repro.scan.feed` -- feed sources (in-process + JSON document).
- :mod:`repro.scan.scanner` -- the :class:`CVEScanner` service loop.
"""

from repro.scan.feed import (
    FeedSnapshot,
    JsonFeed,
    StaticFeed,
    TRIGGER_REGISTRY,
    parse_feed_document,
)
from repro.scan.scanner import (
    CVEScanner,
    DEFAULT_CLUSTER_VERSION,
    SEVERITIES,
    ScanFinding,
    ScanReport,
    severity_for,
)

__all__ = [
    "CVEScanner",
    "DEFAULT_CLUSTER_VERSION",
    "FeedSnapshot",
    "JsonFeed",
    "SEVERITIES",
    "ScanFinding",
    "ScanReport",
    "StaticFeed",
    "TRIGGER_REGISTRY",
    "parse_feed_document",
    "severity_for",
]
