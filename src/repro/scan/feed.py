"""Vulnerability feed sources for the CVE scanner.

The scanner refreshes its :class:`~repro.k8s.vulndb.VulnerabilityDatabase`
from a *feed* at the top of every tick, the way kure-monitor's scanner
re-pulls the upstream CVE feed before each scan.  Two sources:

- :class:`StaticFeed` wraps an in-process database (default: the
  built-in 49-CVE window).  Entries can be added at runtime, which is
  how tests and demos model the upstream feed publishing a new CVE
  between ticks.
- :class:`JsonFeed` parses a JSON document (a file path or any
  zero-argument fetcher returning text), resolving trigger predicates
  by name from :data:`TRIGGER_REGISTRY` so a feed document can carry
  executable API-exploitability triggers without shipping code.

Both report a monotonically increasing ``serial`` that bumps only when
the entry set actually changed, so consumers can cheaply detect "the
feed moved" without diffing entries themselves.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.k8s.vulndb import (
    CVEEntry,
    Trigger,
    VulnerabilityDatabase,
    container_field_trigger,
    external_ips_trigger,
    missing_limits_trigger,
    pod_flag_trigger,
    subpath_injection_trigger,
    subpath_trigger,
    symlink_exchange_trigger,
    vulndb,
)

__all__ = [
    "FeedSnapshot",
    "JsonFeed",
    "StaticFeed",
    "TRIGGER_REGISTRY",
    "parse_feed_document",
]

#: Named trigger predicates a JSON feed document may reference.  Entries
#: whose ``trigger`` names a factory are given the factory's result for
#: the supplied arguments; unknown names fail the parse loudly.
TRIGGER_REGISTRY: dict[str, Callable[..., Trigger]] = {
    "pod_flag": pod_flag_trigger,
    "container_field": container_field_trigger,
    "subpath": lambda: subpath_trigger,
    "subpath_injection": lambda: subpath_injection_trigger,
    "missing_limits": lambda: missing_limits_trigger,
    "symlink_exchange": lambda: symlink_exchange_trigger,
    "external_ips": lambda: external_ips_trigger,
}


@dataclass(frozen=True)
class FeedSnapshot:
    """One refresh result: the database plus change metadata."""

    db: VulnerabilityDatabase
    serial: int
    changed: bool
    source: str

    @property
    def entry_count(self) -> int:
        return len(self.db)


def _entry_fingerprint(entries: list[CVEEntry]) -> tuple:
    """Identity of a feed state: which CVEs, at which fix levels."""
    return tuple(sorted((e.cve_id, e.cvss, e.fixed_in or "") for e in entries))


class StaticFeed:
    """An in-process feed over a fixed (but growable) entry list."""

    def __init__(self, db: VulnerabilityDatabase | None = None) -> None:
        base = db if db is not None else vulndb
        self._lock = threading.Lock()
        self._entries: list[CVEEntry] = list(base)
        self._serial = 1
        self._last_fingerprint: tuple | None = None

    def add(self, entry: CVEEntry) -> None:
        """Publish a new entry (models the upstream feed moving)."""
        with self._lock:
            self._entries.append(entry)

    def refresh(self) -> FeedSnapshot:
        with self._lock:
            entries = list(self._entries)
            fingerprint = _entry_fingerprint(entries)
            changed = fingerprint != self._last_fingerprint
            if changed and self._last_fingerprint is not None:
                self._serial += 1
            self._last_fingerprint = fingerprint
            return FeedSnapshot(
                db=VulnerabilityDatabase(entries),
                serial=self._serial,
                changed=changed,
                source="static",
            )


def parse_feed_document(doc: Any) -> list[CVEEntry]:
    """Parse a feed JSON document into CVE entries.

    Expected shape (a subset of what a real aggregated feed carries)::

        {"cves": [{"cve_id": "CVE-...", "summary": "...", "cvss": 8.8,
                   "component": "kubelet", "fixed_in": "1.28.1",
                   "vulnerable_files": ["pkg/kubelet/x.go"],
                   "trigger": {"name": "pod_flag",
                               "args": ["hostNetwork"]},
                   "effect": "..."}]}
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("cves"), list):
        raise ValueError("feed document must be a dict with a 'cves' list")
    entries: list[CVEEntry] = []
    for item in doc["cves"]:
        trigger: Trigger | None = None
        spec = item.get("trigger")
        if spec:
            name = spec.get("name")
            factory = TRIGGER_REGISTRY.get(name)
            if factory is None:
                raise ValueError(
                    f"feed entry {item.get('cve_id')!r} references unknown "
                    f"trigger {name!r} (known: {sorted(TRIGGER_REGISTRY)})"
                )
            trigger = factory(*spec.get("args", []))
        entries.append(CVEEntry(
            cve_id=item["cve_id"],
            summary=item.get("summary", ""),
            cvss=float(item.get("cvss", 0.0)),
            component=item.get("component", "unknown"),
            vulnerable_files=tuple(item.get("vulnerable_files", ())),
            fixed_in=item.get("fixed_in"),
            trigger=trigger,
            effect=item.get("effect", ""),
        ))
    return entries


class JsonFeed:
    """A feed backed by a JSON document (file path or fetch callable)."""

    def __init__(
        self,
        source: str | Path | Callable[[], str],
        name: str | None = None,
    ) -> None:
        if callable(source):
            self._fetch = source
            self._name = name or "callable"
        else:
            path = Path(source)
            self._fetch = path.read_text
            self._name = name or str(path)
        self._lock = threading.Lock()
        self._serial = 0
        self._last_fingerprint: tuple | None = None

    def refresh(self) -> FeedSnapshot:
        entries = parse_feed_document(json.loads(self._fetch()))
        with self._lock:
            fingerprint = _entry_fingerprint(entries)
            changed = fingerprint != self._last_fingerprint
            if changed:
                self._serial += 1
            self._last_fingerprint = fingerprint
            return FeedSnapshot(
                db=VulnerabilityDatabase(entries),
                serial=self._serial,
                changed=changed,
                source=self._name,
            )
