"""Construction of malicious manifests from legitimate configurations.

Following Sec. VI-D: "Legitimate resource configurations were retrieved
from Operator manifests, and malicious fields were injected into this
configuration to create 15 distinct malicious manifests for each
operator."  For each attack, the injector picks a manifest of a kind
the attack supports (preferring the operator's workload kinds) and
applies the attack's mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.attacks.catalog import ATTACKS, AttackSpec
from repro.yamlutil import deep_copy


@dataclass(frozen=True)
class MaliciousManifest:
    """One attack instance ready to submit."""

    attack: AttackSpec
    operator: str
    manifest: dict[str, Any]
    base_kind: str


def _pick_target(attack: AttackSpec, manifests: list[dict[str, Any]]) -> dict[str, Any] | None:
    candidates = [m for m in manifests if m.get("kind") in attack.kinds]
    if not candidates:
        return None
    # Prefer the richest workload manifest (Deployment/StatefulSet over Job).
    priority = {"Deployment": 0, "StatefulSet": 0, "DaemonSet": 1, "Job": 2, "Pod": 2}
    candidates.sort(key=lambda m: priority.get(m.get("kind", ""), 3))
    return candidates[0]


def build_malicious_manifests(
    operator: str,
    legitimate_manifests: list[dict[str, Any]],
    attacks: tuple[AttackSpec, ...] = ATTACKS,
) -> list[MaliciousManifest]:
    """Create the attack manifests for one operator.

    Raises :class:`ValueError` if an attack has no applicable resource
    in the operator's manifests (the evaluation operators all support
    every catalog attack).
    """
    out: list[MaliciousManifest] = []
    for attack in attacks:
        target = _pick_target(attack, legitimate_manifests)
        if target is None:
            raise ValueError(
                f"operator {operator!r} has no resource of kinds {attack.kinds} "
                f"for attack {attack.attack_id}"
            )
        manifest = deep_copy(target)
        attack.inject(manifest)
        if manifest == target:
            raise ValueError(
                f"attack {attack.attack_id} produced no mutation on {target.get('kind')}"
            )
        out.append(
            MaliciousManifest(
                attack=attack,
                operator=operator,
                manifest=manifest,
                base_kind=target.get("kind", ""),
            )
        )
    return out
