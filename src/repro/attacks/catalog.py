"""Table II: the catalog of 15 malicious K8s specifications.

Eight CVE exploits (E1-E8) and seven misconfigurations (M1-M7).  Each
entry names the targeted API field(s), references its source (CVE or
the NSA/CISA hardening guide), declares which resource kinds it can be
injected into, and carries an executable ``inject`` function that
mutates a legitimate manifest into its malicious variant -- exactly how
the paper constructs its attack manifests (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.k8s.gvk import registry
from repro.yamlutil import delete_path, get_path, set_path

#: Kinds that embed a PodSpec (targets for pod-level injections).
WORKLOAD_KINDS = tuple(registry.workload_kinds())

Injector = Callable[[dict[str, Any]], None]


@dataclass(frozen=True)
class AttackSpec:
    """One malicious specification from the catalog."""

    attack_id: str           # E1..E8 / M1..M7
    title: str
    targeted_fields: tuple[str, ...]
    reference: str           # CVE id or guideline
    kinds: tuple[str, ...]   # resource kinds supporting the malicious field
    inject: Injector
    category: str            # "cve" | "misconfig"

    @property
    def is_cve(self) -> bool:
        return self.category == "cve"


def _pod_spec_of(manifest: dict[str, Any]) -> dict[str, Any] | None:
    kind = manifest.get("kind", "")
    if kind not in registry:
        return None
    path = registry.by_kind(kind).pod_spec_path
    if path is None:
        return None
    spec = get_path(manifest, path, None)
    return spec if isinstance(spec, dict) else None


def _first_container(manifest: dict[str, Any]) -> dict[str, Any] | None:
    spec = _pod_spec_of(manifest)
    if spec is None:
        return None
    containers = spec.get("containers") or []
    return containers[0] if containers and isinstance(containers[0], dict) else None


def _set_pod_flag(flag: str) -> Injector:
    def inject(manifest: dict[str, Any]) -> None:
        spec = _pod_spec_of(manifest)
        if spec is not None:
            spec[flag] = True

    return inject


def _set_container_field(path: str, value: Any) -> Injector:
    def inject(manifest: dict[str, Any]) -> None:
        container = _first_container(manifest)
        if container is not None:
            set_path(container, path, value)

    return inject


def _inject_external_ips(manifest: dict[str, Any]) -> None:
    set_path(manifest, "spec.externalIPs", ["203.0.113.7"])


def _inject_subpath(value: str) -> Injector:
    def inject(manifest: dict[str, Any]) -> None:
        spec = _pod_spec_of(manifest)
        container = _first_container(manifest)
        if spec is None or container is None:
            return
        mounts = container.setdefault("volumeMounts", [])
        mounts.append(
            {"name": "attack-vol", "mountPath": "/mnt/attack", "subPath": value}
        )
        volumes = spec.setdefault("volumes", [])
        volumes.append({"name": "attack-vol", "emptyDir": {}})

    return inject


def _inject_symlink_init_container(manifest: dict[str, Any]) -> None:
    """CVE-2021-25741-style symlink exchange: a busybox init container
    symlinks / into a shared volume before the main container mounts it."""
    spec = _pod_spec_of(manifest)
    if spec is None:
        return
    init = spec.setdefault("initContainers", [])
    init.append(
        {
            "name": "symlink-attack",
            "image": "busybox",
            "command": ["ln", "-s", "/", "/mnt/data/symlink-door"],
        }
    )


def _remove_resource_limits(manifest: dict[str, Any]) -> None:
    spec = _pod_spec_of(manifest)
    if spec is None:
        return
    for group in ("containers", "initContainers"):
        for container in spec.get(group) or []:
            if isinstance(container, dict):
                delete_path(container, "resources.limits")


ATTACKS: tuple[AttackSpec, ...] = (
    # -- CVE exploits ----------------------------------------------------
    AttackSpec(
        "E1",
        "Activation of hostNetwork (CVE-2020-15257)",
        ("hostNetwork",),
        "CVE-2020-15257",
        WORKLOAD_KINDS,
        _set_pod_flag("hostNetwork"),
        "cve",
    ),
    AttackSpec(
        "E2",
        "Abusing LoadBalancer or ExternalIPs (CVE-2020-8554)",
        ("externalIPs",),
        "CVE-2020-8554",
        ("Service",),
        _inject_external_ips,
        "cve",
    ),
    AttackSpec(
        "E3",
        "Command injection via volume and volumeMounts (CVE-2023-3676)",
        ("containers.volumeMounts.subPath", "containers.volumes.subPath"),
        "CVE-2023-3676",
        WORKLOAD_KINDS,
        _inject_subpath("$(sleep 9999)/a"),
        "cve",
    ),
    AttackSpec(
        "E4",
        "Mount subPath on a file o emptyDir (CVE-2017-1002101)",
        ("containers.volumeMounts.subPath",),
        "CVE-2017-1002101",
        WORKLOAD_KINDS,
        _inject_subpath("symlink-door"),
        "cve",
    ),
    AttackSpec(
        "E5",
        "Absent Resource Limit (CVE-2019-11253)",
        ("containers.resources.limits",),
        "CVE-2019-11253",
        WORKLOAD_KINDS,
        _remove_resource_limits,
        "cve",
    ),
    AttackSpec(
        "E6",
        "Symlink exchange allow host filesystem access (CVE-2021-25741)",
        ("container.command",),
        "CVE-2021-25741",
        WORKLOAD_KINDS,
        _inject_symlink_init_container,
        "cve",
    ),
    AttackSpec(
        "E7",
        "Bypass of Seccomp Profile (CVE-2023-2431)",
        ("containers.securityContext.seccompProfile.localhostProfile",),
        "CVE-2023-2431",
        WORKLOAD_KINDS,
        _set_container_field(
            "securityContext.seccompProfile",
            {"type": "Localhost", "localhostProfile": ""},
        ),
        "cve",
    ),
    AttackSpec(
        "E8",
        "Privileged Containers (CVE-2021-21334)",
        ("containers.securityContext.privileged",),
        "CVE-2021-21334",
        WORKLOAD_KINDS,
        _set_container_field("securityContext.privileged", True),
        "cve",
    ),
    # -- misconfigurations -------------------------------------------------
    AttackSpec(
        "M1",
        "Activation of hostIPC",
        ("hostIPC",),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_pod_flag("hostIPC"),
        "misconfig",
    ),
    AttackSpec(
        "M2",
        "Activation of hostPID",
        ("hostPID",),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_pod_flag("hostPID"),
        "misconfig",
    ),
    AttackSpec(
        "M3",
        "Use Readonly Filesystem",
        ("containers.securityContext.readOnlyRootFilesystem",),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_container_field("securityContext.readOnlyRootFilesystem", False),
        "misconfig",
    ),
    AttackSpec(
        "M4",
        "Running Containers as Root",
        ("containers.securityContext.runAsNonRoot",),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_container_field("securityContext.runAsNonRoot", False),
        "misconfig",
    ),
    AttackSpec(
        "M5",
        "Allow Dangereous Capabilites to Containers",
        ("containers.securityContext.capabilities.add",),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_container_field("securityContext.capabilities", {"add": ["SYS_ADMIN", "NET_RAW"]}),
        "misconfig",
    ),
    AttackSpec(
        "M6",
        "Escalated Privileges for Child Container Processes",
        ("containers.securityContext.allowPrivilegeEscalation",),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_container_field("securityContext.allowPrivilegeEscalation", True),
        "misconfig",
    ),
    AttackSpec(
        "M7",
        "Custom SELinux user or role",
        (
            "containers.securityContext.seLinuxOptions.user",
            "containers.securityContext.seLinuxOptions.role",
        ),
        "NSA/CISA Kubernetes Hardening Guide",
        WORKLOAD_KINDS,
        _set_container_field(
            "securityContext.seLinuxOptions", {"user": "system_u", "role": "sysadm_r"}
        ),
        "misconfig",
    ),
)


def cve_attacks() -> list[AttackSpec]:
    return [a for a in ATTACKS if a.category == "cve"]


def misconfig_attacks() -> list[AttackSpec]:
    return [a for a in ATTACKS if a.category == "misconfig"]


def get_attack(attack_id: str) -> AttackSpec:
    for attack in ATTACKS:
        if attack.attack_id == attack_id:
            return attack
    raise KeyError(f"unknown attack {attack_id!r}")
