"""The attack campaign: Table III's experiment.

For one operator, two protected configurations are attacked with the
full catalog of malicious manifests:

**RBAC baseline** (Sec. VI-D, "Native K8s RBAC setup"):

1. the operator is deployed attack-free on an audit-enabled cluster,
   including a day-2 reconcile pass (operators continuously get/update
   their resources);
2. ``audit2rbac`` infers the workload's least-privilege policy;
3. a fresh cluster is configured with that policy, the workload is
   re-deployed, and the malicious manifests are submitted as the
   operator's own user (the insider threat model).

**KubeFence** (Sec. VI-D, "KubeFence setup"):

1. the workload policy (validator) is generated from the Helm chart;
2. the workload is deployed *through* the KubeFence proxy (complete
   mediation) -- all benign requests must pass;
3. the same malicious manifests are submitted through the proxy.

An attack is *mitigated* when its API request is rejected.  The live
:class:`~repro.k8s.vulndb.ExploitEngine` sits in the admission chain of
both clusters, so the result also reports which CVEs actually fired
when requests got through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.attacks.catalog import ATTACKS, AttackSpec
from repro.attacks.injector import MaliciousManifest, build_malicious_manifests
from repro.core.anomaly import (
    AnomalyAlert,
    AnomalyMonitoringTransport,
    ApiAnomalyDetector,
)
from repro.core.enforcement import Validator
from repro.core.pipeline import generate_policy
from repro.core.proxy import KubeFenceProxy
from repro.helm.chart import Chart, render_chart
from repro.k8s.apiserver import Cluster
from repro.k8s.vulndb import ExploitEngine
from repro.obs.analytics.events import SecurityEvent, new_event_bus
from repro.operators.client import DirectTransport, OperatorClient
from repro.rbac import RBACAuthorizer, infer_policy


@dataclass
class AttackOutcome:
    """One attack against one protected configuration."""

    attack: AttackSpec
    mitigated: bool
    response_code: int
    exploit_fired: bool
    detail: str = ""


@dataclass
class CampaignResult:
    """Table III row material for one operator."""

    operator: str
    rbac: list[AttackOutcome] = field(default_factory=list)
    kubefence: list[AttackOutcome] = field(default_factory=list)
    validator: Validator | None = None
    #: Detection-mode alerts from the KubeFence phase, when the
    #: campaign ran with ``anomaly=True``.
    anomaly_alerts: list[AnomalyAlert] = field(default_factory=list)

    def mitigated_counts(self, outcomes: list[AttackOutcome]) -> tuple[int, int]:
        """(mitigated CVE exploits, mitigated misconfigurations)."""
        cves = sum(1 for o in outcomes if o.attack.is_cve and o.mitigated)
        misconfigs = sum(1 for o in outcomes if not o.attack.is_cve and o.mitigated)
        return cves, misconfigs

    @property
    def rbac_counts(self) -> tuple[int, int]:
        return self.mitigated_counts(self.rbac)

    @property
    def kubefence_counts(self) -> tuple[int, int]:
        return self.mitigated_counts(self.kubefence)


def _deploy_and_reconcile(client: OperatorClient, chart: Chart) -> Any:
    result = client.deploy_chart(chart)
    if not result.all_ok:
        denied = [(m.get("kind"), r.code) for m, r in result.denied]
        raise RuntimeError(f"benign deployment of {chart.name} was blocked: {denied}")
    client.reconcile(result)
    return result


def _attack(
    client: OperatorClient,
    malicious: list[MaliciousManifest],
    engine: ExploitEngine,
    event_bus: Any | None = None,
    identity: str = "",
) -> list[AttackOutcome]:
    outcomes: list[AttackOutcome] = []
    for item in malicious:
        engine.clear()
        if event_bus is not None and event_bus.enabled:
            # Campaign marker: keys the forensics engine's timeline
            # split -- everything between this marker and the next one
            # belongs to this attack.
            event_bus.publish(
                SecurityEvent(
                    kind="marker",
                    source="campaign",
                    ts=time.time(),
                    user=identity,
                    detail={
                        "attack_id": item.attack.attack_id,
                        "reference": item.attack.reference,
                        "title": item.attack.title,
                        "targeted_fields": list(item.attack.targeted_fields),
                        "user": identity,
                    },
                )
            )
        response = client.submit_manifest(item.operator, item.manifest, verb="update")
        fired = item.attack.reference in engine.triggered_cves()
        outcomes.append(
            AttackOutcome(
                attack=item.attack,
                mitigated=not response.ok,
                response_code=response.code,
                exploit_fired=fired,
                detail="" if response.ok else str((response.body or {}).get("message", "")),
            )
        )
    return outcomes


def run_campaign(
    chart: Chart,
    attacks: tuple[AttackSpec, ...] = ATTACKS,
    validator: Validator | None = None,
    event_bus: Any | None = None,
    anomaly: bool = False,
) -> CampaignResult:
    """Run the full Table III experiment for one operator chart.

    With an ``event_bus``, the KubeFence phase publishes the unified
    security-event stream (campaign markers + audit events + proxy
    decisions) into it, ready for
    :class:`~repro.obs.analytics.forensics.ForensicsEngine`.  With
    ``anomaly=True``, an :class:`ApiAnomalyDetector` is bootstrapped
    from the attack-free learning phase and runs in detection mode in
    front of the proxy; its alerts land in
    :attr:`CampaignResult.anomaly_alerts` (and on the bus).
    """
    result = CampaignResult(operator=chart.name)
    legitimate = render_chart(chart)
    malicious = build_malicious_manifests(chart.name, legitimate, attacks)

    # ---- RBAC baseline ---------------------------------------------------
    # Phase A: attack-free run on an audit-enabled permissive cluster.
    learn_cluster = Cluster()
    learn_client = OperatorClient(DirectTransport(learn_cluster.api))
    _deploy_and_reconcile(learn_client, chart)
    username = f"{chart.name}-operator"
    rbac_policy = infer_policy(learn_cluster.api.audit_log, username)

    # Phase B: fresh cluster protected by the inferred RBAC policy.
    rbac_cluster = Cluster(authorizer=RBACAuthorizer(rbac_policy))
    rbac_engine = ExploitEngine()
    rbac_cluster.api.register_admission_plugin(rbac_engine)
    rbac_client = OperatorClient(DirectTransport(rbac_cluster.api))
    _deploy_and_reconcile(rbac_client, chart)
    result.rbac = _attack(rbac_client, malicious, rbac_engine)

    # ---- KubeFence ------------------------------------------------------
    validator = validator or generate_policy(chart)
    result.validator = validator
    bus = event_bus if event_bus is not None else new_event_bus()
    kf_cluster = Cluster(event_bus=bus)
    kf_engine = ExploitEngine()
    kf_cluster.api.register_admission_plugin(kf_engine)
    proxy = KubeFenceProxy(kf_cluster.api, validator, event_bus=bus)
    transport: Any = proxy
    monitor: AnomalyMonitoringTransport | None = None
    if anomaly:
        detector = ApiAnomalyDetector()
        detector.learn_from_audit(learn_cluster.api.audit_log, username)
        monitor = AnomalyMonitoringTransport(
            proxy, detector,
            registry=proxy.stats.registry, event_bus=bus,
        )
        transport = monitor
    kf_client = OperatorClient(transport)
    _deploy_and_reconcile(kf_client, chart)
    result.kubefence = _attack(
        kf_client, malicious, kf_engine, event_bus=bus, identity=username
    )
    if monitor is not None:
        result.anomaly_alerts = list(monitor.alerts)
    return result
