"""The scenario-diverse attack campaign matrix.

Table III evaluates KubeFence against 15 single-attacker attacks; this
engine grows that table into the cross-product of attack specs ×
scenario dimensions:

- **tenancy** -- ``single`` (the insider operator identity) or
  ``multi`` (three distinct tenant identities attacking concurrently
  on real threads);
- **chaos** -- ``none`` or ``faults``: a seeded
  :class:`~repro.faults.FaultInjector` (5xx + latency mix) sits on the
  upstream during the attack window while benign reconcile traffic
  keeps flowing;
- **variant** -- ``canonical`` (the Sec. VI-D injected manifest) or
  ``fuzz-N`` (a schema-valid manifest from
  :class:`~repro.fuzz.generator.ManifestFuzzer`, mutated by the same
  attack injector);
- **delivery** -- ``helm`` (rendered chart) or ``kustomize`` (the
  manifests and the policy both built through :mod:`repro.kustomize`).

Every cell's verdict is *proven*, not eyeballed: the
:class:`~repro.obs.analytics.forensics.ForensicsEngine` must show a
denial point and zero post-denial activity for every attacker, no
committed (successful-audit) resources in the attack window, the store
must be byte-identical to its pre-attack state, and the
:class:`~repro.scan.CVEScanner` must confirm no *new* finding survives
in the store.  An unprotected-baseline arm replays each attack against
a permissive cluster to reproduce the Table III mitigation gap.

Determinism is a hard contract: the same seed produces a byte-identical
report (wall-clock timestamps, latencies and trace ids are excluded;
all randomness — fuzz variants, fault schedules — derives from the
seed), which is what makes the matrix a regression gate rather than a
demo.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.attacks.catalog import ATTACKS, AttackSpec
from repro.attacks.injector import build_malicious_manifests
from repro.core.enforcement import Validator
from repro.core.pipeline import generate_policy
from repro.core.proxy import KubeFenceProxy
from repro.faults.injector import FaultInjector, FaultPlan, FaultyAPIServer
from repro.fuzz.generator import ManifestFuzzer
from repro.helm.chart import render_chart
from repro.k8s.apiserver import ApiRequest, Cluster, User
from repro.k8s.vulndb import ExploitEngine
from repro.kustomize import Kustomization, build, generate_policy_from_kustomize
from repro.obs.analytics.events import EventBus, SecurityEvent
from repro.obs.analytics.forensics import ForensicsEngine
from repro.operators import get_chart
from repro.operators.client import DirectTransport, OperatorClient
from repro.scan import CVEScanner
from repro.yamlutil import deep_copy

__all__ = [
    "CellVerdict",
    "MatrixCell",
    "MatrixConfig",
    "MatrixReport",
    "derive_seed",
    "run_matrix",
]

#: The distinct identities used by multi-tenant cells.
TENANT_IDENTITIES = ("tenant-a", "tenant-b", "tenant-c")

#: Chaos overlay for the attack window: in-process-safe faults only
#: (5xx bursts + small latency); resets/hangs are wire-level faults
#: exercised by the dedicated chaos harness.
CHAOS_PLAN = FaultPlan(
    name="matrix-overlay",
    error_rate=0.25,
    latency_rate=0.25,
    latency_ms=0.2,
)


def derive_seed(seed: int, *parts: str) -> int:
    """A stable 63-bit sub-seed for one cell/component."""
    digest = hashlib.sha256(
        ("%d|" % seed + "|".join(parts)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class MatrixCell:
    """One point in the scenario cross-product."""

    attack_id: str
    reference: str
    tenancy: str      # "single" | "multi"
    chaos: str        # "none" | "faults"
    variant: str      # "canonical" | "fuzz-N"
    delivery: str     # "helm" | "kustomize"

    @property
    def cell_id(self) -> str:
        return "/".join((
            self.attack_id, self.tenancy, self.chaos,
            self.variant, self.delivery,
        ))

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell_id": self.cell_id,
            "attack_id": self.attack_id,
            "reference": self.reference,
            "tenancy": self.tenancy,
            "chaos": self.chaos,
            "variant": self.variant,
            "delivery": self.delivery,
        }


@dataclass
class CellVerdict:
    """The forensics + scanner verdict for one cell."""

    cell: MatrixCell
    attackers: tuple[str, ...]
    response_codes: dict[str, int]
    denial_present: bool
    post_denial_events: int
    committed_resources: list[str]
    store_clean: bool
    scan_clean: bool
    exploit_fired: bool
    chaos_faults: int
    timeline_digest: dict[str, list[list[Any]]]
    scan_new_findings: list[str]

    @property
    def mitigated(self) -> bool:
        return all(code == 403 for code in self.response_codes.values())

    @property
    def contained(self) -> bool:
        return (
            self.mitigated
            and self.denial_present
            and self.post_denial_events == 0
            and not self.committed_resources
            and self.store_clean
            and self.scan_clean
            and not self.exploit_fired
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            **self.cell.to_dict(),
            "attackers": list(self.attackers),
            "response_codes": dict(sorted(self.response_codes.items())),
            "mitigated": self.mitigated,
            "denial_present": self.denial_present,
            "post_denial_events": self.post_denial_events,
            "committed_resources": self.committed_resources,
            "store_clean": self.store_clean,
            "scan_clean": self.scan_clean,
            "scan_new_findings": self.scan_new_findings,
            "exploit_fired": self.exploit_fired,
            "chaos_faults": self.chaos_faults,
            "contained": self.contained,
            "timelines": {
                user: digest
                for user, digest in sorted(self.timeline_digest.items())
            },
        }


@dataclass
class MatrixConfig:
    """Which slice of the cross-product to run."""

    operator: str = "nginx"
    seed: int = 0
    attacks: tuple[AttackSpec, ...] = ATTACKS
    tenancies: tuple[str, ...] = ("single", "multi")
    chaos_modes: tuple[str, ...] = ("none", "faults")
    deliveries: tuple[str, ...] = ("helm", "kustomize")
    #: Fuzz-variant cells per CVE attack (run single/no-chaos/helm).
    fuzz_variants: int = 1
    #: Benign reconcile rounds driven during each attack window.
    window_reconciles: int = 2

    @classmethod
    def smoke(cls, seed: int = 0, operator: str = "nginx") -> "MatrixConfig":
        """The reduced matrix CI runs: 6 attacks, helm-only, still
        covering every tenancy/chaos/fuzz dimension (>= 24 cells + fuzz)."""
        return cls(
            operator=operator,
            seed=seed,
            attacks=tuple(ATTACKS[:6]),
            deliveries=("helm",),
            fuzz_variants=1,
            window_reconciles=1,
        )


@dataclass
class MatrixReport:
    """The full matrix result; :meth:`to_json` is byte-deterministic
    for a given config + seed."""

    operator: str
    seed: int
    cells: list[CellVerdict] = field(default_factory=list)
    baseline: list[dict[str, Any]] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def breached(self) -> list[CellVerdict]:
        return [c for c in self.cells if not c.contained]

    @property
    def containment_rate(self) -> float:
        if not self.cells:
            return 0.0
        return (len(self.cells) - len(self.breached)) / len(self.cells)

    @property
    def baseline_mitigated(self) -> int:
        return sum(1 for b in self.baseline if b["mitigated"])

    @property
    def mitigation_gap(self) -> float:
        """KubeFence containment rate minus the unprotected baseline's
        mitigation rate (Table III reproduces as ~1.0 - 0.0)."""
        if not self.baseline:
            return self.containment_rate
        return self.containment_rate - self.baseline_mitigated / len(self.baseline)

    def to_dict(self) -> dict[str, Any]:
        """Deterministic report body: no wall-clock, no trace ids."""
        return {
            "schema": 1,
            "operator": self.operator,
            "seed": self.seed,
            "cells_total": len(self.cells),
            "contained": len(self.cells) - len(self.breached),
            "breached": [c.cell.cell_id for c in self.breached],
            "containment_rate": round(self.containment_rate, 6),
            "baseline": {
                "attacks": len(self.baseline),
                "mitigated": self.baseline_mitigated,
                "exploits_fired": sum(
                    1 for b in self.baseline if b["exploit_fired"]
                ),
                "outcomes": sorted(
                    self.baseline, key=lambda b: (b["attack_id"], b["variant"])
                ),
            },
            "mitigation_gap": round(self.mitigation_gap, 6),
            "cells": [
                c.to_dict()
                for c in sorted(self.cells, key=lambda c: c.cell.cell_id)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def bench_dict(self) -> dict[str, Any]:
        """The BENCH_campaign.json headline figures (wall clock lives
        here, outside the deterministic report)."""
        return {
            "cells_run": len(self.cells),
            "breached_cells": len(self.breached),
            "containment_rate": round(self.containment_rate, 6),
            "baseline_attacks": len(self.baseline),
            "baseline_mitigated": self.baseline_mitigated,
            "mitigation_gap": round(self.mitigation_gap, 6),
            "wall_time_s": round(self.wall_time_s, 3),
        }


# ---------------------------------------------------------------------------
# Attack payload construction
# ---------------------------------------------------------------------------


def _fuzz_kind(attack: AttackSpec) -> str:
    """Deterministic target kind for a fuzz variant of *attack*."""
    priority = {"Deployment": 0, "StatefulSet": 1, "DaemonSet": 2,
                "Job": 3, "Pod": 4, "Service": 5}
    return sorted(attack.kinds, key=lambda k: priority.get(k, 9))[0]


def _ensure_limits(body: dict[str, Any]) -> None:
    """Give every container resource limits so removal-style attacks
    (e.g. E5) have something to strip from a fuzzed body."""
    spec = body.get("spec", {})
    pod = spec.get("template", {}).get("spec", spec)
    for container in pod.get("containers", []) if isinstance(pod, dict) else []:
        resources = container.setdefault("resources", {})
        resources.setdefault("limits", {"cpu": "500m", "memory": "256Mi"})


def _fuzz_payload(
    attack: AttackSpec, seed: int, variant: int
) -> tuple[dict[str, Any], str]:
    """A fuzz-generated manifest carrying *attack*'s mutation.

    Retries a few sub-seeds until the injector actually mutates the
    fuzzed body (e.g. the fuzzer already emitted resource limits that
    M-class attacks need to strip).
    """
    kind = _fuzz_kind(attack)
    for salt in range(16):
        fuzzer = ManifestFuzzer(
            seed=derive_seed(seed, "fuzz", attack.attack_id,
                             str(variant), str(salt)),
        )
        body = fuzzer.manifest(kind)
        _ensure_limits(body)
        # A unique, deterministic name per (attack, variant): fuzzer
        # names can collide across variants sharing one cluster.
        body.setdefault("metadata", {})["name"] = (
            f"fuzz-{attack.attack_id.lower()}-{variant}"
        )
        mutated = deep_copy(body)
        attack.inject(mutated)
        if mutated != body:
            return mutated, kind
    raise RuntimeError(
        f"fuzz variant of {attack.attack_id} never mutated a {kind}"
    )


def _canonical_payload(
    attack: AttackSpec, manifests: list[dict[str, Any]], operator: str
) -> dict[str, Any]:
    return build_malicious_manifests(operator, manifests, (attack,))[0].manifest


# ---------------------------------------------------------------------------
# Store normalization (byte-level pre/post attack comparison)
# ---------------------------------------------------------------------------


def _store_state(cluster: Cluster) -> dict[tuple[str, str, str], str]:
    """Normalized store content keyed by object identity; the churn
    fields (resourceVersion) are excluded so benign reconcile traffic
    during the window does not read as attack impact."""
    _, objects = cluster.store.snapshot()
    state: dict[tuple[str, str, str], str] = {}
    for obj in objects:
        data = deep_copy(obj.data)
        data.get("metadata", {}).pop("resourceVersion", None)
        state[obj.key()] = json.dumps(data, sort_keys=True)
    return state


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------


def _benign_stack(
    config: MatrixConfig, delivery: str,
    cache: dict[str, tuple[list[dict[str, Any]], Validator]],
) -> tuple[list[dict[str, Any]], Validator]:
    """(manifests, validator) for one delivery mode, cached across
    cells — policy generation is the expensive step."""
    if delivery not in cache:
        chart = get_chart(config.operator)
        if delivery == "kustomize":
            base = Kustomization(
                name=f"{config.operator}-base",
                manifests=render_chart(chart),
            )
            cache[delivery] = (
                build(base),
                generate_policy_from_kustomize(base, operator=config.operator),
            )
        else:
            cache[delivery] = (render_chart(chart), generate_policy(chart))
    manifests, validator = cache[delivery]
    return deep_copy(manifests), validator


def _attack_window(
    proxy: KubeFenceProxy,
    bus: EventBus,
    attack: AttackSpec,
    payload: dict[str, Any],
    attackers: tuple[str, ...],
    verb: str,
) -> dict[str, int]:
    """Run the attack for every attacker; multi-tenant cells use one
    real thread per identity, synchronized on a start barrier."""

    codes: dict[str, int] = {}
    lock = threading.Lock()

    def attempt(identity: str) -> None:
        bus.publish(SecurityEvent(
            kind="marker",
            source="campaign",
            ts=time.time(),
            user=identity,
            detail={
                "attack_id": attack.attack_id,
                "reference": attack.reference,
                "title": attack.title,
                "targeted_fields": list(attack.targeted_fields),
                "user": identity,
            },
        ))
        request = ApiRequest.from_manifest(
            deep_copy(payload), User(identity), verb=verb
        )
        response = proxy.submit(request)
        with lock:
            codes[identity] = response.code

    if len(attackers) == 1:
        attempt(attackers[0])
        return codes

    barrier = threading.Barrier(len(attackers))

    def runner(identity: str) -> None:
        barrier.wait()
        attempt(identity)

    threads = [
        threading.Thread(target=runner, args=(identity,), daemon=True)
        for identity in attackers
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return codes


def _run_cell(
    config: MatrixConfig,
    cell: MatrixCell,
    attack: AttackSpec,
    payload: dict[str, Any],
    verb: str,
    manifests: list[dict[str, Any]],
    validator: Validator,
) -> CellVerdict:
    bus = EventBus(maxlen=16384)
    forensics = ForensicsEngine()
    bus.subscribe(forensics.ingest)
    cluster = Cluster(event_bus=bus)
    engine = ExploitEngine()
    cluster.api.register_admission_plugin(engine)

    # Benign deploy runs fault-free (the chaos overlay models faults
    # during the attack window, not a broken install).
    deploy_proxy = KubeFenceProxy(cluster.api, validator, event_bus=bus)
    operator_client = OperatorClient(deploy_proxy)
    deployed = operator_client.deploy_chart(get_chart(config.operator))
    if not deployed.all_ok:
        denied = [(m.get("kind"), r.code) for m, r in deployed.denied]
        raise RuntimeError(f"benign deploy blocked in {cell.cell_id}: {denied}")
    operator_client.reconcile(deployed)

    scanner = CVEScanner(
        cluster, assume_vulnerable=True, event_bus=bus, validator=validator
    )
    baseline_keys = scanner.scan_once().finding_keys()
    pre_state = _store_state(cluster)
    engine.clear()

    injector: FaultInjector | None = None
    attack_upstream: Any = cluster.api
    if cell.chaos == "faults":
        injector = FaultInjector(
            CHAOS_PLAN, seed=derive_seed(config.seed, "chaos", cell.cell_id)
        )
        attack_upstream = FaultyAPIServer(cluster.api, injector)
    attack_proxy = KubeFenceProxy(attack_upstream, validator, event_bus=bus)

    attackers = (
        TENANT_IDENTITIES if cell.tenancy == "multi"
        else (f"{config.operator}-operator",)
    )
    codes = _attack_window(attack_proxy, bus, attack, payload, attackers, verb)

    # Benign traffic keeps flowing through the (possibly faulty)
    # upstream during the window — the chaos overlay must have
    # something to chew on, and the store comparison must stay clean
    # through it.  It runs under the controller identity so the
    # attackers' forensic timelines contain only their own activity.
    window_client = OperatorClient(
        attack_proxy, username=f"{config.operator}-controller"
    )
    for _ in range(config.window_reconciles):
        window_client.reconcile(deployed)

    post_keys = scanner.scan_once().finding_keys()
    new_keys = sorted(
        "/".join(k) for k in post_keys - baseline_keys
    )
    post_state = _store_state(cluster)

    timelines = {
        t.identity: t
        for t in forensics.timelines()
        if t.identity in attackers and t.attack_id == attack.attack_id
    }
    denial_present = bool(timelines) and all(
        identity in timelines and timelines[identity].mitigated
        for identity in attackers
    )
    post_denial = sum(
        len(t.post_denial) for t in timelines.values()
    )
    committed: list[str] = sorted({
        event.resource + (f"/{event.name}" if event.name else "")
        for t in timelines.values()
        for event in t.entries
        if event.kind == "audit" and event.code < 400
    })
    digest = {
        identity: [
            [e.kind, e.outcome, e.code] for e in t.entries
        ]
        for identity, t in timelines.items()
    }
    return CellVerdict(
        cell=cell,
        attackers=attackers,
        response_codes=codes,
        denial_present=denial_present,
        post_denial_events=post_denial,
        committed_resources=committed,
        store_clean=post_state == pre_state,
        scan_clean=not new_keys,
        exploit_fired=attack.reference in engine.triggered_cves(),
        chaos_faults=injector.faults_injected if injector else 0,
        timeline_digest=digest,
        scan_new_findings=new_keys,
    )


def _run_baseline(
    config: MatrixConfig,
    payloads: list[tuple[AttackSpec, str, dict[str, Any], str]],
) -> list[dict[str, Any]]:
    """The unprotected arm: the same payloads against a permissive
    cluster with no KubeFence in the path (sequential, chaos-free, so
    the arm stays deterministic)."""
    out: list[dict[str, Any]] = []
    cluster = Cluster()
    engine = ExploitEngine()
    cluster.api.register_admission_plugin(engine)
    client = OperatorClient(DirectTransport(cluster.api))
    deployed = client.deploy_chart(get_chart(config.operator))
    if not deployed.all_ok:
        raise RuntimeError("unprotected baseline deploy failed")
    for attack, variant, payload, verb in payloads:
        engine.clear()
        request = ApiRequest.from_manifest(
            deep_copy(payload), User(f"{config.operator}-operator"), verb=verb
        )
        response = cluster.api.handle(request)
        out.append({
            "attack_id": attack.attack_id,
            "reference": attack.reference,
            "variant": variant,
            "code": response.code,
            "mitigated": not response.ok,
            "exploit_fired": attack.reference in engine.triggered_cves(),
        })
    return out


def run_matrix(config: MatrixConfig | None = None) -> MatrixReport:
    """Run the full campaign matrix and the unprotected baseline arm."""
    config = config or MatrixConfig()
    started = time.perf_counter()
    report = MatrixReport(operator=config.operator, seed=config.seed)
    stack_cache: dict[str, tuple[list[dict[str, Any]], Validator]] = {}

    # Canonical cells: attacks × tenancy × chaos × delivery.
    baseline_payloads: list[tuple[AttackSpec, str, dict[str, Any], str]] = []
    for attack in config.attacks:
        canonical: dict[str, dict[str, Any]] = {}
        for delivery in config.deliveries:
            manifests, validator = _benign_stack(config, delivery, stack_cache)
            canonical[delivery] = _canonical_payload(
                attack, manifests, config.operator
            )
            for tenancy in config.tenancies:
                for chaos in config.chaos_modes:
                    cell = MatrixCell(
                        attack_id=attack.attack_id,
                        reference=attack.reference,
                        tenancy=tenancy,
                        chaos=chaos,
                        variant="canonical",
                        delivery=delivery,
                    )
                    report.cells.append(_run_cell(
                        config, cell, attack, canonical[delivery],
                        "update", manifests, validator,
                    ))
        baseline_payloads.append(
            (attack, "canonical",
             canonical[config.deliveries[0]], "update")
        )

    # Fuzz-variant cells: CVE attacks, single-tenant, helm delivery
    # (the variant dimension is about the payload, not the topology).
    fuzz_delivery = "helm" if "helm" in config.deliveries else config.deliveries[0]
    for attack in config.attacks:
        if not attack.is_cve:
            continue
        for index in range(config.fuzz_variants):
            payload, _kind = _fuzz_payload(attack, config.seed, index)
            manifests, validator = _benign_stack(
                config, fuzz_delivery, stack_cache
            )
            cell = MatrixCell(
                attack_id=attack.attack_id,
                reference=attack.reference,
                tenancy="single",
                chaos="none",
                variant=f"fuzz-{index}",
                delivery=fuzz_delivery,
            )
            report.cells.append(_run_cell(
                config, cell, attack, payload, "create", manifests, validator,
            ))
            baseline_payloads.append(
                (attack, f"fuzz-{index}", payload, "create")
            )

    report.baseline = _run_baseline(config, baseline_payloads)
    report.wall_time_s = time.perf_counter() - started
    return report
