"""The catalog of malicious K8s specifications and the attack runner.

- :mod:`repro.attacks.catalog` -- Table II: 8 CVE exploits (E1-E8) and
  7 misconfigurations (M1-M7), each with its targeted API fields and an
  executable manifest injection.
- :mod:`repro.attacks.injector` -- injects malicious fields into
  legitimate operator manifests (the paper's attack construction).
- :mod:`repro.attacks.runner` -- runs the attack campaign against a
  cluster protected by RBAC or by KubeFence and scores mitigation
  (Table III).
"""

from repro.attacks.catalog import ATTACKS, AttackSpec, cve_attacks, misconfig_attacks
from repro.attacks.injector import build_malicious_manifests
from repro.attacks.runner import AttackOutcome, CampaignResult, run_campaign

__all__ = [
    "ATTACKS",
    "AttackSpec",
    "AttackOutcome",
    "CampaignResult",
    "build_malicious_manifests",
    "cve_attacks",
    "misconfig_attacks",
    "run_campaign",
]
